//! Property tests of [`Trace`] construction invariants, via the vendored `proptest`
//! stand-in.
//!
//! Traces are the currency every layer above `remix-spec` trades in — the checker
//! reconstructs them, the conformance checker replays them, the shrinker rewrites them
//! — so the basic bookkeeping (`depth` = transitions, labels exclude the initial
//! pseudo-action, projection/condensation behave) is pinned down over generated step
//! sequences rather than single examples.

use std::collections::BTreeMap;

use proptest::prelude::*;
use remix_spec::{condense, project_trace, SpecState, Trace, Value};

/// A minimal state for trace bookkeeping tests: one observable counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct S(u32);

impl SpecState for S {
    fn project(&self, vars: &[&str]) -> BTreeMap<String, Value> {
        let mut m = BTreeMap::new();
        if vars.contains(&"v") {
            m.insert("v".to_owned(), Value::from(self.0));
        }
        m
    }
    fn variable_names() -> Vec<&'static str> {
        vec!["v"]
    }
}

proptest! {
    /// `push` appends exactly one step: depth grows by one per push, the last state and
    /// label are the pushed ones, and earlier steps are never disturbed.
    #[test]
    fn push_appends_exactly_one_step(values in proptest::collection::vec(0u32..100, 0..24)) {
        let mut trace = Trace::from_init(S(0));
        prop_assert_eq!(trace.depth(), 0);
        prop_assert_eq!(trace.steps[0].action.as_str(), "Init");
        for (i, v) in values.iter().enumerate() {
            let before = trace.steps.clone();
            trace.push(format!("Set({v})"), S(*v));
            prop_assert_eq!(trace.depth(), i + 1);
            prop_assert_eq!(trace.steps.len(), i + 2);
            prop_assert_eq!(trace.last_state(), Some(&S(*v)));
            prop_assert_eq!(trace.steps.last().unwrap().action.as_str(), format!("Set({v})").as_str());
            // Existing steps are untouched.
            prop_assert_eq!(&trace.steps[..before.len()], &before[..]);
        }
        // Labels enumerate the pushed actions, excluding the initial pseudo-action.
        let labels = trace.action_labels();
        prop_assert_eq!(labels.len(), values.len());
        for (label, v) in labels.iter().zip(values.iter()) {
            prop_assert_eq!(*label, format!("Set({v})").as_str());
        }
    }

    /// `depth` always equals `steps.len() - 1` on non-empty traces, and an empty trace
    /// reports depth 0 without underflowing.
    #[test]
    fn depth_counts_transitions(count in 0usize..32) {
        let empty: Trace<S> = Trace::default();
        prop_assert_eq!(empty.depth(), 0);
        prop_assert!(empty.is_empty());
        prop_assert_eq!(empty.last_state(), None);

        let mut trace = Trace::from_init(S(0));
        for i in 0..count {
            trace.push("Step", S(i as u32));
        }
        prop_assert_eq!(trace.depth(), trace.steps.len() - 1);
        prop_assert!(!trace.is_empty());
    }

    /// Projection preserves step count and only keeps requested variables; condensation
    /// never grows a trace and is idempotent.
    #[test]
    fn projection_and_condensation_invariants(
        values in proptest::collection::vec(0u32..4, 1..24),
    ) {
        let mut trace = Trace::from_init(S(0));
        for v in &values {
            trace.push(format!("Set({v})"), S(*v));
        }
        let projected = project_trace(&trace, &["v"]);
        prop_assert_eq!(projected.steps.len(), trace.steps.len());
        for step in &projected.steps {
            prop_assert!(step.vars.contains_key("v"));
            prop_assert_eq!(step.vars.len(), 1);
        }
        let condensed = condense(&projected);
        prop_assert!(condensed.steps.len() <= projected.steps.len());
        // Condensation removes exactly the steps whose projection repeats.
        for w in condensed.steps.windows(2) {
            prop_assert_ne!(&w[0].vars, &w[1].vars);
        }
        prop_assert_eq!(&condense(&condensed), &condensed);
    }
}
