//! Property tests of the [`Effect`] algebra, via the vendored `proptest` stand-in.
//!
//! The effect algebra underwrites two reductions (sleep-set POR, incremental
//! canonicalization) and one analysis (the `remix-analyze` effect audit), so its
//! algebraic laws are pinned down over generated footprints rather than single
//! examples: independence is symmetric, widening a footprint is conflict-monotone
//! (union can lose precision but never soundness), coverage behaves like the
//! write-bit superset it claims to be, and `touched_servers` never exceeds the
//! declared server bits plus the endpoints of declared channels.

use proptest::prelude::*;
use remix_spec::effect::{flags, MAX_EFFECT_SERVERS};
use remix_spec::Effect;

/// Generates an arbitrary (possibly global) footprint directly over the bit fields.
/// The vendored stand-in only provides range and tuple strategies, so the three
/// non-channel fields are unpacked from one 64-bit word.
fn any_effect() -> impl Strategy<Value = Effect> {
    (0u64..u64::MAX, 0u64..u64::MAX, 0u64..u64::MAX).prop_map(|(x, rc, wc)| {
        let ws = (x & 0xff) as u8;
        let wf = ((x >> 16) & 0xffff) as u16;
        Effect {
            // Writes imply reads, as the builders enforce.
            reads_servers: ((x >> 8) & 0xff) as u8 | ws,
            writes_servers: ws,
            reads_channels: rc | wc,
            writes_channels: wc,
            reads_flags: ((x >> 32) & 0xffff) as u16 | wf,
            writes_flags: wf,
        }
    })
}

proptest! {
    /// Independence is symmetric: the sleep-set engine checks pairs in one order only.
    #[test]
    fn independence_is_symmetric(a in any_effect(), b in any_effect()) {
        prop_assert_eq!(a.independent(&b), b.independent(&a));
    }

    /// Conflict is monotone under union: if `a` conflicts with `b`, widening `a` by
    /// any `c` keeps the conflict.  This is what makes conservative (over-wide)
    /// declarations sound: they can only turn independence into conflict, never the
    /// other way around.
    #[test]
    fn conflict_is_monotone_under_union(
        a in any_effect(),
        b in any_effect(),
        c in any_effect(),
    ) {
        if !a.independent(&b) {
            prop_assert!(!a.union(&c).independent(&b));
        }
    }

    /// Union is an upper bound in the coverage order, and coverage is reflexive.
    #[test]
    fn union_covers_both_operands(a in any_effect(), b in any_effect()) {
        let u = a.union(&b);
        prop_assert!(u.covers_writes(&a));
        prop_assert!(u.covers_writes(&b));
        prop_assert!(a.covers_writes(&a));
        // Coverage means exactly "no write bit of the covered side is missing".
        if !u.is_global() {
            prop_assert_eq!(u.writes_servers, a.writes_servers | b.writes_servers);
        }
    }

    /// `touched_servers` (the incremental-canonicalization invalidation set) is the
    /// declared server write bits plus both endpoints of every declared channel
    /// write — nothing more, and never less than the server write bits.
    #[test]
    fn touched_servers_is_bounded_by_declared_bits(e in any_effect()) {
        let touched = e.touched_servers();
        // Never less than the declared server writes.
        prop_assert_eq!(touched & e.writes_servers, e.writes_servers);
        // Every touched bit is justified by a server write or a channel endpoint.
        let mut justified = e.writes_servers;
        for from in 0..MAX_EFFECT_SERVERS {
            for to in 0..MAX_EFFECT_SERVERS {
                if e.writes_channels & (1u64 << (from * MAX_EFFECT_SERVERS + to)) != 0 {
                    justified |= (1u8 << from) | (1u8 << to);
                }
            }
        }
        prop_assert_eq!(touched, justified);
    }

    /// Every write bit enumerated by `write_bits` is covered by the footprint that
    /// produced it, and a footprint with no write bits is independent of itself
    /// unless global (read-read sharing never conflicts).
    #[test]
    fn write_bits_round_trip(e in any_effect()) {
        for bit in e.write_bits() {
            let single = match bit {
                remix_spec::EffectBit::Server(i) => Effect::new().writes_server(i),
                remix_spec::EffectBit::Channel(f, t) => Effect::new().writes_channel(f, t),
                remix_spec::EffectBit::Flag(f) => Effect::new().writes_flag(f),
            };
            prop_assert!(
                e.covers_writes(&single) || e.is_global() || single.is_global(),
                "bit {bit} escaped its own footprint"
            );
        }
        if e.write_bits().is_empty() && !e.is_global() {
            prop_assert!(e.independent(&e), "a read-only footprint conflicts with itself");
        }
    }

    /// The global footprint is absorbing: it covers everything and is independent of
    /// nothing.
    #[test]
    fn global_is_absorbing(e in any_effect()) {
        let g = Effect::global();
        prop_assert!(g.covers_writes(&e));
        prop_assert!(!g.independent(&e));
        prop_assert!(!e.independent(&g));
        prop_assert!(e.union(&g).is_global());
    }
}

/// The builders saturate out-of-range indices to the global footprint instead of
/// silently truncating (a non-property sanity anchor for the strategies above).
#[test]
fn out_of_range_builders_saturate_to_global() {
    assert!(Effect::new().writes_server(MAX_EFFECT_SERVERS).is_global());
    assert!(Effect::new()
        .writes_channel(0, MAX_EFFECT_SERVERS)
        .is_global());
    assert!(Effect::new().writes_flag(flags::GLOBAL).is_global());
}
