//! A small TLA+-like value algebra.
//!
//! Specifications in this framework use typed Rust structs for their states (for speed),
//! but several cross-cutting facilities need a uniform, ordered, printable representation
//! of variable values: trace projection and condensation (Appendix B of the paper),
//! conformance checking (comparing a model-level variable with its code-level
//! counterpart), and report serialization.  [`Value`] plays that role.

use std::collections::BTreeMap;
use std::fmt;

/// A TLA+-style value: booleans, integers, strings, sequences, sets and records.
///
/// `Value` is totally ordered so it can be placed in sets and used as a map key, and it
/// implements [`fmt::Display`] with TLA+-like syntax (`<<...>>` for sequences, `{...}`
/// for sets, `[k |-> v]` for records).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A string (also used for model constants such as `"LEADING"`).
    Str(String),
    /// A finite sequence (TLA+ `<<v1, v2, ...>>`).
    Seq(Vec<Value>),
    /// A finite set (TLA+ `{v1, v2, ...}`), kept sorted and deduplicated.
    Set(Vec<Value>),
    /// A record (TLA+ `[field |-> value, ...]`).
    Record(BTreeMap<String, Value>),
}

impl Value {
    /// Builds a set value, sorting and deduplicating the given elements.
    pub fn set(mut elems: Vec<Value>) -> Self {
        elems.sort();
        elems.dedup();
        Value::Set(elems)
    }

    /// Builds a sequence value.
    pub fn seq(elems: Vec<Value>) -> Self {
        Value::Seq(elems)
    }

    /// Builds a record value from `(field, value)` pairs.
    pub fn record<I>(fields: I) -> Self
    where
        I: IntoIterator<Item = (String, Value)>,
    {
        Value::Record(fields.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// Returns the integer payload, if this value is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the sequence elements, if this value is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the set elements, if this value is a set.
    pub fn as_set(&self) -> Option<&[Value]> {
        match self {
            Value::Set(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the record fields, if this value is a record.
    pub fn as_record(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Record(r) => Some(r),
            _ => None,
        }
    }

    /// Returns `true` if `self` is a sequence and a prefix of the sequence `other`.
    ///
    /// This is the `⊑` relation the paper uses in invariants I-8/I-9/I-10.
    pub fn is_prefix_of(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Seq(a), Value::Seq(b)) => a.len() <= b.len() && &b[..a.len()] == a.as_slice(),
            _ => false,
        }
    }

    /// Returns `true` if `self` is a set and a subset of the set `other`.
    pub fn is_subset_of(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Set(a), Value::Set(b)) => a.iter().all(|x| b.binary_search(x).is_ok()),
            _ => false,
        }
    }

    /// Returns the number of elements for sequences, sets and records; 1 otherwise.
    pub fn len(&self) -> usize {
        match self {
            Value::Seq(v) | Value::Set(v) => v.len(),
            Value::Record(r) => r.len(),
            _ => 1,
        }
    }

    /// Returns `true` if this is an empty sequence, set or record.
    pub fn is_empty(&self) -> bool {
        match self {
            Value::Seq(v) | Value::Set(v) => v.is_empty(),
            Value::Record(r) => r.is_empty(),
            _ => false,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Seq(v.into_iter().map(Into::into).collect())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Seq(v) => {
                write!(f, "<<")?;
                for (idx, e) in v.iter().enumerate() {
                    if idx > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ">>")
            }
            Value::Set(v) => {
                write!(f, "{{")?;
                for (idx, e) in v.iter().enumerate() {
                    if idx > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "}}")
            }
            Value::Record(r) => {
                write!(f, "[")?;
                for (idx, (k, v)) in r.iter().enumerate() {
                    if idx > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} |-> {v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_sorts_and_dedups() {
        let s = Value::set(vec![Value::Int(3), Value::Int(1), Value::Int(3)]);
        assert_eq!(s, Value::Set(vec![Value::Int(1), Value::Int(3)]));
    }

    #[test]
    fn prefix_relation() {
        let a = Value::from(vec![1i64, 2]);
        let b = Value::from(vec![1i64, 2, 3]);
        assert!(a.is_prefix_of(&b));
        assert!(!b.is_prefix_of(&a));
        assert!(a.is_prefix_of(&a));
        // Non-sequences are never prefixes.
        assert!(!Value::Int(1).is_prefix_of(&b));
    }

    #[test]
    fn subset_relation() {
        let a = Value::set(vec![Value::Int(1)]);
        let b = Value::set(vec![Value::Int(1), Value::Int(2)]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
    }

    #[test]
    fn display_is_tla_like() {
        let v = Value::record(vec![
            ("mtype".to_owned(), Value::str("ACK")),
            ("mzxid".to_owned(), Value::from(vec![1i64, 2])),
        ]);
        assert_eq!(v.to_string(), "[mtype |-> \"ACK\", mzxid |-> <<1, 2>>]");
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(
            Value::set(vec![Value::Int(2), Value::Int(1)]).to_string(),
            "{1, 2}"
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Int(7).as_bool().is_none());
        assert_eq!(Value::from(vec![1i64]).len(), 1);
        assert!(Value::Seq(vec![]).is_empty());
        assert!(!Value::Int(0).is_empty());
    }
}
