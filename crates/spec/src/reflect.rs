//! Semantic field reflection for effect auditing.
//!
//! The declared [`Effect`] footprint of an action is a *promise* about
//! which parts of the state the action may write.  To check that promise dynamically,
//! the analyzer needs to observe which parts of the state actually changed across a
//! transition — at the granularity of the effect domains (servers, directed channels,
//! global flags), not raw struct fields.
//!
//! A state type opts into auditing by implementing [`StateFields`]: it enumerates its
//! *semantic fields* as stable `(path, domain)` pairs, where the path is a
//! human-readable name like `server[1].currentEpoch` or `link[0][2]` and the domain is
//! a write-bit-only [`Effect`] mask saying which declared footprint bits
//! cover a write of that field.  Alongside the static enumeration, the state hashes
//! each field independently so the audit can diff a parent and child state field by
//! field without materialising per-field values.
//!
//! The contract: for a fixed configuration (e.g. a fixed server count), `fields()`
//! returns the same list for every state of the run, and `field_hashes` pushes exactly
//! one hash per field, index-aligned with that list.  A field whose hash differs
//! between parent and child was *written* by the transition; the audit then checks the
//! field's domain bits against the action's declared write set.
//!
//! Derived facts count: if an action changes `reachable(a, b)` by crashing server `a`,
//! the `link[a][b]` field changes even though no channel queue was touched — exactly
//! the class of under-declaration (NodeRestart, PR 7) this pass exists to catch.

use crate::effect::Effect;

/// One semantic field of an auditable state: a stable path plus the effect-domain
/// write bits that cover a write of this field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldInfo {
    /// Stable human-readable path, e.g. `server[1].currentEpoch` or `msgs[0][2]`.
    pub path: String,
    /// Write-bit-only [`Effect`] mask: the declared footprint bits that cover a write
    /// of this field.  A transition changing this field without declaring at least
    /// these write bits is unsound.
    pub domain: Effect,
}

impl FieldInfo {
    /// Creates a field descriptor.
    pub fn new(path: impl Into<String>, domain: Effect) -> Self {
        FieldInfo {
            path: path.into(),
            domain,
        }
    }
}

/// Reflection over the semantic fields of a state, for effect auditing.
///
/// See the module documentation for the index-alignment and stability contract.
pub trait StateFields {
    /// Enumerates the semantic fields of this state as stable `(path, domain)` pairs.
    ///
    /// For a fixed configuration the list must be identical (same paths, same order)
    /// for every reachable state, so audits can compare hash vectors positionally.
    fn fields(&self) -> Vec<FieldInfo>;

    /// Appends one hash per field to `out`, index-aligned with [`fields`](Self::fields).
    ///
    /// Two states whose `i`-th hashes differ must differ in the `i`-th field; equal
    /// field values must hash equal.  (Hash collisions can mask a write — acceptable
    /// for an audit, which over-approximates soundness anyway.)
    fn field_hashes(&self, out: &mut Vec<u64>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_info_carries_path_and_domain() {
        let f = FieldInfo::new("server[0].state", Effect::new().writes_server(0));
        assert_eq!(f.path, "server[0].state");
        assert_eq!(f.domain.writes_servers, 1);
    }
}
