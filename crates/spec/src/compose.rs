//! Composition of per-module specifications into mixed-grained specifications.
//!
//! The paper composes module specifications of different granularities by taking the
//! disjunction of their actions as the next-state relation (Figure 7) and selecting the
//! invariants appropriate for the chosen granularities (§3.5.1).  [`compose`] performs the
//! mechanical assembly; the Remix crate builds [`CompositionPlan`]s from a specification
//! library and runs the interaction-preservation check before composing.

use std::collections::BTreeSet;

use crate::action::Granularity;
use crate::error::SpecError;
use crate::invariant::Invariant;
use crate::module::{ModuleId, ModuleSpec};
use crate::spec::{Spec, SpecState};

/// One entry of a composition plan: which granularity to use for a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModuleChoice {
    /// The module to include.
    pub module: ModuleId,
    /// The granularity of the specification to use for that module.
    pub granularity: Granularity,
}

/// A composition plan: the per-module granularity choices of one mixed-grained
/// specification (one row of Table 1).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CompositionPlan {
    /// Human-readable specification name, e.g. `"mSpec-3"`.
    pub name: String,
    /// The per-module choices.
    pub choices: Vec<ModuleChoice>,
}

impl CompositionPlan {
    /// Creates a plan with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CompositionPlan {
            name: name.into(),
            choices: Vec::new(),
        }
    }

    /// Adds a module choice and returns the plan (builder style).
    pub fn with(mut self, module: ModuleId, granularity: Granularity) -> Self {
        self.choices.push(ModuleChoice {
            module,
            granularity,
        });
        self
    }

    /// Returns the granularity chosen for `module`, if present in the plan.
    pub fn granularity_of(&self, module: ModuleId) -> Option<Granularity> {
        self.choices
            .iter()
            .find(|c| c.module == module)
            .map(|c| c.granularity)
    }
}

/// Composes selected module specifications and invariants into a full specification.
///
/// * `modules` must contain exactly one specification per distinct [`ModuleId`];
/// * `invariants` is filtered by applicability: a scoped invariant is only included when
///   the module it talks about is present at a sufficient granularity.
pub fn compose<S: SpecState>(
    name: impl Into<String>,
    init: Vec<S>,
    modules: Vec<ModuleSpec<S>>,
    invariants: Vec<Invariant<S>>,
) -> Result<Spec<S>, SpecError> {
    let mut seen: BTreeSet<ModuleId> = BTreeSet::new();
    for m in &modules {
        if !seen.insert(m.module) {
            return Err(SpecError::DuplicateModule {
                module: m.module.name().to_owned(),
            });
        }
    }

    let granularity_of = |module: ModuleId| -> Option<Granularity> {
        modules
            .iter()
            .find(|m| m.module == module)
            .map(|m| m.granularity)
    };
    let selected: Vec<Invariant<S>> = invariants
        .into_iter()
        .filter(|inv| inv.applies(&granularity_of))
        .collect();

    Ok(Spec::new(name, init, modules, selected))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, ActionInstance};
    use crate::invariant::InvariantSource;
    use crate::spec::testutil::{Counters, MOD_X, MOD_Y};

    fn module(module: ModuleId, granularity: Granularity) -> ModuleSpec<Counters> {
        let action = ActionDef::new(
            "Noop",
            module,
            granularity,
            vec!["x"],
            vec!["x"],
            |s: &Counters| vec![ActionInstance::new("Noop", s.clone())],
        );
        ModuleSpec::new(module, granularity, vec![action])
    }

    #[test]
    fn compose_rejects_duplicate_modules() {
        let err = compose(
            "dup",
            vec![Counters { x: 0, y: 0 }],
            vec![
                module(MOD_X, Granularity::Baseline),
                module(MOD_X, Granularity::Coarse),
            ],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, SpecError::DuplicateModule { .. }));
    }

    #[test]
    fn compose_filters_invariants_by_scope() {
        let always: Invariant<Counters> =
            Invariant::always("I-1", "always", InvariantSource::Protocol, |_| true);
        let scoped: Invariant<Counters> = Invariant::scoped(
            "I-11",
            "code-level",
            InvariantSource::Code,
            MOD_Y,
            Granularity::FineConcurrent,
            |_| true,
        );
        // MOD_Y is only at baseline granularity: the code-level invariant is dropped.
        let spec = compose(
            "mix",
            vec![Counters { x: 0, y: 0 }],
            vec![
                module(MOD_X, Granularity::Coarse),
                module(MOD_Y, Granularity::Baseline),
            ],
            vec![always.clone(), scoped.clone()],
        )
        .unwrap();
        assert_eq!(spec.invariants.len(), 1);
        assert_eq!(spec.invariants[0].id, "I-1");

        // With MOD_Y fine-grained, both invariants apply.
        let spec = compose(
            "mix-fine",
            vec![Counters { x: 0, y: 0 }],
            vec![
                module(MOD_X, Granularity::Coarse),
                module(MOD_Y, Granularity::FineConcurrent),
            ],
            vec![always, scoped],
        )
        .unwrap();
        assert_eq!(spec.invariants.len(), 2);
    }

    #[test]
    fn plan_builder_records_choices() {
        let plan = CompositionPlan::new("mSpec-1")
            .with(MOD_X, Granularity::Coarse)
            .with(MOD_Y, Granularity::Baseline);
        assert_eq!(plan.granularity_of(MOD_X), Some(Granularity::Coarse));
        assert_eq!(plan.granularity_of(MOD_Y), Some(Granularity::Baseline));
        assert_eq!(plan.granularity_of(ModuleId("Z")), None);
        assert_eq!(plan.name, "mSpec-1");
    }
}
