//! Granularity projections: the abstraction relation between specifications of
//! different granularities.
//!
//! Composing modules at mixed granularities is only sound when the coarse module
//! specifications admit exactly the cross-module interactions of the finer ones (§3.2).
//! The refinement checker (`remix-checker::refine`) verifies this *semantically* by
//! exploring both compositions and comparing them under a [`TraceProjection`] — a triple
//! of
//!
//! * a **state projection**: the externally visible part of a state at the coarse
//!   granularity, with the internal bookkeeping of the coarsened modules (votes,
//!   notification messages, thread queues) normalized away;
//! * a **label projection**: which fine action labels are visible at the coarse
//!   granularity (`None` = internal step that the coarse side matches by stuttering);
//! * a **stability predicate**: whether a state is *between* coarse steps.  A coarse
//!   action such as `ElectionAndDiscovery` (Figure 5b) executes many fine transitions
//!   atomically; fine states inside that stretch correspond to no coarse state at all
//!   and are only compared once the stretch completes ("commit points" of the
//!   coarsening).
//!
//! [`TraceProjection::project_trace`] applies all three to a concrete trace, producing
//! the condensed, stable-snapshot [`ProjectedTrace`] on which trace equivalence (the
//! `~` relation of Appendix B.4) is decided.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::action::Granularity;
use crate::spec::SpecState;
use crate::trace::{condense, ProjectedStep, ProjectedTrace, Trace};
use crate::value::Value;

/// Function projecting a state onto its externally visible variables.
pub type StateProjectionFn<S> = Arc<dyn Fn(&S) -> BTreeMap<String, Value> + Send + Sync>;

/// Function mapping a fine action label onto the coarse label space (`None` = internal).
pub type LabelProjectionFn = Arc<dyn Fn(&str) -> Option<String> + Send + Sync>;

/// Predicate deciding whether a state lies between coarse steps (a commit point).
pub type StabilityFn<S> = Arc<dyn Fn(&S) -> bool + Send + Sync>;

/// The abstraction relation between two granularities of one specification library.
#[derive(Clone)]
pub struct TraceProjection<S> {
    /// Human-readable name, e.g. `"Coarse⊑Baseline(Election+Discovery)"`.
    pub name: String,
    /// The coarse (abstract) granularity of the pair.
    pub coarse: Granularity,
    /// The fine (concrete) granularity of the pair.
    pub fine: Granularity,
    state: StateProjectionFn<S>,
    label: LabelProjectionFn,
    stable: StabilityFn<S>,
    /// Whether the projection is *equivariant* under the state type's symmetry group:
    /// renaming process ids before projecting yields the same projected class as
    /// projecting first (see [`TraceProjection::assume_equivariant`]).
    equivariant: bool,
}

impl<S: SpecState> TraceProjection<S> {
    /// Creates the identity projection between two granularities: every variable is
    /// visible, every label is visible unchanged, and every state is stable.
    ///
    /// `coarse` must strictly abstract `fine` ([`Granularity::abstracts`]); the
    /// constructor asserts this so ill-ordered pairs fail loudly at construction time.
    pub fn identity(name: impl Into<String>, coarse: Granularity, fine: Granularity) -> Self {
        assert!(
            coarse.abstracts(fine),
            "{coarse} does not abstract {fine}: projections go from fine to coarse"
        );
        TraceProjection {
            name: name.into(),
            coarse,
            fine,
            state: Arc::new(|s: &S| {
                let vars = S::variable_names();
                s.project(&vars)
            }),
            label: Arc::new(|l: &str| Some(l.to_owned())),
            stable: Arc::new(|_| true),
            equivariant: false,
        }
    }

    /// Replaces the state projection.
    pub fn with_state(
        mut self,
        state: impl Fn(&S) -> BTreeMap<String, Value> + Send + Sync + 'static,
    ) -> Self {
        self.state = Arc::new(state);
        self
    }

    /// Replaces the label projection.
    pub fn with_label(
        mut self,
        label: impl Fn(&str) -> Option<String> + Send + Sync + 'static,
    ) -> Self {
        self.label = Arc::new(label);
        self
    }

    /// Replaces the stability predicate.
    pub fn with_stability(mut self, stable: impl Fn(&S) -> bool + Send + Sync + 'static) -> Self {
        self.stable = Arc::new(stable);
        self
    }

    /// Declares the projection *equivariant* under the state type's symmetry group:
    /// for every state `s`, permutation `π` and this projection `p`, `p(π(s))` and
    /// `p(s)` are the same projected class (e.g. the projection only exposes
    /// permutation-invariant summaries — multisets, cardinalities, budgets — rather
    /// than per-process-indexed values), and the stability predicate agrees on a
    /// state and its renamings.
    ///
    /// This is the soundness precondition for running the refinement checker with
    /// `SymmetryMode::Canonicalize`: the checker only keys a refinement comparison on
    /// canonical forms when the projection carries this declaration, because a
    /// non-equivariant projection would let the two sides pick different
    /// representatives of one projected class and report a spurious divergence.  The
    /// declaration is a promise by the projection author — it is not checked.
    pub fn assume_equivariant(mut self) -> Self {
        self.equivariant = true;
        self
    }

    /// Whether [`TraceProjection::assume_equivariant`] was declared.
    pub fn is_equivariant(&self) -> bool {
        self.equivariant
    }

    /// Projects one state onto its externally visible variables.
    pub fn project_state(&self, state: &S) -> BTreeMap<String, Value> {
        (self.state)(state)
    }

    /// Maps a fine action label onto the coarse label space (`None` = internal step).
    pub fn project_label(&self, label: &str) -> Option<String> {
        (self.label)(label)
    }

    /// Returns `true` when `state` is a commit point of the coarsening (it corresponds
    /// to a coarse state and participates in the refinement comparison).
    pub fn is_stable(&self, state: &S) -> bool {
        (self.stable)(state)
    }

    /// Projects a trace: keeps the stable snapshots, projects each onto the visible
    /// variables, maps the labels, and condenses away stuttering steps.
    ///
    /// The result is total on every trace (projection never fails): unstable steps are
    /// folded into the preceding stable snapshot, internal labels are replaced by `"τ"`
    /// when the projected state still changed (which the condensation then keeps), and
    /// repeated projections are dropped.
    pub fn project_trace(&self, trace: &Trace<S>) -> ProjectedTrace {
        let mut steps: Vec<ProjectedStep> = Vec::new();
        for (i, step) in trace.steps.iter().enumerate() {
            if !self.is_stable(&step.state) {
                continue;
            }
            let action = if i == 0 {
                step.action.clone()
            } else {
                self.project_label(&step.action)
                    .unwrap_or_else(|| "τ".to_owned())
            };
            steps.push(ProjectedStep {
                action,
                vars: self.project_state(&step.state),
            });
        }
        condense(&ProjectedTrace { steps })
    }
}

impl<S> fmt::Debug for TraceProjection<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceProjection")
            .field("name", &self.name)
            .field("coarse", &self.coarse)
            .field("fine", &self.fine)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil::Counters;

    fn sample() -> Trace<Counters> {
        let mut t = Trace::from_init(Counters { x: 0, y: 0 });
        t.push("IncX(0)", Counters { x: 1, y: 0 });
        t.push("IncY(0)", Counters { x: 1, y: 1 });
        t.push("IncX(1)", Counters { x: 2, y: 1 });
        t
    }

    fn y_projection() -> TraceProjection<Counters> {
        TraceProjection::identity("y-only", Granularity::Coarse, Granularity::Baseline)
            .with_state(|s: &Counters| s.project(&["y"]))
            .with_label(|l: &str| {
                if l.starts_with("IncY") {
                    Some(l.to_owned())
                } else {
                    None
                }
            })
    }

    #[test]
    #[should_panic(expected = "does not abstract")]
    fn identity_rejects_ill_ordered_pairs() {
        let _ = TraceProjection::<Counters>::identity(
            "bad",
            Granularity::FineAtomic,
            Granularity::Coarse,
        );
    }

    #[test]
    fn identity_projection_keeps_everything() {
        let p: TraceProjection<Counters> =
            TraceProjection::identity("id", Granularity::Coarse, Granularity::Baseline);
        let t = sample();
        let projected = p.project_trace(&t);
        assert_eq!(projected.steps.len(), 4);
        assert_eq!(projected.steps[1].action, "IncX(0)");
        assert!(p.is_stable(&Counters { x: 0, y: 0 }));
        assert_eq!(p.project_label("IncX(0)"), Some("IncX(0)".to_owned()));
    }

    #[test]
    fn state_and_label_projections_condense_internal_steps() {
        let p = y_projection();
        let t = sample();
        let projected = p.project_trace(&t);
        // Only the y-changing step survives condensation; the IncX steps stutter.
        assert_eq!(projected.steps.len(), 2);
        assert_eq!(projected.steps[1].action, "IncY(0)");
        assert_eq!(projected.steps[1].vars["y"], Value::Int(1));
        // Projection is idempotent: condensing the projected trace is a fixed point.
        assert_eq!(condense(&projected), projected);
    }

    #[test]
    fn unstable_snapshots_are_skipped() {
        // States with x > y are "mid-step" for this toy coarsening.
        let p = y_projection().with_stability(|s: &Counters| s.x == s.y);
        let t = sample();
        let projected = p.project_trace(&t);
        // Only (0, 0) and (1, 1) are stable; their y-projections are 0 and 1.
        assert_eq!(projected.steps.len(), 2);
        assert_eq!(projected.steps[0].vars["y"], Value::Int(0));
        assert_eq!(projected.steps[1].vars["y"], Value::Int(1));
    }

    #[test]
    fn internal_label_with_visible_change_becomes_tau() {
        // Everything visible in the state, but all labels internal: changes show as τ.
        let p: TraceProjection<Counters> =
            TraceProjection::identity("tau", Granularity::Coarse, Granularity::Baseline)
                .with_label(|_| None);
        let projected = p.project_trace(&sample());
        assert!(projected.steps.iter().skip(1).all(|s| s.action == "τ"));
        assert_eq!(projected.steps.len(), 4, "x/y change on every step");
    }
}
