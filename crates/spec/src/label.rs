//! Action-label interning.
//!
//! Every enabled [`ActionInstance`](crate::ActionInstance) carries a fully instantiated
//! label such as `"FollowerProcessNEWLEADER(2, 0)"`.  State-space exploration touches
//! millions of transitions, and storing one heap `String` per discovered state (plus a
//! clone per trace-reconstruction step) dominated the checker's allocation profile.  A
//! [`LabelTable`] deduplicates labels into dense 32-bit [`LabelId`]s: the distinct-label
//! count of a run is tiny compared to its state count (labels are bounded by the action
//! definitions times their parameter instantiations), so the table stays small while the
//! per-state bookkeeping shrinks to one `u32`.
//!
//! The table is shared by all worker threads of a run.  Lookups of already-interned
//! labels take a read lock only; the write lock is taken once per *distinct* label for
//! the lifetime of the run.

use std::collections::HashMap;
// sync-exempt: the spec crate sits below remix-checker and cannot use its
// instrumented checker::sync layer; this RwLock is leaf-level (never held while
// acquiring another lock), so it cannot participate in a lock-order cycle.
use std::sync::{Arc, PoisonError, RwLock};

/// A dense identifier of an interned action label (index into the [`LabelTable`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub u32);

/// The reserved label of initial states.
pub const INIT_LABEL: &str = "Init";

struct TableInner {
    /// Label → id.  The key shares its heap payload with the `labels` entry for the
    /// same id, so each distinct label's bytes are stored exactly once.
    ids: HashMap<Arc<str>, u32>,
    labels: Vec<Arc<str>>,
}

/// A thread-safe, append-only interning table of action labels.
///
/// Created once per checking run; see the module docs for the locking contract.
pub struct LabelTable {
    inner: RwLock<TableInner>,
}

impl Default for LabelTable {
    fn default() -> Self {
        Self::new()
    }
}

impl LabelTable {
    /// Creates a table with [`INIT_LABEL`] pre-interned as id 0.
    pub fn new() -> Self {
        let init: Arc<str> = Arc::from(INIT_LABEL);
        let mut ids = HashMap::new();
        ids.insert(Arc::clone(&init), 0);
        LabelTable {
            inner: RwLock::new(TableInner {
                ids,
                labels: vec![init],
            }),
        }
    }

    /// The id of the reserved `"Init"` label.
    pub fn init_id() -> LabelId {
        LabelId(0)
    }

    /// Interns a label.  An already-known label is simply dropped; a fresh one is
    /// copied once into a shared `Arc<str>` whose payload backs both the id map and
    /// the resolve vector.
    pub fn intern_owned(&self, label: String) -> LabelId {
        self.intern(&label)
    }

    /// Interns a borrowed label (copies the bytes only for labels not seen before).
    pub fn intern(&self, label: &str) -> LabelId {
        {
            let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(&id) = inner.ids.get(label) {
                return LabelId(id);
            }
        }
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = inner.ids.get(label) {
            return LabelId(id);
        }
        let id = inner.labels.len() as u32;
        let shared: Arc<str> = Arc::from(label);
        inner.labels.push(Arc::clone(&shared));
        inner.ids.insert(shared, id);
        LabelId(id)
    }

    /// Resolves an id back to its label (cloned out of the table).
    ///
    /// # Panics
    ///
    /// Panics when the id was not produced by this table.
    pub fn resolve(&self, id: LabelId) -> String {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        inner.labels[id.0 as usize].to_string()
    }

    /// Maps an id's label through `f` without cloning it out of the table.
    pub fn with_label<T>(&self, id: LabelId, f: impl FnOnce(&str) -> T) -> T {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        f(&inner.labels[id.0 as usize])
    }

    /// Number of distinct labels interned so far (including the reserved `"Init"`).
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .labels
            .len()
    }

    /// `true` when only the reserved `"Init"` label has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() <= 1
    }

    /// Approximate resident bytes of the table: each distinct label's bytes once
    /// (shared by the id map and the resolve vector), plus the two `Arc` handles and
    /// the id per label.
    pub fn approx_bytes(&self) -> usize {
        let inner = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        inner
            .labels
            .iter()
            .map(|l| l.len() + 2 * std::mem::size_of::<Arc<str>>())
            .sum::<usize>()
            + inner.labels.len() * std::mem::size_of::<u32>()
    }
}

impl std::fmt::Debug for LabelTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LabelTable")
            .field("labels", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_deduplicating() {
        let t = LabelTable::new();
        let a = t.intern("IncX(0)");
        let b = t.intern_owned("IncX(1)".to_owned());
        assert_ne!(a, b);
        assert_eq!(t.intern("IncX(0)"), a);
        assert_eq!(t.intern_owned("IncX(1)".to_owned()), b);
        assert_eq!(t.resolve(a), "IncX(0)");
        assert_eq!(t.resolve(b), "IncX(1)");
        assert_eq!(t.len(), 3, "Init is pre-interned");
        assert_eq!(t.intern(INIT_LABEL), LabelTable::init_id());
        assert!(!t.is_empty());
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    fn with_label_avoids_the_clone() {
        let t = LabelTable::new();
        let id = t.intern("NodeCrash(2)");
        assert_eq!(t.with_label(id, str::len), "NodeCrash(2)".len());
    }

    #[test]
    fn concurrent_interning_agrees() {
        let t = LabelTable::new();
        let ids: Vec<Vec<LabelId>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    scope.spawn(|| {
                        (0..64)
                            .map(|i| t.intern(&format!("L({})", i % 8)))
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        for other in &ids[1..] {
            assert_eq!(&ids[0], other);
        }
        assert_eq!(t.len(), 9);
    }
}
