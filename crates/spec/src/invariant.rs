//! Invariants: protocol-level and code-level safety properties.
//!
//! Table 2 of the paper distinguishes ten protocol-level invariants (Zab safety
//! properties) from eleven instances of four code-level invariant types (exceptions and
//! assertions in the ZooKeeper implementation).  Code-level invariants only make sense
//! for specifications that actually model the corresponding execution path, so every
//! invariant carries an [`InvariantScope`]; the composer uses it to select the invariants
//! that apply to a mixed-grained specification (§3.5.1).

use std::fmt;
use std::sync::Arc;

use crate::action::Granularity;
use crate::module::ModuleId;

/// Where an invariant comes from (the "Source" column of Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InvariantSource {
    /// A safety property defined by the Zab protocol (I-1..I-10).
    Protocol,
    /// An exception / assertion in the code-level implementation (I-11..I-14).
    Code,
}

impl fmt::Display for InvariantSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantSource::Protocol => f.write_str("Protocol"),
            InvariantSource::Code => f.write_str("Code"),
        }
    }
}

/// Applicability scope of an invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantScope {
    /// The invariant applies to specifications of any granularity.
    Always,
    /// The invariant only applies when the given module is specified at (at least) the
    /// given granularity, because it talks about execution paths that coarser
    /// specifications do not model.
    RequiresGranularity(ModuleId, Granularity),
}

/// Predicate type used by invariants.
pub type InvariantFn<S> = Arc<dyn Fn(&S) -> bool + Send + Sync>;

/// A named safety property checked on every reachable state.
#[derive(Clone)]
pub struct Invariant<S> {
    /// Identifier matching the paper, e.g. `"I-8"` or `"I-12.1"`.
    pub id: &'static str,
    /// Human-readable name, e.g. `"Initial history integrity"`.
    pub name: &'static str,
    /// Protocol-level or code-level.
    pub source: InvariantSource,
    /// When the invariant applies.
    pub scope: InvariantScope,
    /// The predicate; returns `true` when the state satisfies the invariant.
    pub check: InvariantFn<S>,
}

impl<S> Invariant<S> {
    /// Creates an invariant that applies at any granularity.
    pub fn always(
        id: &'static str,
        name: &'static str,
        source: InvariantSource,
        check: impl Fn(&S) -> bool + Send + Sync + 'static,
    ) -> Self {
        Invariant {
            id,
            name,
            source,
            scope: InvariantScope::Always,
            check: Arc::new(check),
        }
    }

    /// Creates an invariant that only applies when `module` is specified at a granularity
    /// of at least `granularity`.
    pub fn scoped(
        id: &'static str,
        name: &'static str,
        source: InvariantSource,
        module: ModuleId,
        granularity: Granularity,
        check: impl Fn(&S) -> bool + Send + Sync + 'static,
    ) -> Self {
        Invariant {
            id,
            name,
            source,
            scope: InvariantScope::RequiresGranularity(module, granularity),
            check: Arc::new(check),
        }
    }

    /// Evaluates the invariant on a state.
    pub fn holds(&self, state: &S) -> bool {
        (self.check)(state)
    }

    /// Returns `true` if the invariant applies to a composition where `module_granularity`
    /// reports the granularity chosen for each module.
    pub fn applies(&self, module_granularity: &dyn Fn(ModuleId) -> Option<Granularity>) -> bool {
        match &self.scope {
            InvariantScope::Always => true,
            InvariantScope::RequiresGranularity(module, needed) => {
                module_granularity(*module).is_some_and(|g| g.at_least(*needed))
            }
        }
    }
}

impl<S> fmt::Debug for Invariant<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Invariant")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("source", &self.source)
            .field("scope", &self.scope)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_invariant_applies_everywhere() {
        let inv: Invariant<u32> = Invariant::always(
            "I-1",
            "Primary uniqueness",
            InvariantSource::Protocol,
            |s| *s < 10,
        );
        assert!(inv.holds(&3));
        assert!(!inv.holds(&11));
        assert!(inv.applies(&|_m| None));
        assert_eq!(inv.source.to_string(), "Protocol");
    }

    #[test]
    fn scoped_invariant_requires_granularity() {
        let sync = ModuleId("Synchronization");
        let inv: Invariant<u32> = Invariant::scoped(
            "I-12",
            "Bad acknowledgments",
            InvariantSource::Code,
            sync,
            Granularity::FineConcurrent,
            |_| true,
        );
        // Not applicable when the module is only at baseline granularity.
        assert!(!inv.applies(&|m| (m == sync).then_some(Granularity::Baseline)));
        // Applicable when the module is fine-grained.
        assert!(inv.applies(&|m| (m == sync).then_some(Granularity::FineConcurrent)));
        // Not applicable when the module is absent from the composition.
        assert!(!inv.applies(&|_| None));
    }
}
