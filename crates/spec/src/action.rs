//! Actions: guarded atomic state transitions with declared variable footprints.
//!
//! A TLA+ action is a conjunction of enabling conditions and next-state updates.  Here an
//! [`ActionDef`] bundles a *successor function* (which enumerates every enabled parameter
//! instantiation of the action in a given state and returns the resulting next states)
//! together with metadata used by the rest of the framework:
//!
//! * the module the action belongs to (the paper decomposes Zab by phase),
//! * the [`Granularity`] of the specification the action was written for, and
//! * the declared *read* and *write* variable footprints, which drive the dependency /
//!   interaction-variable analysis of Appendix B and the interaction-preservation check.

use std::fmt;
use std::sync::Arc;

use crate::effect::Effect;
use crate::module::ModuleId;

/// Granularity of a module specification (§3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Granularity {
    /// Interaction-preserving coarsening of a module (e.g. the single
    /// `ElectionAndDiscovery` action of Figure 5b).
    Coarse,
    /// The system specification granularity (the baseline in Table 1).
    Baseline,
    /// Fine-grained modelling of non-atomic updates (the "atom." column of Table 1).
    FineAtomic,
    /// Fine-grained modelling of non-atomic updates and local (multithreading)
    /// concurrency (the "atom.+concur." column of Table 1).
    FineConcurrent,
    /// The protocol specification granularity (Zab paper pseudo-code, §2.1.1).
    Protocol,
}

impl Granularity {
    /// A short human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Granularity::Coarse => "Coarsened",
            Granularity::Baseline => "Baseline",
            Granularity::FineAtomic => "Fine-grained (atom.)",
            Granularity::FineConcurrent => "Fine-grained (atom.+concur.)",
            Granularity::Protocol => "Protocol",
        }
    }

    /// Returns `true` if this granularity models at least as much code-level detail as
    /// `other`.  `Coarse < Baseline < FineAtomic < FineConcurrent`; `Protocol` is treated
    /// as the coarsest.
    pub fn at_least(self, other: Granularity) -> bool {
        self.detail_rank() >= other.detail_rank()
    }

    /// Returns `true` if this granularity is a *strict* abstraction of `other`: it models
    /// strictly less code-level detail, so a specification at this granularity is the
    /// coarse side of a refinement check against a specification at `other`.
    ///
    /// `abstracts` is a strict partial order (irreflexive, asymmetric, transitive); it is
    /// the strict companion of [`Granularity::at_least`] with the arguments flipped:
    /// `a.abstracts(b) ⟺ b.at_least(a) ∧ a ≠ b` over the detail ranks.
    pub fn abstracts(self, other: Granularity) -> bool {
        self.detail_rank() < other.detail_rank()
    }

    fn detail_rank(self) -> u8 {
        match self {
            Granularity::Protocol => 0,
            Granularity::Coarse => 1,
            Granularity::Baseline => 2,
            Granularity::FineAtomic => 3,
            Granularity::FineConcurrent => 4,
        }
    }
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One enabled instantiation of an action in a particular state.
///
/// The label carries the concrete parameters (e.g. `FollowerProcessNEWLEADER(2, 0)`) so
/// that counterexample traces read like the paper's.
#[derive(Debug, Clone)]
pub struct ActionInstance<S> {
    /// Fully instantiated label, e.g. `"NodeCrash(1)"`.
    pub label: String,
    /// The successor state produced by executing the action.
    pub next: S,
    /// The instance's declared read/write footprint, when the action provides one.
    ///
    /// Must be a function of the label's parameters only (see [`crate::effect`]), so
    /// that every firing of the same label declares the same footprint.  `None` is the
    /// conservative default: the checker treats the instance as dependent on the whole
    /// state.
    pub effect: Option<Effect>,
}

impl<S> ActionInstance<S> {
    /// Creates a new instance with the given label and successor state (no declared
    /// footprint).
    pub fn new(label: impl Into<String>, next: S) -> Self {
        ActionInstance {
            label: label.into(),
            next,
            effect: None,
        }
    }

    /// Attaches a declared read/write footprint to the instance.
    #[must_use]
    pub fn with_effect(mut self, effect: Effect) -> Self {
        self.effect = Some(effect);
        self
    }
}

/// Type of the successor-enumeration function of an action.
pub type SuccessorFn<S> = Arc<dyn Fn(&S) -> Vec<ActionInstance<S>> + Send + Sync>;

/// A named, guarded atomic action with a declared variable footprint.
#[derive(Clone)]
pub struct ActionDef<S> {
    /// The action name without parameters, e.g. `"FollowerProcessNEWLEADER"`.
    pub name: &'static str,
    /// The module (protocol phase) this action belongs to.
    pub module: ModuleId,
    /// The granularity of the module specification this action was written for.
    pub granularity: Granularity,
    /// Variables read by the enabling condition or used to compute updates
    /// (dependency variables, Definition 2 rule 1/3).
    pub reads: Vec<&'static str>,
    /// Variables written by the next-state updates.
    pub writes: Vec<&'static str>,
    /// Enumerates every enabled instantiation of the action in the given state.
    pub successors: SuccessorFn<S>,
}

impl<S> ActionDef<S> {
    /// Creates an action definition.
    pub fn new(
        name: &'static str,
        module: ModuleId,
        granularity: Granularity,
        reads: Vec<&'static str>,
        writes: Vec<&'static str>,
        successors: impl Fn(&S) -> Vec<ActionInstance<S>> + Send + Sync + 'static,
    ) -> Self {
        ActionDef {
            name,
            module,
            granularity,
            reads,
            writes,
            successors: Arc::new(successors),
        }
    }

    /// Enumerates the enabled instantiations of this action in `state`.
    pub fn enabled(&self, state: &S) -> Vec<ActionInstance<S>> {
        (self.successors)(state)
    }
}

impl<S> fmt::Debug for ActionDef<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ActionDef")
            .field("name", &self.name)
            .field("module", &self.module)
            .field("granularity", &self.granularity)
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_action() -> ActionDef<u32> {
        ActionDef::new(
            "Increment",
            ModuleId("Counter"),
            Granularity::Baseline,
            vec!["count"],
            vec!["count"],
            |s: &u32| {
                if *s < 3 {
                    vec![ActionInstance::new(format!("Increment({s})"), s + 1)]
                } else {
                    vec![]
                }
            },
        )
    }

    #[test]
    fn enabled_respects_guard() {
        let a = counter_action();
        assert_eq!(a.enabled(&0).len(), 1);
        assert_eq!(a.enabled(&0)[0].next, 1);
        assert_eq!(a.enabled(&0)[0].label, "Increment(0)");
        assert!(a.enabled(&3).is_empty());
    }

    #[test]
    fn granularity_ordering() {
        assert!(Granularity::FineConcurrent.at_least(Granularity::Baseline));
        assert!(Granularity::Baseline.at_least(Granularity::Coarse));
        assert!(!Granularity::Coarse.at_least(Granularity::FineAtomic));
        assert_eq!(Granularity::FineAtomic.label(), "Fine-grained (atom.)");
        assert_eq!(Granularity::Coarse.to_string(), "Coarsened");
    }

    #[test]
    fn abstracts_is_strict() {
        assert!(Granularity::Coarse.abstracts(Granularity::Baseline));
        assert!(Granularity::Baseline.abstracts(Granularity::FineAtomic));
        assert!(Granularity::Protocol.abstracts(Granularity::Coarse));
        // Irreflexive and asymmetric.
        assert!(!Granularity::Baseline.abstracts(Granularity::Baseline));
        assert!(!Granularity::Baseline.abstracts(Granularity::Coarse));
    }

    #[test]
    fn debug_omits_closure() {
        let a = counter_action();
        let s = format!("{a:?}");
        assert!(s.contains("Increment"));
        assert!(s.contains("Counter"));
    }
}
