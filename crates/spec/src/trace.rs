//! Traces: sequences of states joined by action labels, with projection and condensation.
//!
//! Appendix B of the paper restricts attention to a target module by projecting every
//! state onto the module's dependency and interaction variables, and then *condensing*
//! the trace by dropping transitions that do not change the projection.  Those two
//! operations — [`project_trace`] and [`condense`] — are used by the empirical
//! interaction-preservation check and by conformance checking.

use std::collections::BTreeMap;
use std::fmt;

use crate::spec::SpecState;
use crate::value::Value;

/// One step of a trace: the action that was taken and the state it produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep<S> {
    /// The instantiated action label, e.g. `"NodeCrash(2)"`.  The initial state carries
    /// the label `"Init"`.
    pub action: String,
    /// The state after the action.
    pub state: S,
}

/// A finite execution: an initial state followed by action-labelled transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace<S> {
    /// The steps of the trace; the first step has action `"Init"`.
    pub steps: Vec<TraceStep<S>>,
}

impl<S> Default for Trace<S> {
    fn default() -> Self {
        Trace { steps: Vec::new() }
    }
}

impl<S> Trace<S> {
    /// Creates a trace starting from an initial state.
    pub fn from_init(init: S) -> Self {
        Trace {
            steps: vec![TraceStep {
                action: "Init".to_owned(),
                state: init,
            }],
        }
    }

    /// Appends a step.
    pub fn push(&mut self, action: impl Into<String>, state: S) {
        self.steps.push(TraceStep {
            action: action.into(),
            state,
        });
    }

    /// Number of transitions (the "Depth" columns of Tables 4-6 count transitions, i.e.
    /// steps excluding the initial state).
    pub fn depth(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }

    /// The last state of the trace, if any.
    pub fn last_state(&self) -> Option<&S> {
        self.steps.last().map(|s| &s.state)
    }

    /// The sequence of action labels, excluding the initial pseudo-action.
    pub fn action_labels(&self) -> Vec<&str> {
        self.steps
            .iter()
            .skip(1)
            .map(|s| s.action.as_str())
            .collect()
    }

    /// Returns `true` if the trace has no steps at all.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

impl<S: fmt::Debug> fmt::Display for Trace<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "State {i}: <{}>", step.action)?;
        }
        Ok(())
    }
}

/// A trace projected onto a set of variables: each step keeps only the projected values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectedTrace {
    /// Per-step projected variable assignments.
    pub steps: Vec<ProjectedStep>,
}

/// One step of a [`ProjectedTrace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProjectedStep {
    /// The action that produced this state (`"Init"` for the first step).
    pub action: String,
    /// The projected variable assignment.
    pub vars: BTreeMap<String, Value>,
}

/// Projects every state of `trace` onto the given variables.
pub fn project_trace<S: SpecState>(trace: &Trace<S>, vars: &[&str]) -> ProjectedTrace {
    ProjectedTrace {
        steps: trace
            .steps
            .iter()
            .map(|s| ProjectedStep {
                action: s.action.clone(),
                vars: s.state.project(vars),
            })
            .collect(),
    }
}

/// Condenses a projected trace by removing steps whose projection equals the previous
/// step's projection (the "not-interesting transitions" of Appendix B.3).
pub fn condense(trace: &ProjectedTrace) -> ProjectedTrace {
    let mut steps: Vec<ProjectedStep> = Vec::new();
    for step in &trace.steps {
        match steps.last() {
            Some(prev) if prev.vars == step.vars => {
                // Not interesting for the target module: merge into the previous state.
            }
            _ => steps.push(step.clone()),
        }
    }
    ProjectedTrace { steps }
}

/// The sequence of distinct projected assignments of a condensed trace.
///
/// Two traces are equivalent with respect to a target module exactly when their
/// condensed projections are equal (the `~` relation of Appendix B.4).
pub fn condensed_states(trace: &ProjectedTrace) -> Vec<BTreeMap<String, Value>> {
    condense(trace).steps.into_iter().map(|s| s.vars).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::testutil::Counters;

    fn sample_trace() -> Trace<Counters> {
        let mut t = Trace::from_init(Counters { x: 0, y: 0 });
        t.push("IncX(0)", Counters { x: 1, y: 0 });
        t.push("IncY(0)", Counters { x: 1, y: 1 });
        t.push("IncX(1)", Counters { x: 2, y: 1 });
        t
    }

    #[test]
    fn depth_and_labels() {
        let t = sample_trace();
        assert_eq!(t.depth(), 3);
        assert_eq!(t.action_labels(), vec!["IncX(0)", "IncY(0)", "IncX(1)"]);
        assert_eq!(t.last_state(), Some(&Counters { x: 2, y: 1 }));
        assert!(!t.is_empty());
        assert!(t.to_string().contains("State 0: <Init>"));
    }

    #[test]
    fn projection_keeps_only_requested_vars() {
        let t = sample_trace();
        let p = project_trace(&t, &["y"]);
        assert_eq!(p.steps.len(), 4);
        assert_eq!(p.steps[0].vars["y"], Value::Int(0));
        assert_eq!(p.steps[2].vars["y"], Value::Int(1));
        assert!(!p.steps[0].vars.contains_key("x"));
    }

    #[test]
    fn condensation_drops_uninteresting_transitions() {
        let t = sample_trace();
        // Projected onto `y`, the IncX transitions do not change the projection.
        let p = project_trace(&t, &["y"]);
        let c = condense(&p);
        assert_eq!(c.steps.len(), 2);
        assert_eq!(c.steps[0].vars["y"], Value::Int(0));
        assert_eq!(c.steps[1].vars["y"], Value::Int(1));
        // Condensation is idempotent.
        assert_eq!(condense(&c), c);
    }

    #[test]
    fn condensed_states_define_equivalence() {
        let t1 = sample_trace();
        // A different interleaving with the same `y`-projection.
        let mut t2 = Trace::from_init(Counters { x: 0, y: 0 });
        t2.push("IncX(0)", Counters { x: 1, y: 0 });
        t2.push("IncX(1)", Counters { x: 2, y: 0 });
        t2.push("IncY(0)", Counters { x: 2, y: 1 });
        let a = condensed_states(&project_trace(&t1, &["y"]));
        let b = condensed_states(&project_trace(&t2, &["y"]));
        assert_eq!(a, b);
        // Projected onto everything, the traces differ.
        let a = condensed_states(&project_trace(&t1, &["x", "y"]));
        let b = condensed_states(&project_trace(&t2, &["x", "y"]));
        assert_ne!(a, b);
    }
}
