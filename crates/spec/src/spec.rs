//! Complete specifications: initial states, a next-state relation and invariants.

use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;

use std::sync::Arc;

use crate::action::{ActionDef, Granularity};
use crate::effect::Effect;
use crate::invariant::Invariant;
use crate::label::{LabelId, LabelTable};
use crate::module::{ModuleId, ModuleSpec};
use crate::symmetry::{Canonicalize, IncrementalCanonicalize, Perm};
use crate::value::Value;

/// A canonicalization function attached to a [`Spec`]: maps a state to the canonical
/// representative of its orbit under the specification's symmetry group, returning the
/// permutation that was applied (see [`Canonicalize`]).
///
/// Stored type-erased so `Spec` stays usable for state types without a symmetry group,
/// and checker options can switch symmetry reduction on and off without generic bounds.
pub type CanonFn<S> = Arc<dyn Fn(&S) -> (S, Perm) + Send + Sync>;

/// Type-erased incremental canonicalization attached to a [`Spec`] alongside its
/// [`CanonFn`] (see [`IncrementalCanonicalize`]).
///
/// `memo` captures the per-process sort keys of a parent state about to be expanded;
/// `canon` canonicalizes one owned successor, reusing the memo for every process not in
/// the `touched` bitmask.  The memo travels as `Box<dyn Any>` so `Spec` needs no
/// associated-type parameter; the closure pair is constructed together, so the
/// downcast inside `canon` cannot fail.
pub struct IncrementalCanon<S> {
    /// Computes the expansion memo of a (canonical) parent state.
    #[allow(clippy::type_complexity)]
    pub memo: Arc<dyn Fn(&S) -> Box<dyn std::any::Any + Send + Sync> + Send + Sync>,
    /// Canonicalizes an owned successor given the parent memo and touched mask.
    #[allow(clippy::type_complexity)]
    pub canon: Arc<dyn Fn(S, &(dyn std::any::Any + Send + Sync), u8) -> (S, Perm) + Send + Sync>,
    /// Owned full canonicalization ([`Canonicalize::canonicalize_owned`]) for successors
    /// without a usable effect footprint: still skips the deep rewrite when the
    /// canonicalizing permutation is the identity.
    pub full_owned: Arc<dyn Fn(S) -> (S, Perm) + Send + Sync>,
}

impl<S> Clone for IncrementalCanon<S> {
    fn clone(&self) -> Self {
        IncrementalCanon {
            memo: Arc::clone(&self.memo),
            canon: Arc::clone(&self.canon),
            full_owned: Arc::clone(&self.full_owned),
        }
    }
}

/// Trait bound for states explored by the model checker.
///
/// States must be cloneable, hashable and comparable; `project` exposes selected
/// variables as [`Value`]s for trace projection (Appendix B) and conformance checking.
pub trait SpecState: Clone + Eq + Hash + fmt::Debug + Send + Sync + 'static {
    /// Projects the named variables of this state into a uniform value representation.
    ///
    /// Unknown variable names are simply omitted from the result, which lets callers pass
    /// the union of variable names from several granularities.
    fn project(&self, vars: &[&str]) -> BTreeMap<String, Value>;

    /// Returns the full list of variable names this state type exposes.
    fn variable_names() -> Vec<&'static str>;
}

/// A complete specification: `Init /\ [][Next]_vars` plus invariants.
///
/// The next-state relation is the disjunction of all actions of all selected module
/// specifications (the composition style of Figure 7).
#[derive(Clone)]
pub struct Spec<S> {
    /// Human-readable name, e.g. `"mSpec-3"`.
    pub name: String,
    /// The initial states.
    pub init: Vec<S>,
    /// The module specifications composing the next-state relation.
    pub modules: Vec<ModuleSpec<S>>,
    /// The invariants checked on every reachable state.
    pub invariants: Vec<Invariant<S>>,
    /// The specification's symmetry group, as a canonicalization function (`None` for
    /// state types without one).  Engines consult it only when their options request
    /// symmetry reduction; see [`Spec::with_canonicalization`].
    pub symmetry: Option<CanonFn<S>>,
    /// The incremental companion of [`symmetry`](Self::symmetry), when the state type
    /// provides one (see [`Spec::with_incremental_canonicalization`]).  Engines fall
    /// back to the full `symmetry` function for successors without a declared effect.
    pub incremental_symmetry: Option<IncrementalCanon<S>>,
}

impl<S: SpecState> Spec<S> {
    /// Creates a specification from its parts.
    pub fn new(
        name: impl Into<String>,
        init: Vec<S>,
        modules: Vec<ModuleSpec<S>>,
        invariants: Vec<Invariant<S>>,
    ) -> Self {
        Spec {
            name: name.into(),
            init,
            modules,
            invariants,
            symmetry: None,
            incremental_symmetry: None,
        }
    }

    /// Attaches the canonical-representative function of the state type's
    /// [`Canonicalize`] implementation as this specification's symmetry group.
    ///
    /// Attaching symmetry does not change any behaviour by itself: engines key their
    /// dedup maps, fingerprints and coverage counters on canonical forms only when
    /// their options select `SymmetryMode::Canonicalize` (the `REMIX_SYMMETRY` hook in
    /// `remix-checker`).
    pub fn with_canonicalization(mut self) -> Self
    where
        S: Canonicalize,
    {
        self.symmetry = Some(Arc::new(|s: &S| s.canonicalize()));
        self
    }

    /// Attaches an arbitrary canonicalization function as this specification's
    /// symmetry group (see [`CanonFn`] and the laws in [`crate::symmetry`]).
    pub fn with_symmetry(mut self, canon: CanonFn<S>) -> Self {
        self.symmetry = Some(canon);
        self
    }

    /// Like [`Spec::with_canonicalization`], additionally attaching the state type's
    /// [`IncrementalCanonicalize`] implementation so engines can reuse the parent's
    /// per-process sort keys on successors whose action declared an
    /// [`Effect`] footprint.
    pub fn with_incremental_canonicalization(mut self) -> Self
    where
        S: IncrementalCanonicalize,
    {
        self.symmetry = Some(Arc::new(|s: &S| s.canonicalize()));
        self.incremental_symmetry = Some(IncrementalCanon {
            memo: Arc::new(|s: &S| {
                Box::new(s.canon_memo()) as Box<dyn std::any::Any + Send + Sync>
            }),
            canon: Arc::new(
                |s: S, memo: &(dyn std::any::Any + Send + Sync), touched: u8| {
                    let memo = memo
                        .downcast_ref::<S::Memo>()
                        .expect("memo built by the paired closure");
                    s.canonicalize_incremental(memo, touched)
                },
            ),
            full_owned: Arc::new(|s: S| s.canonicalize_owned()),
        });
        self
    }

    /// Enumerates all successors of `state` under the next-state relation, labelled with
    /// the fully instantiated action name.
    pub fn successors(&self, state: &S) -> Vec<(String, S)> {
        let mut out = Vec::new();
        for module in &self.modules {
            for action in &module.actions {
                for inst in action.enabled(state) {
                    out.push((inst.label, inst.next));
                }
            }
        }
        out
    }

    /// Streams all successors of `state` to `f`, interning each instantiated label into
    /// `labels` and handing over the dense [`LabelId`] instead of the `String`.
    ///
    /// This is the checker's hot-path variant of [`Spec::successors`]: no intermediate
    /// successor vector is built, and the per-transition label allocation dies here —
    /// the owned label of each [`ActionInstance`](crate::ActionInstance) is consumed by
    /// the interner (stored once per *distinct* label for the whole run), so downstream
    /// bookkeeping stores a `u32` per transition rather than a heap string.
    ///
    /// The third closure argument is the instance's declared [`Effect`] footprint
    /// (`None` when the action does not declare one), which drives partial-order
    /// reduction and incremental canonicalization in the checker.
    pub fn for_each_successor(
        &self,
        state: &S,
        labels: &LabelTable,
        mut f: impl FnMut(LabelId, S, Option<Effect>),
    ) {
        for module in &self.modules {
            for action in &module.actions {
                for inst in action.enabled(state) {
                    f(labels.intern_owned(inst.label), inst.next, inst.effect);
                }
            }
        }
    }

    /// Returns the invariants violated by `state` (empty when all hold).
    pub fn violated_invariants(&self, state: &S) -> Vec<&Invariant<S>> {
        self.invariants
            .iter()
            .filter(|inv| !inv.holds(state))
            .collect()
    }

    /// Returns the granularity chosen for `module`, if the module is part of this
    /// specification.
    pub fn module_granularity(&self, module: ModuleId) -> Option<Granularity> {
        self.modules
            .iter()
            .find(|m| m.module == module)
            .map(|m| m.granularity)
    }

    /// All actions of the composed next-state relation, in module order.
    pub fn actions(&self) -> impl Iterator<Item = &ActionDef<S>> {
        self.modules.iter().flat_map(|m| m.actions.iter())
    }

    /// Total number of actions (reported in Table 3).
    pub fn action_count(&self) -> usize {
        self.modules.iter().map(|m| m.action_count()).sum()
    }

    /// Number of distinct variables mentioned by the composed actions (Table 3).
    pub fn variable_count(&self) -> usize {
        self.modules
            .iter()
            .flat_map(|m| m.variable_set())
            .collect::<std::collections::BTreeSet<_>>()
            .len()
    }

    /// The composition matrix: module → granularity (Table 1 rows).
    pub fn composition(&self) -> Vec<(ModuleId, Granularity)> {
        self.modules
            .iter()
            .map(|m| (m.module, m.granularity))
            .collect()
    }
}

impl<S> fmt::Debug for Spec<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Spec")
            .field("name", &self.name)
            .field("init_states", &self.init.len())
            .field("modules", &self.modules.len())
            .field("invariants", &self.invariants.len())
            .field("symmetry", &self.symmetry.is_some())
            .field("incremental_symmetry", &self.incremental_symmetry.is_some())
            .finish()
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! A tiny two-counter specification used by unit tests across the crate.

    use super::*;
    use crate::action::ActionInstance;
    use crate::invariant::InvariantSource;

    /// A toy state with two counters owned by two different "modules".
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    pub struct Counters {
        pub x: u32,
        pub y: u32,
    }

    impl SpecState for Counters {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, Value> {
            let mut m = BTreeMap::new();
            for v in vars {
                match *v {
                    "x" => {
                        m.insert("x".to_owned(), Value::from(self.x));
                    }
                    "y" => {
                        m.insert("y".to_owned(), Value::from(self.y));
                    }
                    _ => {}
                }
            }
            m
        }

        fn variable_names() -> Vec<&'static str> {
            vec!["x", "y"]
        }
    }

    pub const MOD_X: ModuleId = ModuleId("X");
    pub const MOD_Y: ModuleId = ModuleId("Y");

    pub fn spec(max: u32) -> Spec<Counters> {
        let inc_x = ActionDef::new(
            "IncX",
            MOD_X,
            Granularity::Baseline,
            vec!["x"],
            vec!["x"],
            move |s: &Counters| {
                if s.x < max {
                    vec![ActionInstance::new(
                        format!("IncX({})", s.x),
                        Counters { x: s.x + 1, y: s.y },
                    )]
                } else {
                    vec![]
                }
            },
        );
        let inc_y = ActionDef::new(
            "IncY",
            MOD_Y,
            Granularity::Baseline,
            vec!["x", "y"],
            vec!["y"],
            move |s: &Counters| {
                // `y` may only grow while it is below `x` (an interaction with module X).
                if s.y < s.x {
                    vec![ActionInstance::new(
                        format!("IncY({})", s.y),
                        Counters { x: s.x, y: s.y + 1 },
                    )]
                } else {
                    vec![]
                }
            },
        );
        let inv = Invariant::always(
            "INV-ORD",
            "y never exceeds x",
            InvariantSource::Protocol,
            |s: &Counters| s.y <= s.x,
        );
        Spec::new(
            "counters",
            vec![Counters { x: 0, y: 0 }],
            vec![
                ModuleSpec::new(MOD_X, Granularity::Baseline, vec![inc_x]),
                ModuleSpec::new(MOD_Y, Granularity::Baseline, vec![inc_y]),
            ],
            vec![inv],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::{spec, Counters, MOD_X};
    use super::*;

    #[test]
    fn successors_enumerate_all_enabled_actions() {
        let s = spec(2);
        let succ = s.successors(&Counters { x: 1, y: 0 });
        let labels: Vec<_> = succ.iter().map(|(l, _)| l.clone()).collect();
        assert!(labels.contains(&"IncX(1)".to_owned()));
        assert!(labels.contains(&"IncY(0)".to_owned()));
        assert_eq!(succ.len(), 2);
    }

    #[test]
    fn interned_successors_match_the_allocating_enumeration() {
        let s = spec(2);
        let labels = crate::label::LabelTable::new();
        let state = Counters { x: 1, y: 0 };
        let mut interned = Vec::new();
        s.for_each_successor(&state, &labels, |id, next, _effect| {
            interned.push((labels.resolve(id), next));
        });
        assert_eq!(s.successors(&state), interned);
        // Re-enumeration interns nothing new.
        let before = labels.len();
        s.for_each_successor(&state, &labels, |_, _, _| {});
        assert_eq!(labels.len(), before);
    }

    #[test]
    fn invariants_and_metadata() {
        let s = spec(2);
        assert!(s.violated_invariants(&Counters { x: 0, y: 0 }).is_empty());
        assert_eq!(s.violated_invariants(&Counters { x: 0, y: 1 }).len(), 1);
        assert_eq!(s.action_count(), 2);
        assert_eq!(s.variable_count(), 2);
        assert_eq!(s.module_granularity(MOD_X), Some(Granularity::Baseline));
        assert_eq!(s.module_granularity(ModuleId("Z")), None);
        assert_eq!(s.composition().len(), 2);
    }

    #[test]
    fn projection_skips_unknown_variables() {
        let c = Counters { x: 3, y: 1 };
        let p = c.project(&["x", "unknown"]);
        assert_eq!(p.len(), 1);
        assert_eq!(p["x"], Value::Int(3));
    }
}
