//! Dependency / interaction-variable analysis and interaction-preservation checking.
//!
//! These are the formal underpinnings of safe coarsening (§3.2 and Appendix B of the
//! paper).  The analysis works on the variable footprints that every action declares:
//!
//! * the **dependency variables** of a module are the variables read by its actions —
//!   either in an enabling condition or to compute an update (Definition 2; because each
//!   action declares *all* variables it reads, the transitive rule 3 is already folded
//!   into the declaration);
//! * the **interaction variables** of a specification are the variables shared between
//!   modules' dependency sets, closed under "a value assigned to an interaction variable
//!   is computed from these variables" (Definition 3, approximated by closing over the
//!   read sets of any action that writes an interaction variable);
//! * **interaction preservation** requires that, for a target module `M_i`, coarsening
//!   any other module must not change which protected variables (dependency variables of
//!   `M_i` plus interaction variables) it writes, nor remove those variables — only purely
//!   internal variables and their updates may be omitted.
//!
//! Besides the syntactic check, [`PreservationReport`] records the variables involved so
//! callers (the Remix composer, reports, tests) can display why a coarsening is safe.

use std::collections::{BTreeMap, BTreeSet};

use crate::module::{ModuleId, ModuleSpec};

/// The variable footprint of a module: reads (dependency variables) and writes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ModuleFootprint {
    /// Variables read by the module's actions (its dependency variables).
    pub reads: BTreeSet<&'static str>,
    /// Variables written by the module's actions.
    pub writes: BTreeSet<&'static str>,
}

/// Computes the footprint of a module specification.
pub fn module_footprint<S>(module: &ModuleSpec<S>) -> ModuleFootprint {
    ModuleFootprint {
        reads: module.read_set(),
        writes: module.write_set(),
    }
}

/// Computes the dependency variables of a module (Definition 2).
pub fn dependency_variables<S>(module: &ModuleSpec<S>) -> BTreeSet<&'static str> {
    module.read_set()
}

/// Result of the interaction analysis over a set of module specifications.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InteractionAnalysis {
    /// Dependency variables per module.
    pub dependencies: BTreeMap<ModuleId, BTreeSet<&'static str>>,
    /// The interaction variables of the whole specification (Definition 3).
    pub interaction: BTreeSet<&'static str>,
}

impl InteractionAnalysis {
    /// The protected variable set for a target module: its dependency variables plus all
    /// interaction variables.  Only variables outside this set may be coarsened away.
    pub fn protected_for(&self, target: ModuleId) -> BTreeSet<&'static str> {
        let mut out = self.interaction.clone();
        if let Some(deps) = self.dependencies.get(&target) {
            out.extend(deps.iter().copied());
        }
        out
    }
}

/// Computes dependency and interaction variables for a set of module specifications
/// (one specification per module; granularity does not matter for the analysis itself).
pub fn interaction_variables<S>(modules: &[&ModuleSpec<S>]) -> InteractionAnalysis {
    let mut dependencies: BTreeMap<ModuleId, BTreeSet<&'static str>> = BTreeMap::new();
    for m in modules {
        dependencies
            .entry(m.module)
            .or_default()
            .extend(m.read_set());
    }

    // Rule 1: variables shared by the dependency sets of two different modules.
    let mut interaction: BTreeSet<&'static str> = BTreeSet::new();
    let mods: Vec<_> = dependencies.keys().copied().collect();
    for (i, a) in mods.iter().enumerate() {
        for b in mods.iter().skip(i + 1) {
            interaction.extend(dependencies[a].intersection(&dependencies[b]).copied());
        }
    }

    // Rules 2 & 3 (approximated over declared footprints): if an action writes an
    // interaction variable or a dependency variable, the variables it reads feed that
    // assignment, so add any of them that are not already dependency variables of the
    // writing module to the interaction set.  Iterate to a fixed point.
    loop {
        let before = interaction.len();
        for m in modules {
            let own_deps = &dependencies[&m.module];
            for action in &m.actions {
                let writes_protected = action
                    .writes
                    .iter()
                    .any(|w| interaction.contains(w) || own_deps.contains(w));
                if writes_protected {
                    for r in &action.reads {
                        if !own_deps.contains(r) {
                            interaction.insert(r);
                        }
                    }
                }
            }
        }
        if interaction.len() == before {
            break;
        }
    }

    InteractionAnalysis {
        dependencies,
        interaction,
    }
}

/// A single violation of the interaction-preservation constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PreservationViolation {
    /// The coarsened module stopped writing a protected variable that the original
    /// module writes (its updates would be lost for the target module).
    MissingWrite {
        /// The module that was coarsened.
        module: ModuleId,
        /// The protected variable no longer written.
        variable: &'static str,
    },
    /// The coarsened module writes a protected variable that the original module does
    /// not write (it would introduce new interactions).
    ExtraWrite {
        /// The module that was coarsened.
        module: ModuleId,
        /// The protected variable newly written.
        variable: &'static str,
    },
}

/// The outcome of an interaction-preservation check.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PreservationReport {
    /// The protected variables (dependency variables of the target plus interaction
    /// variables) the check was performed against.
    pub protected: BTreeSet<&'static str>,
    /// Constraint violations; empty when the coarsening preserves interaction.
    pub violations: Vec<PreservationViolation>,
}

impl PreservationReport {
    /// Returns `true` when the coarsening satisfies the interaction-preservation
    /// constraints.
    pub fn preserved(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Checks that `coarse` is an interaction-preserving coarsening of `original` with
/// respect to the target module whose protected variable set is `protected`.
///
/// The check is the footprint-level counterpart of the two constraints in §3.2: the
/// coarsened module must write exactly the same protected variables as the original
/// (updates to protected variables are preserved), and may only drop variables and
/// updates that are internal to the coarsened module.
pub fn check_interaction_preservation<S>(
    original: &[&ModuleSpec<S>],
    coarse: &[&ModuleSpec<S>],
    protected: &BTreeSet<&'static str>,
) -> PreservationReport {
    let mut report = PreservationReport {
        protected: protected.clone(),
        violations: Vec::new(),
    };

    let orig_writes: BTreeSet<&'static str> = original
        .iter()
        .flat_map(|m| m.write_set())
        .filter(|v| protected.contains(v))
        .collect();
    let coarse_writes: BTreeSet<&'static str> = coarse
        .iter()
        .flat_map(|m| m.write_set())
        .filter(|v| protected.contains(v))
        .collect();
    let coarse_module = coarse
        .first()
        .map(|m| m.module)
        .unwrap_or(ModuleId("<empty>"));

    for v in orig_writes.difference(&coarse_writes) {
        report.violations.push(PreservationViolation::MissingWrite {
            module: coarse_module,
            variable: v,
        });
    }
    for v in coarse_writes.difference(&orig_writes) {
        report.violations.push(PreservationViolation::ExtraWrite {
            module: coarse_module,
            variable: v,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{ActionDef, ActionInstance, Granularity};

    type S = u32;

    fn action(
        name: &'static str,
        module: ModuleId,
        gran: Granularity,
        reads: Vec<&'static str>,
        writes: Vec<&'static str>,
    ) -> ActionDef<S> {
        ActionDef::new(name, module, gran, reads, writes, |_s: &S| {
            vec![ActionInstance::new("noop", 0u32)]
        })
    }

    const ELECTION: ModuleId = ModuleId("Election");
    const SYNC: ModuleId = ModuleId("Synchronization");

    fn election_fine() -> ModuleSpec<S> {
        ModuleSpec::new(
            ELECTION,
            Granularity::Baseline,
            vec![
                action(
                    "FLEHandleNotmsg",
                    ELECTION,
                    Granularity::Baseline,
                    vec!["currentVote", "state"],
                    vec!["currentVote", "state"],
                ),
                action(
                    "FLEDecide",
                    ELECTION,
                    Granularity::Baseline,
                    vec!["currentVote", "state"],
                    vec!["state", "zabState"],
                ),
            ],
        )
    }

    fn election_coarse_good() -> ModuleSpec<S> {
        ModuleSpec::new(
            ELECTION,
            Granularity::Coarse,
            vec![action(
                "ElectionAndDiscovery",
                ELECTION,
                Granularity::Coarse,
                vec!["state"],
                vec!["state", "zabState"],
            )],
        )
    }

    fn election_coarse_bad() -> ModuleSpec<S> {
        // Drops the update of `zabState`, which the Synchronization module depends on.
        ModuleSpec::new(
            ELECTION,
            Granularity::Coarse,
            vec![action(
                "ElectionAndDiscovery",
                ELECTION,
                Granularity::Coarse,
                vec!["state"],
                vec!["state"],
            )],
        )
    }

    fn sync_module() -> ModuleSpec<S> {
        ModuleSpec::new(
            SYNC,
            Granularity::Baseline,
            vec![action(
                "FollowerProcessNEWLEADER",
                SYNC,
                Granularity::Baseline,
                vec!["zabState", "state", "history"],
                vec!["history", "currentEpoch"],
            )],
        )
    }

    #[test]
    fn dependency_variables_are_reads() {
        let m = sync_module();
        let deps = dependency_variables(&m);
        assert!(deps.contains("zabState"));
        assert!(deps.contains("history"));
        assert!(!deps.contains("currentEpoch"));
        let fp = module_footprint(&m);
        assert!(fp.writes.contains("currentEpoch"));
    }

    #[test]
    fn interaction_variables_are_shared_dependencies() {
        let e = election_fine();
        let s = sync_module();
        let analysis = interaction_variables(&[&e, &s]);
        // `state` is read by both modules.
        assert!(analysis.interaction.contains("state"));
        // `currentVote` is internal to Election.
        assert!(!analysis.interaction.contains("currentVote"));
        let protected = analysis.protected_for(SYNC);
        assert!(protected.contains("zabState"));
        assert!(protected.contains("state"));
    }

    #[test]
    fn good_coarsening_preserves_interaction() {
        let e = election_fine();
        let s = sync_module();
        let analysis = interaction_variables(&[&e, &s]);
        let protected = analysis.protected_for(SYNC);
        let coarse = election_coarse_good();
        let report = check_interaction_preservation(&[&e], &[&coarse], &protected);
        assert!(report.preserved(), "violations: {:?}", report.violations);
    }

    #[test]
    fn dropping_protected_update_is_rejected() {
        let e = election_fine();
        let s = sync_module();
        let analysis = interaction_variables(&[&e, &s]);
        let protected = analysis.protected_for(SYNC);
        let coarse = election_coarse_bad();
        let report = check_interaction_preservation(&[&e], &[&coarse], &protected);
        assert!(!report.preserved());
        assert!(report.violations.iter().any(|v| matches!(
            v,
            PreservationViolation::MissingWrite {
                variable: "zabState",
                ..
            }
        )));
    }

    #[test]
    fn extra_protected_write_is_rejected() {
        let e = election_fine();
        let s = sync_module();
        let analysis = interaction_variables(&[&e, &s]);
        let protected = analysis.protected_for(SYNC);
        let coarse = ModuleSpec::new(
            ELECTION,
            Granularity::Coarse,
            vec![action(
                "ElectionAndDiscovery",
                ELECTION,
                Granularity::Coarse,
                vec!["state"],
                vec!["state", "zabState", "history"],
            )],
        );
        let report = check_interaction_preservation(&[&election_fine()], &[&coarse], &protected);
        assert!(!report.preserved());
        assert!(report.violations.iter().any(|v| matches!(
            v,
            PreservationViolation::ExtraWrite {
                variable: "history",
                ..
            }
        )));
    }
}
