//! Specification framework for multi-grained model checking.
//!
//! This crate provides the substrate that the paper writes in TLA+: a specification is a
//! state machine given by a set of initial states and a *next-state relation* that is the
//! disjunction of guarded atomic [`actions`](action::ActionDef).  Actions are grouped into
//! [`modules`](module::ModuleSpec) (one per protocol phase in the ZooKeeper case study),
//! and every module specification carries a [`Granularity`] describing how closely it
//! models the code-level implementation.
//!
//! The framework supports:
//!
//! * **Composition** ([`compose`](mod@compose)): assembling per-module specifications of different
//!   granularities into a single *mixed-grained* specification whose next-state relation
//!   is the disjunction of all chosen actions (the paper's Figure 7).
//! * **Dependency / interaction-variable analysis** ([`analysis`]): the conservative
//!   rules of Definitions 2 and 3 in the paper's Appendix B, computed over the variable
//!   footprints that every action declares.
//! * **Interaction-preservation checking** ([`analysis::check_interaction_preservation`]):
//!   the two syntactic constraints of §3.2 that make coarsening safe, plus trace
//!   projection and condensation utilities used for the empirical equivalence check.
//! * **Invariants** ([`invariant`]): protocol-level and code-level safety properties with
//!   applicability scopes, so that a composed specification automatically selects the
//!   invariants that make sense for its granularity (§3.5.1).
//! * **Traces** ([`trace`]): counterexample and simulation traces with projection onto a
//!   target module, used both for debugging and for conformance checking.
//! * **Granularity projections** ([`projection`]): the abstraction relation between two
//!   granularities of the same library — per-state and per-label projections plus a
//!   stability predicate — consumed by the refinement checker
//!   (`remix-checker::refine`) to prove that a coarse composition simulates a fine one.
//! * **Field reflection** ([`reflect`]): enumeration of a state's semantic fields as
//!   stable `(path, hash)` pairs mapped to effect domains, the substrate of the
//!   `remix-analyze` effect audit (observed writes vs declared footprints).
//! * **Symmetry reduction** ([`symmetry`]): canonical representatives under a
//!   permutation group of process ids ([`Canonicalize`] / [`Perm`]), attached to a
//!   specification via [`Spec::with_canonicalization`] and consumed by the checker
//!   engines to dedup whole orbits of id-renamed states at once.

#![warn(missing_docs)]

pub mod action;
pub mod analysis;
pub mod compose;
pub mod effect;
pub mod error;
pub mod invariant;
pub mod label;
pub mod module;
pub mod projection;
pub mod reflect;
pub mod spec;
pub mod symmetry;
pub mod trace;
pub mod value;

pub use action::{ActionDef, ActionInstance, Granularity};
pub use analysis::{
    check_interaction_preservation, dependency_variables, interaction_variables, module_footprint,
    InteractionAnalysis, ModuleFootprint, PreservationReport, PreservationViolation,
};
pub use compose::{compose, CompositionPlan, ModuleChoice};
pub use effect::{Effect, EffectBit};
pub use error::SpecError;
pub use invariant::{Invariant, InvariantScope, InvariantSource};
pub use label::{LabelId, LabelTable, INIT_LABEL};
pub use module::{ModuleId, ModuleSpec};
pub use projection::{LabelProjectionFn, StabilityFn, StateProjectionFn, TraceProjection};
pub use reflect::{FieldInfo, StateFields};
pub use spec::{CanonFn, IncrementalCanon, Spec, SpecState};
pub use symmetry::{canon_stats, Canonicalize, IncrementalCanonicalize, Perm};
pub use trace::{
    condense, condensed_states, project_trace, ProjectedStep, ProjectedTrace, Trace, TraceStep,
};
pub use value::Value;
