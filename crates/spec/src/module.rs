//! Modules: named sets of actions, specified at a particular granularity.
//!
//! A module is the unit of decomposition (Definition 1 in Appendix B).  For ZooKeeper the
//! modules are the four Zab phases (Figure 6) plus a fault module; the framework itself
//! is agnostic and identifies modules with string tags.

use std::collections::BTreeSet;
use std::fmt;

use crate::action::{ActionDef, Granularity};

/// Identifier of a module (a set of actions, Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ModuleId(pub &'static str);

impl ModuleId {
    /// The module name.
    pub fn name(&self) -> &'static str {
        self.0
    }
}

impl fmt::Display for ModuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.0)
    }
}

/// A specification of one module at one granularity.
///
/// Multiple `ModuleSpec`s may exist for the same [`ModuleId`] (one per granularity);
/// composition picks exactly one per module (§3.3).
#[derive(Clone)]
pub struct ModuleSpec<S> {
    /// The module this specification describes.
    pub module: ModuleId,
    /// The granularity of this specification.
    pub granularity: Granularity,
    /// The actions of this module at this granularity.
    pub actions: Vec<ActionDef<S>>,
}

impl<S> ModuleSpec<S> {
    /// Creates a module specification, asserting that each action is tagged with the
    /// module and granularity it is registered under.
    pub fn new(module: ModuleId, granularity: Granularity, actions: Vec<ActionDef<S>>) -> Self {
        debug_assert!(
            actions
                .iter()
                .all(|a| a.module == module && a.granularity == granularity),
            "actions must be tagged with the module/granularity they are registered under"
        );
        ModuleSpec {
            module,
            granularity,
            actions,
        }
    }

    /// Number of actions in this module specification (reported in Table 3).
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }

    /// The union of the variables read by this module's actions.
    pub fn read_set(&self) -> BTreeSet<&'static str> {
        self.actions
            .iter()
            .flat_map(|a| a.reads.iter().copied())
            .collect()
    }

    /// The union of the variables written by this module's actions.
    pub fn write_set(&self) -> BTreeSet<&'static str> {
        self.actions
            .iter()
            .flat_map(|a| a.writes.iter().copied())
            .collect()
    }

    /// The union of all variables mentioned (read or written) by this module.
    pub fn variable_set(&self) -> BTreeSet<&'static str> {
        let mut v = self.read_set();
        v.extend(self.write_set());
        v
    }
}

impl<S> fmt::Debug for ModuleSpec<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ModuleSpec")
            .field("module", &self.module)
            .field("granularity", &self.granularity)
            .field(
                "actions",
                &self.actions.iter().map(|a| a.name).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ActionInstance;

    fn action(
        name: &'static str,
        reads: Vec<&'static str>,
        writes: Vec<&'static str>,
    ) -> ActionDef<u32> {
        ActionDef::new(
            name,
            ModuleId("M"),
            Granularity::Baseline,
            reads,
            writes,
            move |_s: &u32| vec![ActionInstance::new(name, 0u32)],
        )
    }

    #[test]
    fn footprints_are_unions() {
        let m = ModuleSpec::new(
            ModuleId("M"),
            Granularity::Baseline,
            vec![
                action("A", vec!["x", "y"], vec!["x"]),
                action("B", vec!["y", "z"], vec!["w"]),
            ],
        );
        assert_eq!(m.action_count(), 2);
        assert_eq!(m.read_set(), ["x", "y", "z"].into_iter().collect());
        assert_eq!(m.write_set(), ["w", "x"].into_iter().collect());
        assert_eq!(m.variable_set(), ["w", "x", "y", "z"].into_iter().collect());
    }

    #[test]
    fn module_id_display() {
        assert_eq!(ModuleId("Election").to_string(), "Election");
        assert_eq!(ModuleId("Election").name(), "Election");
    }
}
