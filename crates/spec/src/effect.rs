//! Static read/write footprints of action instances, used for dynamic partial-order
//! reduction and incremental canonicalization.
//!
//! An [`Effect`] is a conservative, *label-determined* footprint: it must be a function
//! of the action's parameters alone (never of the state it fires in), so that the same
//! label always declares the same footprint.  Where the true footprint is state-dependent
//! (e.g. "clear the channel to whoever my leader is"), the declaration must be a
//! superset (e.g. the whole channel row).  Declaring no effect at all
//! (`ActionInstance::effect == None`) is always sound: the checker treats such an action
//! as dependent on everything and recomputes canonical forms from scratch after it.
//!
//! The footprint covers three resource domains:
//!
//! * **servers** — per-server replica state, as a bitmask over server ids `0..8`;
//! * **channels** — directed FIFO message channels, bit `from * 8 + to` of a `u64`.
//!   Network-level facts about the link (reachability, partition status) are charged to
//!   the channel bits of both directions, so a send (which *reads* reachability) and a
//!   partition (which *writes* it) conflict through the channel domain;
//! * **flags** — named global scalars (fault budgets, ghost history, the first-writer
//!   violation cell).
//!
//! Two effects are *independent* exactly when neither's write set intersects the other's
//! read-or-write set in any domain ([`Effect::independent`]), the classical condition
//! under which the two transitions commute and preserve each other's enabledness.  For
//! that condition to be meaningful the declared reads must also cover the action's
//! *guard* reads, not just the values flowing into the written state.
#![allow(clippy::module_name_repetitions)]

/// Maximum number of servers representable in a footprint mask.
pub const MAX_EFFECT_SERVERS: usize = 8;

/// Named global scalars of the flag domain (bits of `Effect::{reads,writes}_flags`).
pub mod flags {
    /// The remaining crash budget.
    pub const CRASH_BUDGET: u16 = 1 << 0;
    /// The remaining partition budget.
    pub const PARTITION_BUDGET: u16 = 1 << 1;
    /// The transaction-creation budget.
    pub const TXN_BUDGET: u16 = 1 << 2;
    /// Ghost bookkeeping (established leaders, broadcast history, ...).
    pub const GHOST: u16 = 1 << 3;
    /// The first-writer-wins code-violation cell.  Writes to it never commute, so any
    /// action that *may* record a violation must declare a read *and* a write of this
    /// flag.
    pub const VIOLATION: u16 = 1 << 4;
    /// The whole state: an action declaring this bit conflicts with everything.
    pub const GLOBAL: u16 = 1 << 15;

    /// The human-readable name of a single flag bit, if it is one of the named scalars.
    #[must_use]
    pub fn name(bit: u16) -> Option<&'static str> {
        match bit {
            CRASH_BUDGET => Some("crashBudget"),
            PARTITION_BUDGET => Some("partitionBudget"),
            TXN_BUDGET => Some("txnBudget"),
            GHOST => Some("ghost"),
            VIOLATION => Some("violation"),
            GLOBAL => Some("global"),
            _ => None,
        }
    }
}

/// One named bit of an [`Effect`] write set, used by analysis passes to report
/// undeclared or unused footprint bits in human-readable form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EffectBit {
    /// The replica state of one server.
    Server(usize),
    /// One directed channel `from -> to` (content or link-level status).
    Channel(usize, usize),
    /// One global flag scalar (a bit of the flag domain).
    Flag(u16),
}

impl std::fmt::Display for EffectBit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            EffectBit::Server(i) => write!(f, "server[{i}]"),
            EffectBit::Channel(from, to) => write!(f, "channel[{from}->{to}]"),
            EffectBit::Flag(bit) => match flags::name(bit) {
                Some(name) => write!(f, "flag[{name}]"),
                None => write!(f, "flag[{bit:#06x}]"),
            },
        }
    }
}

/// A conservative read/write footprint of one action instance.
///
/// Built with the fluent constructors; all sets default to empty.  See the module
/// documentation for the soundness contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Effect {
    /// Servers whose replica state the action reads (guards included), as a bitmask.
    pub reads_servers: u8,
    /// Servers whose replica state the action may write, as a bitmask.
    pub writes_servers: u8,
    /// Directed channels the action reads (bit `from * 8 + to`).
    pub reads_channels: u64,
    /// Directed channels the action may write (send, pop, clear, or their
    /// partition/reachability status).
    pub writes_channels: u64,
    /// Global flag scalars the action reads.
    pub reads_flags: u16,
    /// Global flag scalars the action may write.
    pub writes_flags: u16,
}

impl Effect {
    /// An empty footprint (reads and writes nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The whole-state footprint: dependent on everything, canonical keys of every
    /// server may change.
    #[must_use]
    pub fn global() -> Self {
        Self {
            reads_flags: flags::GLOBAL,
            writes_flags: flags::GLOBAL,
            ..Self::default()
        }
    }

    /// Returns `true` when the footprint covers the whole state.
    #[must_use]
    pub fn is_global(&self) -> bool {
        (self.reads_flags | self.writes_flags) & flags::GLOBAL != 0
    }

    fn server_bit(i: usize) -> Option<u8> {
        (i < MAX_EFFECT_SERVERS).then(|| 1u8 << i)
    }

    fn channel_bit(from: usize, to: usize) -> Option<u64> {
        (from < MAX_EFFECT_SERVERS && to < MAX_EFFECT_SERVERS)
            .then(|| 1u64 << (from * MAX_EFFECT_SERVERS + to))
    }

    /// Declares a read of server `i`'s state.  Out-of-range ids degrade to [`global`](Self::global).
    #[must_use]
    pub fn reads_server(mut self, i: usize) -> Self {
        match Self::server_bit(i) {
            Some(b) => self.reads_servers |= b,
            None => return Self::global(),
        }
        self
    }

    /// Declares a write (and implicitly a read) of server `i`'s state.
    #[must_use]
    pub fn writes_server(mut self, i: usize) -> Self {
        match Self::server_bit(i) {
            Some(b) => {
                self.writes_servers |= b;
                self.reads_servers |= b;
            }
            None => return Self::global(),
        }
        self
    }

    /// Declares a read of the directed channel `from -> to` (its content or its
    /// link-level status such as reachability).
    #[must_use]
    pub fn reads_channel(mut self, from: usize, to: usize) -> Self {
        match Self::channel_bit(from, to) {
            Some(b) => self.reads_channels |= b,
            None => return Self::global(),
        }
        self
    }

    /// Declares a write (and implicitly a read) of the directed channel `from -> to`.
    #[must_use]
    pub fn writes_channel(mut self, from: usize, to: usize) -> Self {
        match Self::channel_bit(from, to) {
            Some(b) => {
                self.writes_channels |= b;
                self.reads_channels |= b;
            }
            None => return Self::global(),
        }
        self
    }

    /// Declares writes of every channel adjacent to server `i` (both directions), the
    /// footprint of crashing or shutting down a server.
    #[must_use]
    pub fn writes_channels_of(mut self, i: usize) -> Self {
        if i >= MAX_EFFECT_SERVERS {
            return Self::global();
        }
        let row: u64 = 0xffu64 << (i * MAX_EFFECT_SERVERS);
        let col: u64 = (0..MAX_EFFECT_SERVERS)
            .map(|f| 1u64 << (f * MAX_EFFECT_SERVERS + i))
            .fold(0, |a, b| a | b);
        self.writes_channels |= row | col;
        self.reads_channels |= row | col;
        self
    }

    /// Declares a read of a flag scalar (see [`flags`]).
    #[must_use]
    pub fn reads_flag(mut self, f: u16) -> Self {
        self.reads_flags |= f;
        self
    }

    /// Declares a write (and implicitly a read) of a flag scalar (see [`flags`]).
    #[must_use]
    pub fn writes_flag(mut self, f: u16) -> Self {
        self.writes_flags |= f;
        self.reads_flags |= f;
        self
    }

    /// `true` when the two effects are independent: neither's writes intersect the
    /// other's reads or writes in any domain.  Independent transitions commute and
    /// preserve each other's enabledness, the premise of sleep-set pruning.
    #[must_use]
    pub fn independent(&self, other: &Effect) -> bool {
        if self.is_global() || other.is_global() {
            return false;
        }
        let servers = (self.writes_servers & (other.reads_servers | other.writes_servers))
            | (other.writes_servers & (self.reads_servers | self.writes_servers));
        let channels = (self.writes_channels & (other.reads_channels | other.writes_channels))
            | (other.writes_channels & (self.reads_channels | self.writes_channels));
        let flags = (self.writes_flags & (other.reads_flags | other.writes_flags))
            | (other.writes_flags & (self.reads_flags | self.writes_flags));
        servers == 0 && channels == 0 && flags == 0
    }

    /// The union of two footprints: reads and writes are combined bitwise per domain.
    ///
    /// Union is monotone for conflict: if `a` conflicts with `b`, then `a.union(c)`
    /// still conflicts with `b` for any `c` — widening a footprint can only lose
    /// precision, never soundness.
    #[must_use]
    pub fn union(&self, other: &Effect) -> Effect {
        Effect {
            reads_servers: self.reads_servers | other.reads_servers,
            writes_servers: self.writes_servers | other.writes_servers,
            reads_channels: self.reads_channels | other.reads_channels,
            writes_channels: self.writes_channels | other.writes_channels,
            reads_flags: self.reads_flags | other.reads_flags,
            writes_flags: self.writes_flags | other.writes_flags,
        }
    }

    /// `true` when every write bit of `other` is also a write bit of `self` — i.e. this
    /// declaration is at least as wide as the observed footprint `other`.  A global
    /// footprint covers everything.
    #[must_use]
    pub fn covers_writes(&self, other: &Effect) -> bool {
        if self.is_global() {
            return true;
        }
        if other.is_global() {
            return false;
        }
        other.writes_servers & !self.writes_servers == 0
            && other.writes_channels & !self.writes_channels == 0
            && other.writes_flags & !self.writes_flags == 0
    }

    /// Enumerates the individual write bits of this footprint as named [`EffectBit`]s,
    /// in a deterministic order (servers, then channels, then flags).
    #[must_use]
    pub fn write_bits(&self) -> Vec<EffectBit> {
        let mut out = Vec::new();
        for i in 0..MAX_EFFECT_SERVERS {
            if self.writes_servers & (1u8 << i) != 0 {
                out.push(EffectBit::Server(i));
            }
        }
        for from in 0..MAX_EFFECT_SERVERS {
            for to in 0..MAX_EFFECT_SERVERS {
                if self.writes_channels & (1u64 << (from * MAX_EFFECT_SERVERS + to)) != 0 {
                    out.push(EffectBit::Channel(from, to));
                }
            }
        }
        for bit in 0..16 {
            if self.writes_flags & (1u16 << bit) != 0 {
                out.push(EffectBit::Flag(1u16 << bit));
            }
        }
        out
    }

    /// The servers whose permutation-invariant canonical sort key may differ between
    /// the pre- and post-state of this action: every written server plus both endpoints
    /// of every written channel (channel lengths and partition status are part of both
    /// endpoints' keys).  Meaningless for [`global`](Self::global) effects — callers
    /// must recompute everything in that case.
    #[must_use]
    pub fn touched_servers(&self) -> u8 {
        let mut touched = self.writes_servers;
        let mut chans = self.writes_channels;
        while chans != 0 {
            let bit = chans.trailing_zeros() as usize;
            touched |= 1 << (bit / MAX_EFFECT_SERVERS);
            touched |= 1 << (bit % MAX_EFFECT_SERVERS);
            chans &= chans - 1;
        }
        touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_footprints_are_independent() {
        let a = Effect::new().writes_server(0).writes_channel(2, 0);
        let b = Effect::new().writes_server(1).writes_channel(2, 1);
        assert!(a.independent(&b));
        assert!(b.independent(&a));
    }

    #[test]
    fn read_write_overlap_is_dependent() {
        // b only *reads* server 0, which a writes.
        let a = Effect::new().writes_server(0);
        let b = Effect::new().reads_server(0).writes_server(1);
        assert!(!a.independent(&b));
        // Pure read/read overlap stays independent.
        let c = Effect::new().reads_server(0).writes_server(2);
        assert!(b.independent(&c));
    }

    #[test]
    fn flags_conflict_and_global_dominates() {
        let a = Effect::new().writes_flag(flags::VIOLATION).writes_server(0);
        let b = Effect::new().writes_flag(flags::VIOLATION).writes_server(1);
        assert!(!a.independent(&b));
        assert!(!Effect::global().independent(&Effect::new()));
        assert!(Effect::global().is_global());
    }

    #[test]
    fn channel_row_covers_every_direction() {
        let crash = Effect::new().writes_server(1).writes_channels_of(1);
        let send = Effect::new().writes_server(0).writes_channel(0, 1);
        let other = Effect::new().writes_server(0).writes_channel(0, 2);
        assert!(!crash.independent(&send), "send into the crashed row");
        assert!(crash.independent(&other), "unrelated link commutes");
    }

    #[test]
    fn touched_servers_covers_channel_endpoints() {
        let e = Effect::new().writes_server(0).writes_channel(2, 1);
        assert_eq!(e.touched_servers(), 0b111);
        let crash = Effect::new().writes_server(3).writes_channels_of(3);
        assert_eq!(crash.touched_servers(), 0xff);
    }

    #[test]
    fn union_and_coverage() {
        let a = Effect::new().writes_server(0).writes_channel(0, 1);
        let b = Effect::new().writes_server(1).writes_flag(flags::GHOST);
        let u = a.union(&b);
        assert!(u.covers_writes(&a) && u.covers_writes(&b));
        assert!(!a.covers_writes(&b));
        assert!(Effect::global().covers_writes(&u));
        assert!(!u.covers_writes(&Effect::global()));
    }

    #[test]
    fn write_bits_are_named_and_deterministic() {
        let e = Effect::new()
            .writes_server(2)
            .writes_channel(1, 0)
            .writes_flag(flags::VIOLATION);
        let bits = e.write_bits();
        assert_eq!(
            bits,
            vec![
                EffectBit::Server(2),
                EffectBit::Channel(1, 0),
                EffectBit::Flag(flags::VIOLATION),
            ]
        );
        assert_eq!(bits[0].to_string(), "server[2]");
        assert_eq!(bits[1].to_string(), "channel[1->0]");
        assert_eq!(bits[2].to_string(), "flag[violation]");
    }

    #[test]
    fn out_of_range_ids_degrade_to_global() {
        assert!(Effect::new().writes_server(9).is_global());
        assert!(Effect::new().writes_channel(0, 12).is_global());
    }
}
