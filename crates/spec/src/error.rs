//! Error types for the specification framework.

use std::fmt;

/// Errors produced while building, composing or analysing specifications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A composition plan selected a module that is not available in the library.
    UnknownModule {
        /// The requested module identifier.
        module: String,
        /// The requested granularity.
        granularity: String,
    },
    /// Two module specifications claim the same module identifier in one composition.
    DuplicateModule {
        /// The duplicated module identifier.
        module: String,
    },
    /// The composition plan left a required module unassigned.
    MissingModule {
        /// The missing module identifier.
        module: String,
    },
    /// A coarsened module violates the interaction-preservation constraints.
    InteractionNotPreserved {
        /// Human-readable description of the violated constraint.
        detail: String,
    },
    /// An invariant identifier was requested but is not registered.
    UnknownInvariant {
        /// The requested invariant identifier.
        id: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::UnknownModule {
                module,
                granularity,
            } => {
                write!(
                    f,
                    "no specification for module `{module}` at granularity `{granularity}`"
                )
            }
            SpecError::DuplicateModule { module } => {
                write!(
                    f,
                    "module `{module}` selected more than once in the composition"
                )
            }
            SpecError::MissingModule { module } => {
                write!(f, "composition plan does not cover module `{module}`")
            }
            SpecError::InteractionNotPreserved { detail } => {
                write!(f, "interaction preservation violated: {detail}")
            }
            SpecError::UnknownInvariant { id } => write!(f, "unknown invariant `{id}`"),
        }
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_identifiers() {
        let e = SpecError::UnknownModule {
            module: "Election".to_owned(),
            granularity: "Coarse".to_owned(),
        };
        assert!(e.to_string().contains("Election"));
        assert!(e.to_string().contains("Coarse"));
        let e = SpecError::UnknownInvariant {
            id: "I-8".to_owned(),
        };
        assert!(e.to_string().contains("I-8"));
    }
}
