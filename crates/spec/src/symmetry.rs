//! Symmetry reduction: canonical representatives under a permutation group.
//!
//! Distributed-system state spaces are dominated by states that differ only by a
//! renaming of process identities: with `n` symmetric servers, every reachable state
//! has up to `n!` indistinguishable siblings, and an explicit-state checker that
//! fingerprints each sibling separately pays the full factorial redundancy in both
//! memory and throughput.  Symmetry reduction (TLC's `SYMMETRY` sets) explores one
//! *canonical representative* per orbit instead.
//!
//! This module provides the two pieces the engines need:
//!
//! * [`Perm`] — a permutation of `0..n` process ids, with identity, composition and
//!   inversion.  Engines record the permutation applied at every discovery edge so a
//!   violation trace can later be *de-canonicalized* back into the original id frame
//!   (see `remix-checker`'s store).
//! * [`Canonicalize`] — the per-state-type contract: map a state to the canonical
//!   representative of its orbit, returning the permutation that was applied, and
//!   rewrite a state under an arbitrary permutation.
//!
//! # Laws
//!
//! Implementations must satisfy, for all states `s` and permutations `π` over the
//! state's id domain:
//!
//! 1. **Consistency** — `s.canonicalize() == (c, π)` implies `s.permute(&π) == c`.
//! 2. **Idempotence** — `canon(canon(s)) == canon(s)` (canonical forms are fixed
//!    points, up to the identity permutation).
//! 3. **Orbit invariance** — `canon(s.permute(&π)) == canon(s)`: every member of an
//!    orbit maps to the same representative.  This is the property that makes keying
//!    dedup maps, fingerprints and coverage counters on canonical forms sound.
//!
//! Soundness of *exploration* under canonicalization additionally needs the
//! specification itself to be equivariant (`t ∈ succ(s)` iff `π(t) ∈ succ(π(s))`);
//! see the symmetry section of `ARCHITECTURE.md` for the argument and for where the
//! Zab model approximates it.

use std::fmt;

/// A permutation of the dense id domain `0..n`.
///
/// `perm.apply(i)` is the new id of old id `i`.  Displayed in cycle-free one-line
/// notation, e.g. `[2, 0, 1]` maps `0 → 2`, `1 → 0`, `2 → 1`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Perm(Vec<u32>);

impl Perm {
    /// The identity permutation over `0..n`.
    pub fn identity(n: usize) -> Self {
        Perm((0..n as u32).collect())
    }

    /// Builds a permutation from its one-line image vector (`image[i]` is the new id
    /// of old id `i`).
    ///
    /// # Panics
    ///
    /// Panics when `image` is not a permutation of `0..image.len()`.
    pub fn from_image(image: Vec<u32>) -> Self {
        let n = image.len();
        let mut seen = vec![false; n];
        for &v in &image {
            assert!(
                (v as usize) < n && !std::mem::replace(&mut seen[v as usize], true),
                "not a permutation of 0..{n}: {image:?}"
            );
        }
        Perm(image)
    }

    /// The size of the id domain.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty domain.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The new id of old id `i`.
    ///
    /// # Panics
    ///
    /// Panics when `i` is outside the id domain.
    pub fn apply(&self, i: usize) -> usize {
        self.0[i] as usize
    }

    /// `true` when this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.0.iter().enumerate().all(|(i, &v)| i as u32 == v)
    }

    /// The composition *self ∘ other*: first apply `other`, then `self`.
    ///
    /// `x.permute(&other).permute(&self) == x.permute(&self.compose(&other))` — the
    /// composition rule engines use to accumulate per-edge permutations along a
    /// parent chain.
    ///
    /// # Panics
    ///
    /// Panics when the domains differ.
    pub fn compose(&self, other: &Perm) -> Perm {
        assert_eq!(self.len(), other.len(), "composing different id domains");
        Perm(other.0.iter().map(|&v| self.0[v as usize]).collect())
    }

    /// The inverse permutation: `p.compose(&p.inverse())` is the identity.
    pub fn inverse(&self) -> Perm {
        let mut inv = vec![0u32; self.0.len()];
        for (i, &v) in self.0.iter().enumerate() {
            inv[v as usize] = i as u32;
        }
        Perm(inv)
    }

    /// The one-line image vector (`image[i]` is the new id of old id `i`).
    pub fn image(&self) -> &[u32] {
        &self.0
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Canonical representatives under a permutation group of process ids.
///
/// See the [module docs](self) for the laws implementations must satisfy, and
/// `remix-zab`'s `ZabState` implementation for the canonical example: servers are
/// sorted by a permutation-invariant sort key, groups of servers with equal keys are
/// resolved by minimizing the rewritten state, and every `Sid`-bearing field (network
/// channels, received votes, learner maps, pending acknowledgements, ghost
/// establishment records, leader and vote fields) is rewritten consistently.
pub trait Canonicalize: Sized {
    /// Returns the canonical representative of this state's orbit together with the
    /// permutation `π` that maps this state onto it (`canon == self.permute(&π)`).
    fn canonicalize(&self) -> (Self, Perm);

    /// Owned variant of [`canonicalize`](Self::canonicalize): consumes `self` so an
    /// implementation can return the state unchanged (no deep rewrite) when the
    /// canonicalizing permutation turns out to be the identity — which in a checker
    /// expanding successors of an already-canonical parent is the common case.
    /// Must agree with `canonicalize` on both components for every state.
    fn canonicalize_owned(self) -> (Self, Perm) {
        self.canonicalize()
    }

    /// Rewrites every id-bearing field of the state through `perm` (old id `i`
    /// becomes `perm.apply(i)`).
    fn permute(&self, perm: &Perm) -> Self;
}

/// Incremental canonicalization: reuse the parent state's per-process sort keys when
/// only a known subset of processes changed.
///
/// A checker expands one (already canonical) parent into many successors.  With a memo
/// of the parent's permutation-invariant sort keys and, per successor, a conservative
/// bitmask of the processes the generating action may have *touched* (from
/// [`Effect::touched_servers`](crate::effect::Effect::touched_servers)), the
/// implementation only recomputes the touched keys — and when the merged key sequence
/// is already strictly sorted, the successor is its own canonical form and is returned
/// untouched, skipping the deep permuting rewrite entirely.
///
/// The law tying the two traits together: for every state `s`, memo `m = p.canon_memo()`
/// of a parent `p`, and touched mask `t` that covers every process whose key differs
/// between `p` and `s`,
/// `s.clone().canonicalize_incremental(&m, t) == s.canonicalize()`.
pub trait IncrementalCanonicalize: Canonicalize {
    /// The memoized per-process keys of a state (opaque to the checker).
    type Memo: Send + Sync + 'static;

    /// Computes the memo for a state about to be expanded.
    fn canon_memo(&self) -> Self::Memo;

    /// Canonicalizes `self`, reusing `memo` for every process not in `touched`
    /// (bit `i` set ⇒ process `i`'s key must be recomputed).  Takes ownership so the
    /// common already-canonical case returns `self` without a clone.
    fn canonicalize_incremental(self, memo: &Self::Memo, touched: u8) -> (Self, Perm);
}

/// Process-global counters for canonicalization edge cases, snapshotted by the checker
/// into its per-run statistics (`CheckStats::canon_fallbacks` in `remix-checker`).
pub mod canon_stats {
    // sync-exempt: the spec crate sits below remix-checker and cannot use its
    // instrumented checker::sync layer; one lock-free statistics counter.
    use std::sync::atomic::{AtomicU64, Ordering};

    static TIE_CAP_FALLBACKS: AtomicU64 = AtomicU64::new(0);

    /// Records one tie-group that exceeded every refinement stage and fell back to a
    /// non-orbit-invariant ordering.  Any nonzero count means two members of one orbit
    /// may map to different representatives (dedup misses, never unsoundness).
    pub fn note_tie_cap_fallback() {
        // ordering: Relaxed — statistics only; runs snapshot the monotonic count
        // before and after and report the difference, no other memory rides on it.
        TIE_CAP_FALLBACKS.fetch_add(1, Ordering::Relaxed);
    }

    /// The process-global fallback count (monotonic; diff two reads to scope a run).
    #[must_use]
    pub fn tie_cap_fallbacks() -> u64 {
        // ordering: Relaxed — see note_tie_cap_fallback.
        TIE_CAP_FALLBACKS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_inverse() {
        let id = Perm::identity(4);
        assert!(id.is_identity());
        assert_eq!(id.apply(2), 2);
        let p = Perm::from_image(vec![2, 0, 1]);
        assert!(!p.is_identity());
        assert_eq!(p.apply(0), 2);
        assert!(p.compose(&p.inverse()).is_identity());
        assert!(p.inverse().compose(&p).is_identity());
        assert_eq!(p.to_string(), "[2, 0, 1]");
    }

    #[test]
    fn composition_applies_right_to_left() {
        // other first, then self.
        let swap01 = Perm::from_image(vec![1, 0, 2]);
        let rot = Perm::from_image(vec![1, 2, 0]);
        let composed = rot.compose(&swap01);
        for i in 0..3 {
            assert_eq!(composed.apply(i), rot.apply(swap01.apply(i)));
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn malformed_images_are_rejected() {
        let _ = Perm::from_image(vec![0, 0, 1]);
    }
}
