//! Lock-order audit over the real engines: every production code path must be clean.
//!
//! The instrumented sync layer (`remix_checker::sync`) assigns each lock site a rank
//! in the workspace lock hierarchy and, under audit, records per-thread held-lock
//! sets, acquisition-order edges and rank violations.  These tests run the actual
//! engines — parallel BFS across its worker/store/POR matrix, sequential DFS, guided
//! exploration, trace refinement — inside an audit session and require the resulting
//! lock-order graph to have **zero rank violations and zero cycles**.  Any regression
//! that nests locks against the declared hierarchy (the precursor of a real deadlock)
//! fails here with both witness stacks, long before a scheduler ever interleaves the
//! two acquisitions unluckily.
//!
//! The sessions also double as determinism probes: every matrix cell must agree with
//! the first cell on the explored state space.

use std::time::Duration;

use remix_checker::sync::audit;
use remix_checker::{
    check_bfs, check_dfs, check_refinement, explore, CheckOptions, ExploreOptions, RefineOptions,
    RefineVerdict, StoreMode, SymmetryMode,
};
use remix_zab::{ClusterConfig, CodeVersion, SpecPreset};

fn workload() -> remix_spec::Spec<remix_zab::ZabState> {
    // Crash-free single-transaction mSpec-1: small enough to exhaust in every cell,
    // yet it exercises the full production path (sharded store, batch buffers,
    // work-stealing frontier, condvar sleeps, POR footprint table).
    let config = ClusterConfig::small(CodeVersion::FinalFix)
        .with_transactions(1)
        .with_crashes(0);
    SpecPreset::MSpec1.build(&config)
}

fn options(workers: usize) -> CheckOptions {
    CheckOptions::default()
        .with_workers(workers)
        .with_time_budget(Duration::from_secs(300))
        .with_max_states(500_000)
}

#[test]
fn bfs_matrix_is_lock_order_clean_under_audit() {
    let spec = workload();
    let session = audit::session();
    let mut baseline: Option<usize> = None;
    for workers in [1, 2, 4] {
        for store in [StoreMode::Full, StoreMode::FingerprintOnly] {
            for por in [false, true] {
                let outcome = check_bfs(
                    &spec,
                    &options(workers).with_store_mode(store).with_por(por),
                );
                assert!(outcome.passed(), "workload must pass in every cell");
                let states = outcome.stats.distinct_states;
                match baseline {
                    None => baseline = Some(states),
                    Some(expected) => assert_eq!(
                        states, expected,
                        "workers={workers} store={store:?} por={por} diverged"
                    ),
                }
            }
        }
    }
    let report = session.report();
    assert!(
        report.acquisitions > 0,
        "the audit must have observed the run"
    );
    assert!(
        report.is_clean(),
        "BFS matrix must respect the lock hierarchy: {:?} {:?}",
        report.rank_violations,
        report.cycles()
    );
}

#[test]
fn dfs_and_guided_exploration_are_lock_order_clean_under_audit() {
    let spec = workload();
    let session = audit::session();
    let dfs = check_dfs(&spec, &options(1).with_max_depth(24));
    assert!(dfs.stats.distinct_states > 0);
    let explored = explore(
        &spec,
        &ExploreOptions::default()
            .with_traces(64)
            .with_max_depth(24)
            .with_seed(11)
            .with_time_budget(Duration::from_secs(60))
            .with_symmetry(SymmetryMode::Off)
            .guided(8),
    );
    assert!(explored.stats.traces > 0);
    let report = session.report();
    assert!(report.acquisitions > 0);
    assert!(
        report.is_clean(),
        "DFS + guided exploration must respect the lock hierarchy: {:?} {:?}",
        report.rank_violations,
        report.cycles()
    );
}

#[test]
fn refinement_check_is_lock_order_clean_under_audit() {
    let config = ClusterConfig::small(CodeVersion::FinalFix)
        .with_transactions(1)
        .with_crashes(0);
    let fine = SpecPreset::SysSpec.build(&config);
    let coarse = SpecPreset::MSpec1.build(&config);
    let projection = remix_zab::coarse_vs_baseline(&config);
    let session = audit::session();
    let outcome = check_refinement(
        &fine,
        &coarse,
        &projection,
        &RefineOptions::default()
            .with_workers(2)
            .with_max_states(200_000)
            .with_time_budget(Duration::from_secs(120)),
    );
    assert_ne!(
        outcome.verdict(),
        RefineVerdict::Diverges,
        "honest presets must not diverge: {outcome}"
    );
    let report = session.report();
    assert!(report.acquisitions > 0);
    assert!(
        report.is_clean(),
        "refinement must respect the lock hierarchy: {:?} {:?}",
        report.rank_violations,
        report.cycles()
    );
}
