//! Regression tests: the parallel BFS engine must explore exactly the state space the
//! sequential engine explores, and report violations at the same (minimal) depth.
//!
//! These run on a small Zab preset rather than a toy spec so the whole production path —
//! composed mixed-grained specification, sharded fingerprint set, per-worker batch
//! buffers, work-stealing frontier split — is exercised end to end.

use std::time::Duration;

use remix_checker::{check_bfs, CheckOptions};
use remix_zab::{ClusterConfig, CodeVersion, SpecPreset};

fn options(workers: usize) -> CheckOptions {
    CheckOptions::default()
        .with_workers(workers)
        .with_time_budget(Duration::from_secs(300))
        .with_max_states(500_000)
}

#[test]
fn parallel_and_sequential_bfs_exhaust_the_same_state_space() {
    // The final-fix implementation passes mSpec-1 on a one-transaction, crash-free
    // configuration, so both runs must exhaust the same (small) reachable set.
    let config = ClusterConfig::small(CodeVersion::FinalFix)
        .with_transactions(1)
        .with_crashes(0);
    let spec = SpecPreset::MSpec1.build(&config);
    let seq = check_bfs(&spec, &options(1));
    let par = check_bfs(&spec, &options(4));
    assert_eq!(
        seq.stop_reason, par.stop_reason,
        "both runs must exhaust the space"
    );
    assert_eq!(seq.stats.distinct_states, par.stats.distinct_states);
    assert_eq!(seq.stats.max_depth, par.stats.max_depth);
    assert_eq!(seq.stats.transitions, par.stats.transitions);
    assert!(seq.passed() && par.passed());
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "expensive model-checking run; use --release"
)]
fn parallel_and_sequential_bfs_find_the_first_violation_at_the_same_depth() {
    // v3.9.1 violates mSpec-3's fine-grained invariants; BFS minimal-depth guarantees
    // must hold regardless of the worker count.
    let config = ClusterConfig::small(CodeVersion::V391);
    let spec = SpecPreset::MSpec3.build(&config);
    let seq = check_bfs(&spec, &options(1));
    let par = check_bfs(&spec, &options(4));
    assert!(
        !seq.passed() && !par.passed(),
        "both runs must find the violation"
    );
    let seq_v = seq.first_violation().unwrap();
    let par_v = par.first_violation().unwrap();
    assert_eq!(
        seq_v.depth, par_v.depth,
        "violation depth must be minimal in both engines"
    );
    // The *invariant id* is deliberately not asserted: several invariants can be
    // violated at the same minimal depth, and which violating states get recorded
    // before the stop propagates depends on worker scheduling.  The depth is the BFS
    // contract.
    assert_eq!(
        par_v.trace.depth(),
        par_v.depth as usize,
        "trace reconstruction matches depth"
    );
}
