//! Integration tests of the two discovered-state store backends on the real Zab model:
//! stop-reason precedence must be deterministic across both modes, and fingerprint-only
//! violation traces must replay through `Spec::successors` to the violating state.

use std::time::Duration;

use remix_checker::{check_bfs, CheckMode, CheckOptions, StopReason, StoreMode};
use remix_spec::Spec;
use remix_zab::{ClusterConfig, CodeVersion, SpecPreset, ZabState};

fn spec(version: CodeVersion) -> Spec<ZabState> {
    let config = ClusterConfig::small(version).with_transactions(1);
    SpecPreset::MSpec3.build(&config)
}

/// Both backends explore the identical state space and agree on every statistic that
/// does not describe memory layout.
#[test]
fn store_modes_explore_identical_state_spaces() {
    let spec = spec(CodeVersion::FinalFix);
    let options = CheckOptions::default().with_max_states(4_000);
    let full = check_bfs(&spec, &options.clone().with_store_mode(StoreMode::Full));
    let fp_only = check_bfs(
        &spec,
        &options.clone().with_store_mode(StoreMode::FingerprintOnly),
    );
    assert_eq!(full.stats.distinct_states, fp_only.stats.distinct_states);
    assert_eq!(full.stats.transitions, fp_only.stats.transitions);
    assert_eq!(full.stats.max_depth, fp_only.stats.max_depth);
    assert_eq!(full.stop_reason, fp_only.stop_reason);
    assert!(
        fp_only.stats.peak_entry_bytes < full.stats.peak_entry_bytes,
        "fingerprint-only entries must be strictly smaller: {} vs {}",
        fp_only.stats.peak_entry_bytes,
        full.stats.peak_entry_bytes
    );
}

/// `max_states`, `time_budget` and `violation_limit` may all trip within the same BFS
/// level; the reported reason must follow the documented precedence (violation stops
/// over the state limit over the wall clock) in both store modes — and must therefore
/// be identical across modes and worker counts.
#[test]
fn stop_reason_precedence_is_deterministic_across_store_modes() {
    let spec = spec(CodeVersion::V391);
    // Find the minimal violation depth d, then the state count within depth d - 1, so
    // a `max_states` of that count + 1 is first exceeded in exactly the level that
    // merges the first violating state: both conditions fire in the same level.
    let probe = check_bfs(&spec, &CheckOptions::default());
    let violation_depth = probe.first_violation().expect("v3.9.1 violates").depth;
    assert!(violation_depth > 1, "a deep violation makes the race real");
    let before = check_bfs(
        &spec,
        &CheckOptions::default().with_max_depth(violation_depth - 1),
    );
    let cap = before.stats.distinct_states + 1;

    for mode in [StoreMode::Full, StoreMode::FingerprintOnly] {
        // Sequential claim/flush order is fixed, so the fired set is reproducible: the
        // violating state is merged in the same level where the cap trips (batched
        // flushing merges it before the early abort under the default batch size), and
        // the resolved reason is exactly the documented precedence.
        let outcome = check_bfs(
            &spec,
            &CheckOptions {
                mode: CheckMode::Completion { violation_limit: 1 },
                ..CheckOptions::default()
            }
            .with_store_mode(mode)
            .with_max_states(cap)
            .with_time_budget(Duration::from_secs(3600)),
        );
        assert_eq!(
            outcome.stop_reason,
            StopReason::ViolationLimit,
            "mode {mode}: violation stop outranks the state limit"
        );
        assert!(!outcome.passed());

        // Parallel runs may abort the level as soon as a resource limit trips (so the
        // violating state of the same level is not always discovered), but the resolved
        // reason still follows the precedence over whatever conditions fired — never
        // the scheduling-dependent wall clock.
        let parallel = check_bfs(
            &spec,
            &CheckOptions {
                mode: CheckMode::Completion { violation_limit: 1 },
                ..CheckOptions::default()
            }
            .with_store_mode(mode)
            .with_workers(4)
            .with_max_states(cap)
            .with_time_budget(Duration::from_secs(3600)),
        );
        assert!(
            matches!(
                parallel.stop_reason,
                StopReason::ViolationLimit | StopReason::StateLimit
            ),
            "mode {mode}: got {}",
            parallel.stop_reason
        );

        // Without any violating state in reach, the same cap yields StateLimit.
        let clean = check_bfs(
            &spec,
            &CheckOptions::default()
                .with_store_mode(mode)
                .with_max_states(before.stats.distinct_states.min(8))
                .with_time_budget(Duration::from_secs(3600)),
        );
        assert_eq!(clean.stop_reason, StopReason::StateLimit);
    }
}

/// A violation trace reconstructed by the fingerprint-only store's bounded
/// re-exploration is a legal execution: every step is a successor of its predecessor
/// under `Spec::successors` (matched by label), and it ends in the violating state.
#[test]
fn fingerprint_only_traces_replay_through_spec_successors() {
    let spec = spec(CodeVersion::V391);
    let outcome = check_bfs(
        &spec,
        &CheckOptions::default().with_store_mode(StoreMode::FingerprintOnly),
    );
    let violation = outcome.first_violation().expect("v3.9.1 violates mSpec-3");
    let trace = &violation.trace;
    assert!(!trace.is_empty(), "trace collection is on by default");
    assert_eq!(trace.depth() as u32, violation.depth);

    // Step 0 is an initial state; each later step must be among its predecessor's
    // successors with exactly the recorded label.
    assert!(spec.init.contains(&trace.steps[0].state));
    for window in trace.steps.windows(2) {
        let successors = spec.successors(&window[0].state);
        assert!(
            successors
                .iter()
                .any(|(label, next)| label == &window[1].action && next == &window[1].state),
            "step `{}` must be a successor of its predecessor",
            window[1].action
        );
    }
    let last = trace.last_state().expect("non-empty");
    assert!(
        !spec.violated_invariants(last).is_empty(),
        "the replayed trace ends in the violating state"
    );

    // And the replayed counterexample is identical to the full store's.
    let full = check_bfs(
        &spec,
        &CheckOptions::default().with_store_mode(StoreMode::Full),
    );
    let full_violation = full.first_violation().expect("same violation");
    assert_eq!(full_violation.invariant, violation.invariant);
    assert_eq!(full_violation.depth, violation.depth);
    assert_eq!(full_violation.trace.action_labels(), trace.action_labels());
}
