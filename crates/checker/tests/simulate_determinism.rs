//! Regression tests: batch simulation must produce byte-identical traces for every
//! worker count, mirroring `parallel_determinism.rs` for the sampling engine.
//!
//! Per-trace seeding (`CheckerRng::for_trace`) is what makes the conformance loop's
//! parallel sampling reproducible (§3.5.2); these tests pin that contract on a real
//! composed Zab specification rather than a toy, so label generation, successor
//! enumeration and the RNG stream all run the production path.

use remix_checker::{
    explore, simulate, simulate_one, CheckerRng, ExploreOptions, SimulationOptions,
};
use remix_zab::{ClusterConfig, CodeVersion, SpecPreset};

fn options() -> SimulationOptions {
    SimulationOptions::default()
        .with_traces(12)
        .with_max_depth(24)
        .with_seed(0xD15EA5E)
}

#[test]
fn simulation_batches_are_byte_identical_across_worker_counts() {
    let config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
    let spec = SpecPreset::MSpec1.build(&config);
    let sequential = simulate(&spec, &options());
    assert_eq!(sequential.len(), 12);
    for workers in [2, 4, 7] {
        let parallel = simulate(&spec, &options().with_workers(workers));
        assert_eq!(
            sequential, parallel,
            "the sampled batch must not depend on the worker count (workers={workers})"
        );
    }
}

#[test]
fn batch_traces_match_per_trace_sub_streams() {
    // Trace `i` of a batch is exactly what `simulate_one` produces from the documented
    // sub-stream — the property conformance checking relies on to replay a single
    // trace index in isolation.
    let config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
    let spec = SpecPreset::MSpec1.build(&config);
    let opts = options();
    let batch = simulate(&spec, &opts);
    for (index, trace) in batch.iter().enumerate() {
        let mut rng = CheckerRng::for_trace(opts.seed, index as u64);
        let lone = simulate_one(&spec, opts.max_depth, &mut rng);
        assert_eq!(trace, &lone, "trace {index} diverged from its sub-stream");
    }
}

#[test]
fn uniform_exploration_matches_across_worker_counts() {
    // With uniform guidance the coverage map records hits but never influences a
    // choice, so guided exploration inherits simulate's determinism contract: the
    // sampled traces — and hence the violations found — are worker-count independent
    // (as long as no early stop cuts the run short).
    let config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
    let spec = SpecPreset::MSpec1.build(&config);
    let opts = ExploreOptions::default()
        .with_traces(12)
        .with_max_depth(24)
        .with_seed(0xD15EA5E)
        .uniform();
    let opts = ExploreOptions {
        stop_on_violation: false,
        ..opts
    };
    let one = explore(&spec, &opts);
    let four = explore(&spec, &opts.clone().with_workers(4));
    assert_eq!(one.stats.traces, four.stats.traces);
    assert_eq!(one.stats.steps, four.stats.steps);
    assert_eq!(
        one.stats.first_violation_trace,
        four.stats.first_violation_trace
    );
    assert_eq!(
        one.stats.coverage.total_hits,
        four.stats.coverage.total_hits
    );
    assert_eq!(
        one.stats.coverage.distinct_prefixes,
        four.stats.coverage.distinct_prefixes
    );
}
