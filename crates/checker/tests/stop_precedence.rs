//! Exhaustive stop-precedence check under schedule perturbation.
//!
//! The `StopCell` contract: when several stop conditions trip concurrently, the
//! resolved [`StopReason`] depends only on *which* conditions fired — violation
//! stops over the state limit over the wall-clock budget — never on the order the
//! workers' requests happened to land.  The unit test in `checker::stop` exercises
//! every subset in every rotation on one thread; this suite drives the same
//! exhaustive subset matrix from one thread per condition, under the sync layer's
//! seeded schedule perturbation, so the publication points inside
//! `StopCell::request` (which carry explicit `perturb_point`s) are actually shaken
//! into different interleavings — and the resolution must come out identical in
//! every one.

use std::thread;

use remix_checker::stop::{
    StopCell, STOP_FIRST_VIOLATION, STOP_STATE_LIMIT, STOP_TIME_BUDGET, STOP_VIOLATION_LIMIT,
};
use remix_checker::sync::perturb;
use remix_checker::StopReason;

/// All conditions in precedence order (highest first).
const CONDITIONS: [(u8, StopReason); 4] = [
    (STOP_FIRST_VIOLATION, StopReason::FirstViolation),
    (STOP_VIOLATION_LIMIT, StopReason::ViolationLimit),
    (STOP_STATE_LIMIT, StopReason::StateLimit),
    (STOP_TIME_BUDGET, StopReason::TimeBudget),
];

/// Requests every condition of `mask` from its own thread and resolves the cell.
fn race_subset(mask: u8) -> Option<StopReason> {
    let cell = StopCell::new();
    thread::scope(|scope| {
        for (bit, _) in CONDITIONS.iter().filter(|(bit, _)| mask & bit != 0) {
            let cell = &cell;
            scope.spawn(move || cell.request(*bit));
        }
    });
    cell.stop_reason()
}

#[test]
fn every_subset_resolves_to_its_highest_precedence_member_under_every_schedule() {
    for seed in [0u64, 1, 0xDEAD_BEEF, 0x5EED_CAFE, 42] {
        // Install the seeded yield/sleep injector; each spawned thread derives its
        // own perturbation stream from the seed and its thread salt, so the five
        // seeds explore materially different request interleavings.
        let _guard = perturb::install(seed);
        for mask in 1u8..16 {
            let expected = CONDITIONS
                .iter()
                .find(|(bit, _)| mask & bit != 0)
                .map(|(_, reason)| *reason);
            assert_eq!(
                race_subset(mask),
                expected,
                "seed {seed:#x} mask {mask:#06b}: precedence must be schedule-independent"
            );
        }
    }
}

#[test]
fn violation_outranks_state_limit_outranks_time_budget_when_all_race() {
    for seed in [7u64, 8, 9] {
        let _guard = perturb::install(seed);
        // The three conditions the engine can actually trip in one level, all racing.
        assert_eq!(
            race_subset(STOP_FIRST_VIOLATION | STOP_STATE_LIMIT | STOP_TIME_BUDGET),
            Some(StopReason::FirstViolation)
        );
        assert_eq!(
            race_subset(STOP_STATE_LIMIT | STOP_TIME_BUDGET),
            Some(StopReason::StateLimit)
        );
        assert_eq!(race_subset(STOP_TIME_BUDGET), Some(StopReason::TimeBudget));
    }
}
