//! Guided exploration on the real Zab model: the coverage-guided sampler finds a
//! seeded deep bug that uniform sampling misses under the same budget.
//!
//! The workload is the `ClusterConfig::explore` preset on buggy v3.9.1 with the
//! mSpec-3 composition restricted to the deep Table 4 invariants (I-8 data loss /
//! I-10 data inconsistency — the ZK-4643/ZK-4712 class).  Reaching them takes a
//! specific crash/re-election interleaving ~35+ transitions deep; uniform random walks
//! keep draining their budget in the hot election/discovery region, while the guided
//! policy is pushed out of over-visited fingerprint regions and reaches the violation.
//!
//! Budgets were re-tuned when the coarse Election module gained its
//! `ElectionAndDiscoveryLateJoin` action: with late joins absorbing LOOKING stragglers
//! that previously forced the re-elections the deep bugs ride on, the violations sit
//! further into the sampling stream for every policy (guided first reaches this one
//! around trace ~4.5k on this seed; uniform exhausts the doubled budget without
//! finding it).

use std::time::Duration;

use remix_checker::{explore, shrink_violation, ExploreOptions, SymmetryMode};
use remix_zab::{ClusterConfig, CodeVersion, SpecPreset};

fn options() -> ExploreOptions {
    ExploreOptions::default()
        .with_traces(8192)
        .with_max_depth(60)
        .with_seed(7)
        .with_time_budget(Duration::from_secs(90))
        // The guided-vs-uniform asymmetry this test documents was tuned against
        // *concrete* coverage keys; canonical (symmetry-reduced) keys change the bias
        // distribution and its trace indices, so the comparison pins symmetry off
        // rather than inheriting the REMIX_SYMMETRY matrix value.  The symmetry
        // suites (`checker/tests/symmetry.rs`, `zab/tests/symmetry_zab.rs`) cover
        // canonical-keyed runs in both env settings.
        .with_symmetry(SymmetryMode::Off)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive sampling run; use --release")]
fn guided_sampling_finds_the_deep_bug_uniform_misses() {
    let config = ClusterConfig::explore(CodeVersion::V391);
    let mut spec = SpecPreset::MSpec3.build(&config);
    spec.invariants.retain(|i| i.id == "I-8" || i.id == "I-10");

    let guided = explore(&spec, &options().guided(24));
    let found_guided = guided
        .stats
        .first_violation_trace
        .expect("guided sampling reaches the deep violation within the budget");

    let uniform = explore(&spec, &options().uniform());
    match uniform.stats.first_violation_trace {
        None => {} // uniform exhausted the same budget without finding it: strict win
        Some(found_uniform) => assert!(
            found_guided < found_uniform,
            "guided must find the violation on an earlier trace: guided={found_guided} uniform={found_uniform}"
        ),
    }

    // The guided counterexample shrinks to a minimal legal execution that still
    // violates the same invariant.
    let violation = guided.first_violation().unwrap();
    let shrunk = shrink_violation(&spec, &violation.trace, violation.invariant);
    assert!(shrunk.shrunk_depth() <= shrunk.original_depth);
    assert!(
        !spec
            .violated_invariants(shrunk.trace.last_state().unwrap())
            .is_empty(),
        "the shrunk trace must still violate"
    );
}
