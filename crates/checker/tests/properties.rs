//! Property tests of the checker's deterministic building blocks, via the vendored
//! `proptest` stand-in: state fingerprinting, the SplitMix64 generator, and the
//! coverage-prefix accounting the guided explorer biases on.
//!
//! Everything the parallel engines rely on for cross-worker reproducibility is a
//! *property*, not an example: fingerprints must be pure functions of state value,
//! RNG streams must be pure functions of the seed, and bounded draws must stay in
//! bounds for every bound — so these are checked over generated inputs rather than
//! hand-picked cases.

use proptest::prelude::*;

use remix_checker::coverage::action_definition;
use remix_checker::{fingerprint, CheckerRng, CoverageMap};

proptest! {
    /// Fingerprints are stable across clones: hashing is a pure function of the state
    /// value, so a clone (and a structurally equal rebuild) fingerprints identically.
    #[test]
    fn fingerprint_is_stable_across_clones(
        n in 0u64..1_000_000,
        tags in proptest::collection::vec(0u8..255, 0..12),
    ) {
        let state = (n, tags);
        let cloned = state.clone();
        prop_assert_eq!(fingerprint(&state), fingerprint(&cloned));
        // A structurally equal value built independently also agrees.
        let rebuilt = (state.0, state.1.clone());
        prop_assert_eq!(fingerprint(&state), fingerprint(&rebuilt));
    }

    /// Simple perturbations of a state produce distinct fingerprints (collisions over
    /// a 128-bit space are possible in principle but must not occur on neighbours).
    #[test]
    fn fingerprint_separates_neighbouring_states(n in 0u64..1_000_000) {
        prop_assert_ne!(fingerprint(&n), fingerprint(&(n + 1)));
        prop_assert_ne!(fingerprint(&(n, 0u8)), fingerprint(&(n, 1u8)));
        // The two 64-bit halves come from independently perturbed hashers.
        let fp = fingerprint(&n);
        prop_assert_ne!(fp.0, fp.1);
    }

    /// Equal seeds yield byte-identical streams; different seeds diverge within a few
    /// draws (SplitMix64 has no short cycles on neighbouring seeds).
    #[test]
    fn rng_streams_are_determined_by_the_seed(seed in 0u64..u64::MAX) {
        let mut a = CheckerRng::seed_from_u64(seed);
        let mut b = CheckerRng::seed_from_u64(seed);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        prop_assert_eq!(&xs, &ys);
        let mut c = CheckerRng::seed_from_u64(seed.wrapping_add(1));
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        prop_assert_ne!(&ys, &zs);
    }

    /// Per-trace sub-streams are determined by the `(seed, index)` pair and distinct
    /// across neighbouring indices — the contract the parallel samplers stripe on.
    #[test]
    fn per_trace_streams_are_independent(seed in 0u64..u64::MAX, index in 0u64..1_000_000) {
        let mut a = CheckerRng::for_trace(seed, index);
        let mut b = CheckerRng::for_trace(seed, index);
        prop_assert_eq!(a.next_u64(), b.next_u64());
        let mut c = CheckerRng::for_trace(seed, index + 1);
        prop_assert_ne!(a.next_u64(), c.next_u64());
    }

    /// `index` always stays strictly below its bound, for any seed and any bound.
    #[test]
    fn index_is_always_in_bounds(seed in 0u64..u64::MAX, bound in 1usize..4096) {
        let mut rng = CheckerRng::seed_from_u64(seed);
        for _ in 0..64 {
            prop_assert!(rng.index(bound) < bound);
        }
    }

    /// `choose` returns `None` exactly on empty slices and otherwise an element of the
    /// slice.
    #[test]
    fn choose_respects_slice_bounds(
        seed in 0u64..u64::MAX,
        items in proptest::collection::vec(0u32..1000, 0..64),
    ) {
        let mut rng = CheckerRng::seed_from_u64(seed);
        match rng.choose(&items) {
            None => prop_assert!(items.is_empty()),
            Some(chosen) => prop_assert!(items.contains(chosen)),
        }
    }

    /// Coverage accounting is exact: `record` returns the pre-visit count and the
    /// snapshot totals equal the number of recorded visits.
    #[test]
    fn coverage_counts_every_visit(
        states in proptest::collection::vec(0u64..32, 1..64),
        prefix_bits in 1u32..64,
    ) {
        let map = CoverageMap::new(8, prefix_bits);
        for state in &states {
            let fp = fingerprint(state);
            let before = map.record(fp, "Visit(0)");
            prop_assert_eq!(map.prefix_hits(fp), before + 1);
        }
        let snap = map.snapshot();
        prop_assert_eq!(snap.total_hits, states.len() as u64);
        prop_assert_eq!(map.action_hits_total("Visit(99)"), states.len() as u64);
        prop_assert!(snap.distinct_prefixes <= states.len());
        prop_assert!(snap.max_prefix_hits <= snap.total_hits);
    }

    /// Action-definition extraction never panics and is idempotent.
    #[test]
    fn action_definition_is_idempotent(
        name in proptest::collection::vec(97u8..123, 1..8),
        arg in 0u32..100,
    ) {
        let name = String::from_utf8(name).expect("ascii");
        let label = format!("{name}({arg})");
        prop_assert_eq!(action_definition(&label), name.as_str());
        prop_assert_eq!(action_definition(action_definition(&label)), name.as_str());
    }
}
