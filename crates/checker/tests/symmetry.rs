//! Symmetry reduction on a toy fully symmetric spec: canonicalization must shrink the
//! explored state count without changing any verdict, and violation witnesses must be
//! de-canonicalized back into executions of the *original* specification — in both
//! store backends and both engines.
//!
//! The model: `k` identical workers, each holding a counter; any worker may increment
//! its counter up to `max`.  States are plain counter vectors, so the symmetric group
//! acts by reordering them and sorting is an exact canonical form.  Without reduction
//! the reachable space is `(max+1)^k` vectors; with it, the multisets —
//! `C(max+k, k)` — which is where the strict `distinct_states` drop comes from.

use std::collections::BTreeMap;

use remix_checker::{check_bfs, check_dfs, CheckOptions, StopReason, StoreMode, SymmetryMode};
use remix_spec::{
    ActionDef, ActionInstance, Canonicalize, Granularity, Invariant, InvariantSource, ModuleId,
    ModuleSpec, Perm, Spec, SpecState,
};

/// `k` interchangeable workers, each a bare counter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Workers(Vec<u8>);

impl SpecState for Workers {
    fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
        let mut m = BTreeMap::new();
        if vars.contains(&"counters") {
            m.insert(
                "counters".to_owned(),
                remix_spec::Value::Seq(
                    self.0
                        .iter()
                        .map(|c| remix_spec::Value::from(*c as u32))
                        .collect(),
                ),
            );
        }
        m
    }
    fn variable_names() -> Vec<&'static str> {
        vec!["counters"]
    }
}

impl Canonicalize for Workers {
    fn canonicalize(&self) -> (Self, Perm) {
        // Sorting the counters is an exact canonical form for the full symmetric
        // group; the permutation sends each worker to its sorted position (stable, so
        // equal counters keep their relative order and the perm is well-defined).
        let mut order: Vec<usize> = (0..self.0.len()).collect();
        order.sort_by_key(|&i| self.0[i]);
        let mut image = vec![0u32; self.0.len()];
        for (new_pos, old) in order.iter().enumerate() {
            image[*old] = new_pos as u32;
        }
        let perm = Perm::from_image(image);
        (self.permute(&perm), perm)
    }

    fn permute(&self, perm: &Perm) -> Self {
        let mut out = vec![0u8; self.0.len()];
        for (i, c) in self.0.iter().enumerate() {
            out[perm.apply(i)] = *c;
        }
        Workers(out)
    }
}

/// The spec: every worker may increment below `max`; optionally an invariant that the
/// counter multiset never reaches `bad` (a multiset, so it is permutation-invariant).
fn workers_spec(k: usize, max: u8, bad: Option<Vec<u8>>) -> Spec<Workers> {
    let m = ModuleId("Workers");
    let inc = ActionDef::new(
        "Inc",
        m,
        Granularity::Baseline,
        vec!["counters"],
        vec!["counters"],
        move |s: &Workers| {
            (0..s.0.len())
                .filter(|&i| s.0[i] < max)
                .map(|i| {
                    let mut next = s.clone();
                    next.0[i] += 1;
                    ActionInstance::new(format!("Inc({i})"), next)
                })
                .collect()
        },
    );
    let invariants = match bad {
        Some(bad) => vec![Invariant::always(
            "NOT-BAD",
            "the bad counter multiset is unreachable",
            InvariantSource::Protocol,
            move |s: &Workers| {
                let mut sorted = s.0.clone();
                sorted.sort_unstable();
                sorted != bad
            },
        )],
        None => vec![],
    };
    Spec::new(
        "workers",
        vec![Workers(vec![0; k])],
        vec![ModuleSpec::new(m, Granularity::Baseline, vec![inc])],
        invariants,
    )
    .with_canonicalization()
}

fn options(symmetry: SymmetryMode, store: StoreMode) -> CheckOptions {
    CheckOptions::default()
        .with_symmetry(symmetry)
        .with_store_mode(store)
}

/// `C(n, k)` (number of multisets of size `k` over `n` values is `C(max+k, k)`).
fn binomial(n: usize, k: usize) -> usize {
    (1..=k).fold(1, |acc, i| acc * (n - k + i) / i)
}

#[test]
fn canonicalization_collapses_orbits_without_changing_the_verdict() {
    let (k, max) = (3usize, 4u8);
    let spec = workers_spec(k, max, None);
    for store in [StoreMode::Full, StoreMode::FingerprintOnly] {
        let off = check_bfs(&spec, &options(SymmetryMode::Off, store));
        let canon = check_bfs(&spec, &options(SymmetryMode::Canonicalize, store));
        assert_eq!(off.stop_reason, StopReason::Exhausted, "{store}");
        assert_eq!(canon.stop_reason, StopReason::Exhausted, "{store}");
        assert!(off.passed() && canon.passed(), "{store}");
        assert_eq!(
            off.stats.distinct_states,
            (max as usize + 1).pow(k as u32),
            "all counter vectors ({store})"
        );
        assert_eq!(
            canon.stats.distinct_states,
            binomial(max as usize + k, k),
            "one representative per counter multiset ({store})"
        );
        assert!(
            canon.stats.distinct_states < off.stats.distinct_states,
            "symmetry must strictly reduce the explored space ({store})"
        );
        // The BFS level structure is preserved: the deepest state (all counters at
        // max) sits at the same minimal depth in both runs.
        assert_eq!(off.stats.max_depth, canon.stats.max_depth, "{store}");
    }
}

#[test]
fn decanonicalized_traces_replay_on_the_original_spec() {
    // The violating multiset {1, 2, 2} is reachable at depth 5; BFS must report the
    // same minimal depth with and without symmetry, and the symmetric run's witness —
    // recorded as a chain of canonical forms — must replay as a real execution.
    let spec = workers_spec(3, 3, Some(vec![1, 2, 2]));
    for store in [StoreMode::Full, StoreMode::FingerprintOnly] {
        let off = check_bfs(&spec, &options(SymmetryMode::Off, store));
        let canon = check_bfs(&spec, &options(SymmetryMode::Canonicalize, store));
        let (v_off, v_canon) = (
            off.first_violation().expect("off finds the violation"),
            canon.first_violation().expect("canonicalize finds it too"),
        );
        assert_eq!(v_off.invariant, v_canon.invariant, "{store}");
        assert_eq!(
            v_off.depth, v_canon.depth,
            "minimal depth is preserved ({store})"
        );
        assert_eq!(v_canon.trace.depth() as u32, v_canon.depth, "{store}");
        // Step-by-step replay through `Spec::successors` on the original spec: every
        // consecutive pair must be one of its labelled transitions.
        for w in v_canon.trace.steps.windows(2) {
            let successors = spec.successors(&w[0].state);
            assert!(
                successors
                    .iter()
                    .any(|(l, s)| *l == w[1].action && *s == w[1].state),
                "step {:?} -> {:?} via {} is not a transition of the original spec \
                 ({store})",
                w[0].state,
                w[1].state,
                w[1].action
            );
        }
        // And the replayed endpoint still violates the invariant.
        assert!(
            !spec
                .violated_invariants(v_canon.trace.last_state().unwrap())
                .is_empty(),
            "{store}"
        );
    }
}

#[test]
fn dfs_reduces_and_replays_under_symmetry_too() {
    let spec = workers_spec(3, 3, Some(vec![1, 2, 2]));
    for store in [StoreMode::Full, StoreMode::FingerprintOnly] {
        let passing = workers_spec(3, 3, None);
        let off = check_dfs(&passing, &options(SymmetryMode::Off, store));
        let canon = check_dfs(&passing, &options(SymmetryMode::Canonicalize, store));
        assert_eq!(off.stop_reason, StopReason::Exhausted, "{store}");
        assert_eq!(canon.stop_reason, StopReason::Exhausted, "{store}");
        assert!(
            canon.stats.distinct_states < off.stats.distinct_states,
            "{store}"
        );

        let outcome = check_dfs(&spec, &options(SymmetryMode::Canonicalize, store));
        let v = outcome.first_violation().expect("DFS finds the violation");
        for w in v.trace.steps.windows(2) {
            assert!(
                spec.successors(&w[0].state)
                    .iter()
                    .any(|(l, s)| *l == w[1].action && *s == w[1].state),
                "DFS witness must replay on the original spec ({store})"
            );
        }
        assert!(
            !spec
                .violated_invariants(v.trace.last_state().unwrap())
                .is_empty(),
            "{store}"
        );
    }
}

#[test]
fn symmetry_mode_is_a_no_op_without_an_attached_group() {
    // A spec without `Spec::symmetry` must explore identically whatever the mode —
    // this is what keeps the REMIX_SYMMETRY CI matrix safe for asymmetric models.
    let mut spec = workers_spec(2, 3, None);
    spec.symmetry = None;
    let off = check_bfs(&spec, &options(SymmetryMode::Off, StoreMode::Full));
    let canon = check_bfs(&spec, &options(SymmetryMode::Canonicalize, StoreMode::Full));
    assert_eq!(off.stats.distinct_states, canon.stats.distinct_states);
    assert_eq!(off.stats.transitions, canon.stats.transitions);
}

#[test]
fn parallel_symmetric_runs_agree_with_sequential() {
    let spec = workers_spec(3, 4, None);
    let seq = check_bfs(&spec, &options(SymmetryMode::Canonicalize, StoreMode::Full));
    let par = check_bfs(
        &spec,
        &options(SymmetryMode::Canonicalize, StoreMode::Full).with_workers(4),
    );
    assert_eq!(seq.stats.distinct_states, par.stats.distinct_states);
    assert_eq!(seq.stats.transitions, par.stats.transitions);
    assert_eq!(seq.stats.max_depth, par.stats.max_depth);
}

#[test]
fn refinement_applies_symmetry_only_under_a_declared_equivariant_projection() {
    use remix_checker::{check_refinement, RefineMode, RefineOptions};
    use remix_spec::TraceProjection;

    // Fine: workers step one at a time.  Coarse: a worker jumps straight to `max`.
    // Projection: the *multiset* of counters, restricted to "settled" states where
    // every counter is 0 or max — permutation-invariant, hence safely declarable as
    // equivariant.  Both sides stabilize through the same settled multisets, so the
    // pair refines.
    let max = 3u8;
    let fine = workers_spec(3, max, None);
    let coarse = {
        let m = ModuleId("Workers");
        let jump = ActionDef::new(
            "Jump",
            m,
            Granularity::Coarse,
            vec!["counters"],
            vec!["counters"],
            move |s: &Workers| {
                (0..s.0.len())
                    .filter(|&i| s.0[i] == 0)
                    .map(|i| {
                        let mut next = s.clone();
                        next.0[i] = max;
                        ActionInstance::new(format!("Jump({i})"), next)
                    })
                    .collect()
            },
        );
        Spec::new(
            "workers-coarse",
            vec![Workers(vec![0; 3])],
            vec![ModuleSpec::new(m, Granularity::Coarse, vec![jump])],
            vec![],
        )
        .with_canonicalization()
    };
    let projection = || {
        TraceProjection::identity(
            "settled-multiset",
            Granularity::Coarse,
            Granularity::Baseline,
        )
        .with_state(|s: &Workers| {
            let mut sorted = s.0.clone();
            sorted.sort_unstable();
            let mut m = BTreeMap::new();
            m.insert(
                "multiset".to_owned(),
                remix_spec::Value::Seq(
                    sorted
                        .iter()
                        .map(|c| remix_spec::Value::from(*c as u32))
                        .collect(),
                ),
            );
            m
        })
        .with_stability(move |s: &Workers| s.0.iter().all(|&c| c == 0 || c == max))
    };

    let opts = RefineOptions::default()
        .with_mode(RefineMode::TraceInclusion)
        .with_symmetry(SymmetryMode::Canonicalize);

    // Without the equivariance declaration the knob is ignored: state counts match a
    // symmetry-off run exactly.
    let plain = check_refinement(&fine, &coarse, &projection(), &opts);
    let off = check_refinement(
        &fine,
        &coarse,
        &projection(),
        &RefineOptions::default()
            .with_mode(RefineMode::TraceInclusion)
            .with_symmetry(SymmetryMode::Off),
    );
    assert!(
        plain.refines() == Some(true) && off.refines() == Some(true),
        "{plain}\n{off}"
    );
    assert_eq!(plain.stats.fine_states, off.stats.fine_states);
    assert_eq!(plain.stats.coarse_states, off.stats.coarse_states);

    // With the declaration, both sides explore canonical representatives: strictly
    // fewer concrete states, identical verdict, identical projected classes.
    let reduced = check_refinement(&fine, &coarse, &projection().assume_equivariant(), &opts);
    assert_eq!(reduced.refines(), Some(true), "{reduced}");
    assert!(reduced.conclusive());
    assert!(
        reduced.stats.fine_states < off.stats.fine_states,
        "{} vs {}",
        reduced.stats.fine_states,
        off.stats.fine_states
    );
    assert!(reduced.stats.coarse_states < off.stats.coarse_states);
    assert_eq!(reduced.stats.fine_projections, off.stats.fine_projections);
    assert_eq!(
        reduced.stats.coarse_projections,
        off.stats.coarse_projections
    );

    // And a genuinely diverging pair still yields a replayable, de-canonicalized
    // witness: forbid the all-max multiset on the coarse side only.
    let fine_capped = workers_spec(3, 2, None);
    let diverging = check_refinement(
        &fine_capped,
        &coarse,
        &projection().assume_equivariant(),
        &opts,
    );
    let divergence = diverging
        .divergence
        .as_ref()
        .expect("coarse reaches settled multisets the capped fine spec cannot");
    for w in divergence.witness.steps.windows(2) {
        let spec = if divergence.witness_spec == "workers-coarse" {
            &coarse
        } else {
            &fine_capped
        };
        assert!(
            spec.successors(&w[0].state)
                .iter()
                .any(|(l, s)| *l == w[1].action && *s == w[1].state),
            "witness must replay on the original spec"
        );
    }
}
