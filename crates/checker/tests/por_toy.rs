//! Engine-level soundness checks for sleep-set POR on a toy spec with *known correct*
//! footprints: two counters incremented by actions with disjoint declared write sets.
//! Every interleaving of the two actions commutes, so POR may prune edges but must
//! still reach every grid point.  A failure here indicts the engines' sleep-set
//! propagation rather than any model's annotations.

use std::collections::BTreeMap;

use remix_checker::{check_bfs, check_dfs, CheckOptions, StopReason, SymmetryMode};
use remix_spec::{
    ActionDef, ActionInstance, Effect, Granularity, Invariant, InvariantSource, ModuleId,
    ModuleSpec, Spec, SpecState,
};

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Grid {
    x: u32,
    y: u32,
    nx: u32,
    ny: u32,
}

impl SpecState for Grid {
    fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
        let mut m = BTreeMap::new();
        for v in vars {
            match *v {
                "x" => {
                    m.insert("x".to_owned(), remix_spec::Value::from(self.x));
                }
                "y" => {
                    m.insert("y".to_owned(), remix_spec::Value::from(self.y));
                }
                _ => {}
            }
        }
        m
    }
    fn variable_names() -> Vec<&'static str> {
        vec!["x", "y"]
    }
}

/// Two fully independent counters: `IncX` writes server slot 0, `IncY` slot 1.
fn grid_spec(nx: u32, ny: u32) -> Spec<Grid> {
    let m = ModuleId("Grid");
    let inc_x = ActionDef::new(
        "IncX",
        m,
        Granularity::Baseline,
        vec!["x"],
        vec!["x"],
        move |s: &Grid| {
            if s.x < s.nx {
                vec![ActionInstance::new(
                    "IncX",
                    Grid {
                        x: s.x + 1,
                        ..s.clone()
                    },
                )
                .with_effect(Effect::new().writes_server(0))]
            } else {
                vec![]
            }
        },
    );
    let inc_y = ActionDef::new(
        "IncY",
        m,
        Granularity::Baseline,
        vec!["y"],
        vec!["y"],
        move |s: &Grid| {
            if s.y < s.ny {
                vec![ActionInstance::new(
                    "IncY",
                    Grid {
                        y: s.y + 1,
                        ..s.clone()
                    },
                )
                .with_effect(Effect::new().writes_server(1))]
            } else {
                vec![]
            }
        },
    );
    let inv = Invariant::always("TRUE", "trivially holds", InvariantSource::Protocol, |_| {
        true
    });
    Spec::new(
        "grid",
        vec![Grid { x: 0, y: 0, nx, ny }],
        vec![ModuleSpec::new(
            m,
            Granularity::Baseline,
            vec![inc_x, inc_y],
        )],
        vec![inv],
    )
}

fn options(por: bool) -> CheckOptions {
    CheckOptions::default()
        .with_por(por)
        .with_symmetry(SymmetryMode::Off)
}

#[test]
fn bfs_por_preserves_every_grid_point() {
    let (nx, ny) = (5, 4);
    let spec = grid_spec(nx, ny);
    let off = check_bfs(&spec, &options(false));
    let on = check_bfs(&spec, &options(true));
    assert_eq!(off.stop_reason, StopReason::Exhausted);
    assert_eq!(on.stop_reason, StopReason::Exhausted);
    assert_eq!(off.stats.distinct_states as u32, (nx + 1) * (ny + 1));
    assert_eq!(
        on.stats.distinct_states, off.stats.distinct_states,
        "sleep sets prune edges, never states"
    );
    assert_eq!(on.stats.max_depth, off.stats.max_depth);
    assert!(on.stats.pruned_transitions > 0, "the diamonds must prune");
    assert_eq!(
        on.stats.transitions + on.stats.pruned_transitions,
        off.stats.transitions
    );
}

#[test]
fn dfs_por_preserves_every_grid_point() {
    let (nx, ny) = (5, 4);
    let spec = grid_spec(nx, ny);
    let off = check_dfs(&spec, &options(false));
    let on = check_dfs(&spec, &options(true));
    assert_eq!(on.stop_reason, StopReason::Exhausted);
    assert_eq!(off.stats.distinct_states as u32, (nx + 1) * (ny + 1));
    assert_eq!(
        on.stats.distinct_states, off.stats.distinct_states,
        "sleep sets prune edges, never states"
    );
    assert!(on.stats.pruned_transitions > 0, "the diamonds must prune");
}
