//! Coverage-guided schedule exploration.
//!
//! The paper's conformance loop (§3.5.2) samples model-level traces by uniform random
//! walk.  Uniform sampling wastes most of its budget re-walking the hot core of the
//! state space: in the Zab model the election/discovery actions are enabled almost
//! everywhere and keep funnelling walks through the same handful of states, while the
//! interleavings behind the historical bugs (a crash *between* the epoch update and the
//! history write, an acknowledgement *before* the sync processor ran) are reached by
//! exactly one rare action sequence.
//!
//! [`explore`] keeps sampling traces, but each step draws the next action from a
//! distribution biased toward *rarely covered* territory: successor states whose
//! fingerprint prefix has a low hit count in the shared [`CoverageMap`], reached by
//! action definitions that have been taken rarely (see [`Guidance::CoverageGuided`]).
//! Every reachable state stays reachable — weights are never zero — so guided sampling
//! is still probabilistically complete; it just stops paying rent on the hot loop.
//!
//! Sampling runs across [`ExploreOptions::workers`] threads, each trace seeded from its
//! index exactly like the conformance checker's parallel replay
//! (`CheckerRng::for_trace`), so with one worker a run is fully deterministic for a
//! seed, and with many workers the *trace index → RNG stream* mapping still is (only
//! the coverage bias, which depends on cross-worker interleaving, varies; see
//! [`ExploreStats`]).  Violations found along the way carry their full trace and can be
//! handed directly to [`crate::shrink`] for minimization.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use remix_spec::{Spec, SpecState, Trace};

use crate::coverage::{CoverageMap, CoverageSnapshot};
use crate::fingerprint::fingerprint;
use crate::outcome::Violation;
use crate::rng::CheckerRng;

/// Default lock-stripe count of the shared coverage map (matches the BFS engine's
/// default shard count; reused by `remix-core`'s guided conformance sampling).
pub const DEFAULT_COVERAGE_SHARDS: usize = 64;

/// Default fingerprint-prefix granularity of the coverage counters, in leading bits
/// (reused by `remix-core`'s guided conformance sampling).
pub const DEFAULT_PREFIX_BITS: u32 = 20;

/// How the explorer chooses among enabled actions (§3.5.2's sampling policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guidance {
    /// Uniform random choice — the paper's baseline sampling policy.
    Uniform,
    /// Coverage-guided choice: each successor is weighted by the *rarity* of its
    /// fingerprint prefix and of its action definition in the shared coverage map.
    CoverageGuided {
        /// Strength of the rarity bias.  A successor's weight is
        /// `rarity_weight * SCALE / (1 + hits) + 1`, so `0` degenerates to uniform and
        /// larger values focus harder on unvisited regions while never zeroing out the
        /// hot ones (every enabled action keeps positive probability).
        rarity_weight: u32,
    },
}

impl Default for Guidance {
    fn default() -> Self {
        Guidance::CoverageGuided { rarity_weight: 16 }
    }
}

/// Options of a guided exploration run.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum number of traces to sample (the sampling budget of §3.5.2).
    pub traces: usize,
    /// Maximum length (in transitions) of each trace.
    pub max_depth: u32,
    /// Base seed; trace `i` samples from `CheckerRng::for_trace(seed, i)`, making the
    /// per-trace RNG streams independent of the worker count.
    pub seed: u64,
    /// Worker threads sampling traces concurrently over disjoint index stripes, like
    /// the conformance checker's parallel replay.
    pub workers: usize,
    /// Wall-clock budget; sampling stops scheduling new traces once it expires.  At
    /// least one trace is always produced.
    pub time_budget: Option<Duration>,
    /// The sampling policy (uniform baseline vs coverage-guided).
    pub guidance: Guidance,
    /// Lock stripes of the shared coverage map (see [`CoverageMap::new`] and the
    /// identically-motivated `CheckOptions::shards`).
    pub shards: usize,
    /// Fingerprint-prefix granularity of the coverage counters, in leading bits.
    pub prefix_bits: u32,
    /// Stop scheduling new traces once any invariant violation has been found
    /// (time-to-first-violation mode; in-flight traces still complete).
    pub stop_on_violation: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            traces: 256,
            max_depth: 40,
            seed: 0xC0FFEE,
            workers: 1,
            time_budget: None,
            guidance: Guidance::default(),
            shards: DEFAULT_COVERAGE_SHARDS,
            prefix_bits: DEFAULT_PREFIX_BITS,
            stop_on_violation: true,
        }
    }
}

impl ExploreOptions {
    /// Switches to the uniform baseline policy.
    pub fn uniform(mut self) -> Self {
        self.guidance = Guidance::Uniform;
        self
    }

    /// Switches to coverage-guided sampling with the given rarity weight.
    pub fn guided(mut self, rarity_weight: u32) -> Self {
        self.guidance = Guidance::CoverageGuided { rarity_weight };
        self
    }

    /// Sets the sampling budget in traces.
    pub fn with_traces(mut self, traces: usize) -> Self {
        self.traces = traces;
        self
    }

    /// Sets the per-trace depth bound.
    pub fn with_max_depth(mut self, depth: u32) -> Self {
        self.max_depth = depth;
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }
}

/// Statistics of an exploration run.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Number of traces sampled.
    pub traces: usize,
    /// Total transitions taken across all traces.
    pub steps: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// The lowest trace index on which a violation was found, if any.  For a fixed seed
    /// this is deterministic with one worker; with several workers the sampled traces
    /// are identical but the early-stop point may shift, so indices are comparable only
    /// within a worker count.
    pub first_violation_trace: Option<usize>,
    /// Wall-clock time from the start of the run to the first recorded violation.
    pub time_to_first_violation: Option<Duration>,
    /// Snapshot of the shared coverage map at the end of the run.
    pub coverage: CoverageSnapshot,
}

/// The outcome of a guided exploration run.
#[derive(Debug)]
pub struct ExploreOutcome<S> {
    /// The name of the explored specification.
    pub spec_name: String,
    /// Violations found, at most one per invariant (the one on the lowest trace index),
    /// each carrying the full sampled trace as a counterexample.
    pub violations: Vec<Violation<S>>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

impl<S> ExploreOutcome<S> {
    /// `true` when no invariant violation was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation found (lowest trace index, then shallowest), if any.
    ///
    /// `violations` is merged in `(trace index, depth, invariant)` order, so this is
    /// the violation [`ExploreStats::first_violation_trace`] refers to.  With one
    /// worker [`ExploreStats::time_to_first_violation`] describes it too; with several
    /// workers the wall-clock minimum may have been observed for a later-index
    /// violation that a faster worker reached first.
    pub fn first_violation(&self) -> Option<&Violation<S>> {
        self.violations.first()
    }
}

/// A violation found while sampling, tagged with its trace index for deterministic
/// merging.
struct IndexedViolation<S> {
    trace_index: usize,
    violation: Violation<S>,
}

/// Samples one trace, biased by `guidance` over the shared `coverage` map.
///
/// Like [`crate::simulate::simulate_one`] this returns a legal execution — every step
/// applies one enabled action — and handles the degenerate cases without panicking: an
/// empty initial-state set yields an empty trace, and `max_depth == 0` yields the
/// initial state alone.
pub fn explore_one<S: SpecState>(
    spec: &Spec<S>,
    max_depth: u32,
    rng: &mut CheckerRng,
    coverage: &CoverageMap,
    guidance: Guidance,
) -> Trace<S> {
    if spec.init.is_empty() {
        return Trace::default();
    }
    let init = spec.init[rng.index(spec.init.len())].clone();
    coverage.record(fingerprint(&init), "Init");
    let mut trace = Trace::from_init(init.clone());
    let mut current = init;
    for _ in 0..max_depth {
        let successors = spec.successors(&current);
        if successors.is_empty() {
            break;
        }
        let choice = match guidance {
            Guidance::Uniform => rng.index(successors.len()),
            Guidance::CoverageGuided { rarity_weight } => {
                weighted_choice(&successors, coverage, rarity_weight, rng)
            }
        };
        let (label, next) = successors
            .into_iter()
            .nth(choice)
            .expect("choice is in bounds");
        coverage.record(fingerprint(&next), &label);
        trace.push(label, next.clone());
        current = next;
    }
    trace
}

/// Weighted successor choice: weight `rarity_weight * SCALE / (1 + hits) + 1` where
/// `hits` combines the successor's fingerprint-prefix count and its action definition
/// count.  The `+ 1` floor keeps every enabled action reachable.
fn weighted_choice<S: SpecState>(
    successors: &[(String, S)],
    coverage: &CoverageMap,
    rarity_weight: u32,
    rng: &mut CheckerRng,
) -> usize {
    const SCALE: u64 = 1024;
    let weights: Vec<u64> = successors
        .iter()
        .map(|(label, next)| {
            let hits = coverage
                .prefix_hits(fingerprint(next))
                .saturating_add(coverage.action_hits_total(label));
            (rarity_weight as u64).saturating_mul(SCALE) / (1 + hits) + 1
        })
        .collect();
    let total: u64 = weights.iter().sum();
    let mut r = rng.next_u64() % total;
    for (i, w) in weights.iter().enumerate() {
        if r < *w {
            return i;
        }
        r -= w;
    }
    weights.len() - 1
}

/// Runs coverage-guided (or uniform) trace sampling of `spec` under `options`,
/// checking every visited state against the specification's invariants.
pub fn explore<S: SpecState>(spec: &Spec<S>, options: &ExploreOptions) -> ExploreOutcome<S> {
    let start = Instant::now();
    let total = options.traces.max(1);
    let workers = options.workers.max(1).min(total);
    let coverage = CoverageMap::new(options.shards, options.prefix_bits);
    let stop = AtomicBool::new(false);
    let first_violation_nanos = AtomicU64::new(u64::MAX);

    let run_stripe = |worker: usize| -> (usize, u64, Vec<IndexedViolation<S>>) {
        let mut traces = 0usize;
        let mut steps = 0u64;
        let mut found: Vec<IndexedViolation<S>> = Vec::new();
        let mut index = worker;
        while index < total {
            // Trace 0 is always sampled so a budget-bound run still reports something.
            if index > 0 {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                if let Some(budget) = options.time_budget {
                    if start.elapsed() >= budget {
                        break;
                    }
                }
            }
            let mut rng = CheckerRng::for_trace(options.seed, index as u64);
            let trace = explore_one(
                spec,
                options.max_depth,
                &mut rng,
                &coverage,
                options.guidance,
            );
            traces += 1;
            steps += trace.depth() as u64;
            // Record the first violating state *per invariant* of this trace: later
            // violations of the same invariant add no information (the walk typically
            // stays in violation), but a different invariant first violated deeper in
            // the same trace must not be dropped.
            let mut seen_in_trace: Vec<&'static str> = Vec::new();
            for (depth, step) in trace.steps.iter().enumerate() {
                let violated = spec.violated_invariants(&step.state);
                if violated.is_empty() {
                    continue;
                }
                let mut fresh = false;
                for inv in violated {
                    if seen_in_trace.contains(&inv.id) {
                        continue;
                    }
                    seen_in_trace.push(inv.id);
                    fresh = true;
                    found.push(IndexedViolation {
                        trace_index: index,
                        violation: Violation {
                            invariant: inv.id,
                            invariant_name: inv.name,
                            depth: depth as u32,
                            trace: prefix_trace(&trace, depth),
                        },
                    });
                }
                if fresh {
                    let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    first_violation_nanos.fetch_min(nanos, Ordering::AcqRel);
                    if options.stop_on_violation {
                        stop.store(true, Ordering::Release);
                    }
                }
            }
            index += workers;
        }
        (traces, steps, found)
    };

    let results: Vec<(usize, u64, Vec<IndexedViolation<S>>)> = if workers == 1 {
        vec![run_stripe(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || run_stripe(w)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("explore worker panicked"))
                .collect()
        })
    };

    let mut traces = 0usize;
    let mut steps = 0u64;
    let mut all: Vec<IndexedViolation<S>> = Vec::new();
    for (t, s, found) in results {
        traces += t;
        steps += s;
        all.extend(found);
    }
    // Deterministic merge: lowest trace index wins per invariant, ties by depth.
    all.sort_by_key(|v| (v.trace_index, v.violation.depth, v.violation.invariant));
    let first_violation_trace = all.first().map(|v| v.trace_index);
    let mut violations: Vec<Violation<S>> = Vec::new();
    for v in all {
        if violations
            .iter()
            .any(|k| k.invariant == v.violation.invariant)
        {
            continue;
        }
        violations.push(v.violation);
    }

    let nanos = first_violation_nanos.load(Ordering::Acquire);
    ExploreOutcome {
        spec_name: spec.name.clone(),
        violations,
        stats: ExploreStats {
            traces,
            steps,
            elapsed: start.elapsed(),
            first_violation_trace,
            time_to_first_violation: (nanos != u64::MAX).then(|| Duration::from_nanos(nanos)),
            coverage: coverage.snapshot(),
        },
    }
}

/// The prefix of `trace` ending at step `depth` (inclusive).
fn prefix_trace<S: Clone>(trace: &Trace<S>, depth: usize) -> Trace<S> {
    Trace {
        steps: trace.steps[..=depth].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_spec::{
        ActionDef, ActionInstance, Granularity, Invariant, InvariantSource, ModuleId, ModuleSpec,
    };
    use std::collections::BTreeMap;

    /// A walk with a hot "noise" loop and one rare "advance" chain: `Advance` is only
    /// enabled when `noise == 0`, while three `Churn` actions shuffle `noise` through a
    /// tiny set of values.  Uniform sampling spends most steps churning; coverage
    /// guidance learns that churned states are over-visited and favours the fresh
    /// states `Advance` produces.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Walk {
        pos: u32,
        noise: u32,
    }

    impl SpecState for Walk {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
            let mut m = BTreeMap::new();
            if vars.contains(&"pos") {
                m.insert("pos".to_owned(), remix_spec::Value::from(self.pos));
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["pos", "noise"]
        }
    }

    fn needle_spec(target: u32) -> Spec<Walk> {
        let m = ModuleId("Walk");
        let churn = ActionDef::new(
            "Churn",
            m,
            Granularity::Baseline,
            vec!["noise"],
            vec!["noise"],
            |s: &Walk| {
                (1..=3u32)
                    .map(|i| {
                        ActionInstance::new(
                            format!("Churn({i})"),
                            Walk {
                                noise: (s.noise + i) % 4,
                                ..s.clone()
                            },
                        )
                    })
                    .collect()
            },
        );
        let advance = ActionDef::new(
            "Advance",
            m,
            Granularity::Baseline,
            vec!["pos", "noise"],
            vec!["pos"],
            |s: &Walk| {
                if s.noise == 0 {
                    vec![ActionInstance::new(
                        format!("Advance({})", s.pos),
                        Walk {
                            pos: s.pos + 1,
                            noise: s.noise,
                        },
                    )]
                } else {
                    vec![]
                }
            },
        );
        let inv = Invariant::always(
            "NEEDLE",
            "target position is unreachable",
            InvariantSource::Protocol,
            move |s: &Walk| s.pos < target,
        );
        Spec::new(
            "needle",
            vec![Walk { pos: 0, noise: 1 }],
            vec![ModuleSpec::new(
                m,
                Granularity::Baseline,
                vec![churn, advance],
            )],
            vec![inv],
        )
    }

    fn options() -> ExploreOptions {
        ExploreOptions::default()
            .with_traces(400)
            .with_max_depth(48)
            .with_seed(11)
    }

    #[test]
    fn guided_traces_are_legal_executions() {
        let spec = needle_spec(1000);
        let coverage = CoverageMap::new(8, 16);
        let mut rng = CheckerRng::seed_from_u64(5);
        let trace = explore_one(
            &spec,
            24,
            &mut rng,
            &coverage,
            Guidance::CoverageGuided { rarity_weight: 16 },
        );
        assert!(trace.depth() <= 24);
        for w in trace.steps.windows(2) {
            let successors = spec.successors(&w[0].state);
            assert!(successors.iter().any(|(_, s)| s == &w[1].state));
        }
    }

    #[test]
    fn exploration_is_deterministic_for_a_seed() {
        let spec = needle_spec(6);
        let a = explore(&spec, &options());
        let b = explore(&spec, &options());
        assert_eq!(a.stats.traces, b.stats.traces);
        assert_eq!(a.stats.first_violation_trace, b.stats.first_violation_trace);
        assert_eq!(
            a.violations.iter().map(|v| v.depth).collect::<Vec<_>>(),
            b.violations.iter().map(|v| v.depth).collect::<Vec<_>>()
        );
    }

    #[test]
    fn guided_finds_the_needle_faster_than_uniform() {
        // Same seed, same budget; guidance must reach the rare deep state on an earlier
        // trace index than the uniform baseline.
        let spec = needle_spec(8);
        let uniform = explore(&spec, &options().uniform());
        let guided = explore(&spec, &options().guided(16));
        let found_guided = guided
            .stats
            .first_violation_trace
            .expect("guided exploration finds the needle");
        match uniform.stats.first_violation_trace {
            None => {} // uniform never found it within the budget — guided strictly wins
            Some(found_uniform) => assert!(
                found_guided < found_uniform,
                "guided should find the violation on an earlier trace: guided={found_guided} uniform={found_uniform}"
            ),
        }
        // The guided counterexample is a real violation of the spec.
        let v = guided.first_violation().unwrap();
        assert_eq!(v.invariant, "NEEDLE");
        assert!(!spec
            .violated_invariants(v.trace.last_state().unwrap())
            .is_empty());
    }

    #[test]
    fn guided_coverage_spreads_over_more_prefixes() {
        // On a pass-through budget (no violation to stop at), guidance visits at least
        // as many distinct regions as uniform sampling with the same step budget.
        let spec = needle_spec(1000);
        let opts = options().with_traces(64);
        let uniform = explore(&spec, &opts.clone().uniform());
        let guided = explore(&spec, &opts.guided(16));
        assert!(
            guided.stats.coverage.distinct_prefixes >= uniform.stats.coverage.distinct_prefixes,
            "guided {} vs uniform {}",
            guided.stats.coverage.distinct_prefixes,
            uniform.stats.coverage.distinct_prefixes
        );
    }

    #[test]
    fn empty_init_and_zero_depth_are_handled() {
        let spec: Spec<Walk> = Spec::new("empty", vec![], vec![], vec![]);
        let coverage = CoverageMap::new(1, 8);
        let mut rng = CheckerRng::seed_from_u64(1);
        let trace = explore_one(&spec, 10, &mut rng, &coverage, Guidance::Uniform);
        assert!(trace.is_empty());

        let spec = needle_spec(5);
        let trace = explore_one(&spec, 0, &mut rng, &coverage, Guidance::Uniform);
        assert_eq!(trace.depth(), 0);
        assert_eq!(trace.steps.len(), 1);
    }

    #[test]
    fn workers_share_the_coverage_map() {
        let spec = needle_spec(1000);
        let outcome = explore(&spec, &options().with_traces(32).with_workers(4));
        assert_eq!(outcome.stats.traces, 32);
        assert!(outcome.stats.coverage.total_hits > 0);
        assert!(outcome.stats.steps > 0);
    }
}
