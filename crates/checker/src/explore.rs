//! Coverage-guided schedule exploration.
//!
//! The paper's conformance loop (§3.5.2) samples model-level traces by uniform random
//! walk.  Uniform sampling wastes most of its budget re-walking the hot core of the
//! state space: in the Zab model the election/discovery actions are enabled almost
//! everywhere and keep funnelling walks through the same handful of states, while the
//! interleavings behind the historical bugs (a crash *between* the epoch update and the
//! history write, an acknowledgement *before* the sync processor ran) are reached by
//! exactly one rare action sequence.
//!
//! [`explore`] keeps sampling traces, but each step draws the next action from a
//! distribution biased toward *rarely covered* territory: successor states whose
//! fingerprint prefix has a low hit count in the shared [`CoverageMap`], reached by
//! action definitions that have been taken rarely (see [`Guidance::CoverageGuided`]).
//! Every reachable state stays reachable — weights are never zero — so guided sampling
//! is still probabilistically complete; it just stops paying rent on the hot loop.
//!
//! Sampling runs across [`ExploreOptions::workers`] threads, each trace seeded from its
//! index exactly like the conformance checker's parallel replay
//! (`CheckerRng::for_trace`), so with one worker a run is fully deterministic for a
//! seed, and with many workers the *trace index → RNG stream* mapping still is (only
//! the coverage bias, which depends on cross-worker interleaving, varies; see
//! [`ExploreStats`]).  Violations found along the way carry their full trace and can be
//! handed directly to [`crate::shrink`] for minimization.

use std::collections::HashSet;
use std::time::{Duration, Instant};

use remix_spec::{CanonFn, Spec, SpecState, Trace};

use crate::coverage::{CoverageMap, CoverageSnapshot};
use crate::fingerprint::{fingerprint, Fingerprint};
use crate::options::SymmetryMode;
use crate::outcome::Violation;
use crate::rng::CheckerRng;
use crate::sync::{AtomicBool, AtomicU64, Ordering};

/// Default lock-stripe count of the shared coverage map (matches the BFS engine's
/// default shard count; reused by `remix-core`'s guided conformance sampling).
pub const DEFAULT_COVERAGE_SHARDS: usize = 64;

/// Default fingerprint-prefix granularity of the coverage counters, in leading bits
/// (reused by `remix-core`'s guided conformance sampling).
pub const DEFAULT_PREFIX_BITS: u32 = 20;

/// How the explorer chooses among enabled actions (§3.5.2's sampling policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Guidance {
    /// Uniform random choice — the paper's baseline sampling policy.
    Uniform,
    /// Coverage-guided choice: each successor is weighted by the *rarity* of its
    /// fingerprint prefix and of its action definition in the shared coverage map.
    CoverageGuided {
        /// Strength of the rarity bias.  A successor's weight is computed *relative
        /// to the least-visited candidate in the same choice*, per dimension:
        ///
        /// ```text
        /// rarity_weight · SCALE · (1+min_prefix)/(1+prefix) · (1+min_action)/(1+action) + 1
        /// ```
        ///
        /// — the rarest candidate always carries the full `rarity_weight * SCALE` and
        /// hotter ones scale down by their hit *ratios*.  `0` degenerates to uniform,
        /// and the `+ 1` floor keeps every enabled action reachable (probabilistic
        /// completeness).
        ///
        /// The earlier absolute formula `rarity_weight * SCALE / (1 + hits) + 1`
        /// (with `hits` the *sum* of both counters) had two degenerations: once hit
        /// counts passed `rarity_weight * SCALE` every weight floored to 1,
        /// collapsing long guided runs to uniform-with-overhead — the bug behind
        /// guided losing to uniform in the old `BENCH_explore.json` artefact — and
        /// the step-scaled action counters drowned the trace-scaled prefix novelty
        /// signal inside the sum.  Per-dimension ratios are invariant under uniformly
        /// growing hit counts, so the bias never degenerates.
        rarity_weight: u32,
    },
}

impl Default for Guidance {
    fn default() -> Self {
        Guidance::CoverageGuided { rarity_weight: 24 }
    }
}

/// Options of a guided exploration run.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Maximum number of traces to sample (the sampling budget of §3.5.2).
    pub traces: usize,
    /// Maximum length (in transitions) of each trace.
    pub max_depth: u32,
    /// Base seed; trace `i` samples from `CheckerRng::for_trace(seed, i)`, making the
    /// per-trace RNG streams independent of the worker count.
    pub seed: u64,
    /// Worker threads sampling traces concurrently over disjoint index stripes, like
    /// the conformance checker's parallel replay.
    pub workers: usize,
    /// Wall-clock budget; sampling stops scheduling new traces once it expires.  At
    /// least one trace is always produced.
    pub time_budget: Option<Duration>,
    /// The sampling policy (uniform baseline vs coverage-guided).
    pub guidance: Guidance,
    /// Lock stripes of the shared coverage map (see [`CoverageMap::new`] and the
    /// identically-motivated `CheckOptions::shards`).
    pub shards: usize,
    /// Fingerprint-prefix granularity of the coverage counters, in leading bits.
    pub prefix_bits: u32,
    /// Stop scheduling new traces once any invariant violation has been found
    /// (time-to-first-violation mode; in-flight traces still complete).
    pub stop_on_violation: bool,
    /// Whether coverage counters (and the rarity bias) key on canonical
    /// representatives under the specification's symmetry group: id-renamed siblings
    /// then share one hit counter, so guidance stops mistaking a renamed copy of a
    /// hot region for fresh territory.  The sampled walks themselves stay in the
    /// original id frame — violations need no de-canonicalization.  Defaults to
    /// [`SymmetryMode::from_env`]; a no-op for specs without `Spec::symmetry`.
    pub symmetry: SymmetryMode,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            traces: 256,
            max_depth: 40,
            seed: 0xC0FFEE,
            workers: 1,
            time_budget: None,
            guidance: Guidance::default(),
            shards: DEFAULT_COVERAGE_SHARDS,
            prefix_bits: DEFAULT_PREFIX_BITS,
            stop_on_violation: true,
            symmetry: SymmetryMode::from_env(),
        }
    }
}

impl ExploreOptions {
    /// Switches to the uniform baseline policy.
    pub fn uniform(mut self) -> Self {
        self.guidance = Guidance::Uniform;
        self
    }

    /// Switches to coverage-guided sampling with the given rarity weight.
    pub fn guided(mut self, rarity_weight: u32) -> Self {
        self.guidance = Guidance::CoverageGuided { rarity_weight };
        self
    }

    /// Sets the sampling budget in traces.
    pub fn with_traces(mut self, traces: usize) -> Self {
        self.traces = traces;
        self
    }

    /// Sets the per-trace depth bound.
    pub fn with_max_depth(mut self, depth: u32) -> Self {
        self.max_depth = depth;
        self
    }

    /// Sets the base seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Selects the symmetry-reduction mode for the coverage counters.
    pub fn with_symmetry(mut self, mode: SymmetryMode) -> Self {
        self.symmetry = mode;
        self
    }
}

/// Statistics of an exploration run.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// Number of traces sampled.
    pub traces: usize,
    /// Total transitions taken across all traces.
    pub steps: u64,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
    /// The lowest trace index on which a violation was found, if any.  For a fixed seed
    /// this is deterministic with one worker; with several workers the sampled traces
    /// are identical but the early-stop point may shift, so indices are comparable only
    /// within a worker count.
    pub first_violation_trace: Option<usize>,
    /// Wall-clock time from the start of the run to the first recorded violation.
    pub time_to_first_violation: Option<Duration>,
    /// How far the run overshot [`ExploreOptions::time_budget`], when one was set and
    /// exceeded.  The deadline is checked inside the per-step sampling loop (not just
    /// between traces), so the overshoot is bounded by one successor
    /// enumeration + invariant sweep per in-flight worker rather than by a whole
    /// deep trace — the earlier between-traces-only check let a single long trace
    /// overrun the budget unboundedly.
    pub budget_overshoot: Option<Duration>,
    /// Snapshot of the shared coverage map at the end of the run.
    pub coverage: CoverageSnapshot,
}

/// The outcome of a guided exploration run.
#[derive(Debug)]
pub struct ExploreOutcome<S> {
    /// The name of the explored specification.
    pub spec_name: String,
    /// Violations found, at most one per invariant (the one on the lowest trace index),
    /// each carrying the full sampled trace as a counterexample.
    pub violations: Vec<Violation<S>>,
    /// Exploration statistics.
    pub stats: ExploreStats,
}

impl<S> ExploreOutcome<S> {
    /// `true` when no invariant violation was found.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// The first violation found (lowest trace index, then shallowest), if any.
    ///
    /// `violations` is merged in `(trace index, depth, invariant)` order, so this is
    /// the violation [`ExploreStats::first_violation_trace`] refers to.  With one
    /// worker [`ExploreStats::time_to_first_violation`] describes it too; with several
    /// workers the wall-clock minimum may have been observed for a later-index
    /// violation that a faster worker reached first.
    pub fn first_violation(&self) -> Option<&Violation<S>> {
        self.violations.first()
    }
}

/// A violation found while sampling, tagged with its trace index for deterministic
/// merging.
struct IndexedViolation<S> {
    trace_index: usize,
    violation: Violation<S>,
}

/// Samples one trace, biased by `guidance` over the shared `coverage` map.
///
/// Like [`crate::simulate::simulate_one`] this returns a legal execution — every step
/// applies one enabled action — and handles the degenerate cases without panicking: an
/// empty initial-state set yields an empty trace, and `max_depth == 0` yields the
/// initial state alone.
///
/// Coverage accounting: each fingerprint prefix is recorded **at most once per
/// trace** (revisits within the same walk bump only the action counters), so prefix
/// hit counts read as "traces that reached this region" and
/// [`CoverageSnapshot::max_prefix_hits`] is bounded by the trace count.
///
/// When `deadline` is set, the walk is cut off as soon as the deadline passes —
/// checked before every step, so a single deep trace cannot overshoot a run's time
/// budget by more than one step.  When `canon` is set (symmetry reduction), coverage
/// keys on canonical fingerprints while the walk itself stays in the original frame.
pub fn explore_one<S: SpecState>(
    spec: &Spec<S>,
    max_depth: u32,
    rng: &mut CheckerRng,
    coverage: &CoverageMap,
    guidance: Guidance,
    deadline: Option<Instant>,
    canon: Option<&CanonFn<S>>,
) -> Trace<S> {
    if spec.init.is_empty() {
        return Trace::default();
    }
    let coverage_fp = |s: &S| match canon {
        Some(canon) => fingerprint(&canon(s).0),
        None => fingerprint(s),
    };
    // Prefixes already recorded by *this* trace: revisits add no prefix hit.
    let mut seen_prefixes: HashSet<u64> = HashSet::new();
    let record = |fp: Fingerprint, label: &str, seen: &mut HashSet<u64>| {
        if seen.insert(coverage.prefix_of(fp)) {
            coverage.record(fp, label);
        } else {
            coverage.record_action(label);
        }
    };
    let init = spec.init[rng.index(spec.init.len())].clone();
    record(coverage_fp(&init), "Init", &mut seen_prefixes);
    let mut trace = Trace::from_init(init.clone());
    let mut current = init;
    for _ in 0..max_depth {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        let successors = spec.successors(&current);
        if successors.is_empty() {
            break;
        }
        // Guided choices hand back the chosen candidate's (canonical) fingerprint,
        // which weighted_choice computed anyway — recomputing it for recording would
        // repeat the most expensive per-step operation under symmetry.
        let (choice, chosen_fp) = match guidance {
            Guidance::Uniform => (rng.index(successors.len()), None),
            Guidance::CoverageGuided { rarity_weight } => {
                let (i, fp) = weighted_choice(&successors, coverage, rarity_weight, rng, canon);
                (i, Some(fp))
            }
        };
        let (label, next) = successors
            .into_iter()
            .nth(choice)
            .expect("choice is in bounds");
        let fp = chosen_fp.unwrap_or_else(|| coverage_fp(&next));
        record(fp, &label, &mut seen_prefixes);
        trace.push(label, next.clone());
        current = next;
    }
    trace
}

/// Weighted successor choice, relative to the least-visited candidate per dimension
/// (see [`Guidance::CoverageGuided`] for the formula and its rationale); hit counts
/// key on canonical fingerprints under symmetry.  Returns the chosen index together
/// with the candidate's (canonical) fingerprint so the caller records coverage
/// without recomputing it.
///
/// Normalizing each dimension by the candidate set's minimum makes the weights
/// depend only on hit *ratios*, so the bias survives arbitrarily long runs: the old
/// absolute formula degenerated to all-ones (uniform) once every candidate's count
/// exceeded `rarity_weight * SCALE`.  The `+ 1` floor keeps every enabled action
/// reachable.
fn weighted_choice<S: SpecState>(
    successors: &[(String, S)],
    coverage: &CoverageMap,
    rarity_weight: u32,
    rng: &mut CheckerRng,
    canon: Option<&CanonFn<S>>,
) -> (usize, Fingerprint) {
    const SCALE: u128 = 1024;
    // Prefix hits count *traces* that reached a region (per-trace dedup) while action
    // hits count *steps* globally, so the two live on very different scales: summed,
    // the action term would drown the novelty signal.  Each dimension is therefore
    // normalized by its own candidate-set minimum and the ratios are multiplied.
    let hits: Vec<(Fingerprint, u64, u64)> = successors
        .iter()
        .map(|(label, next)| {
            let fp = match canon {
                Some(canon) => fingerprint(&canon(next).0),
                None => fingerprint(next),
            };
            (
                fp,
                coverage.prefix_hits(fp),
                coverage.action_hits_total(label),
            )
        })
        .collect();
    let min_prefix = hits.iter().map(|(_, p, _)| *p).min().expect("non-empty");
    let min_action = hits.iter().map(|(_, _, a)| *a).min().expect("non-empty");
    let weights: Vec<u64> = hits
        .iter()
        .map(|(_, p, a)| {
            // ≤ rarity_weight * SCALE + 1 ≤ 2^42: the u128 intermediates cannot
            // overflow and the result always fits a u64.
            let scaled = rarity_weight as u128 * SCALE * (min_prefix as u128 + 1)
                / (*p as u128 + 1)
                * (min_action as u128 + 1)
                / (*a as u128 + 1);
            scaled as u64 + 1
        })
        .collect();
    let total: u64 = weights.iter().sum();
    let mut r = rng.next_u64() % total;
    let mut choice = weights.len() - 1;
    for (i, w) in weights.iter().enumerate() {
        if r < *w {
            choice = i;
            break;
        }
        r -= w;
    }
    (choice, hits[choice].0)
}

/// Runs coverage-guided (or uniform) trace sampling of `spec` under `options`,
/// checking every visited state against the specification's invariants.
pub fn explore<S: SpecState>(spec: &Spec<S>, options: &ExploreOptions) -> ExploreOutcome<S> {
    let start = Instant::now();
    let total = options.traces.max(1);
    let workers = options.workers.max(1).min(total);
    let coverage = CoverageMap::new(options.shards, options.prefix_bits);
    let stop = AtomicBool::new(false);
    let first_violation_nanos = AtomicU64::new(u64::MAX);
    let deadline = options.time_budget.map(|b| start + b);
    // Symmetry reduction keys coverage on canonical forms when requested and the spec
    // carries a canonicalization function.
    let canon: Option<&CanonFn<S>> = match options.symmetry {
        SymmetryMode::Canonicalize => spec.symmetry.as_ref(),
        SymmetryMode::Off => None,
    };

    let run_stripe = |worker: usize| -> (usize, u64, Vec<IndexedViolation<S>>) {
        let mut traces = 0usize;
        let mut steps = 0u64;
        let mut found: Vec<IndexedViolation<S>> = Vec::new();
        let mut index = worker;
        while index < total {
            // Trace 0 is always sampled so a budget-bound run still reports something.
            if index > 0 {
                // ordering: Acquire — pairs with the Release store below; a worker
                // that observes the stop also observes the violation that caused it.
                if stop.load(Ordering::Acquire) {
                    break;
                }
                if let Some(budget) = options.time_budget {
                    if start.elapsed() >= budget {
                        break;
                    }
                }
            }
            let mut rng = CheckerRng::for_trace(options.seed, index as u64);
            // Trace 0 skips only the *scheduling* budget check above (so a
            // budget-bound run still reports at least one trace); the in-walk
            // deadline applies to every trace, keeping the documented one-step
            // overshoot bound — an expired deadline still yields the initial state.
            let trace = explore_one(
                spec,
                options.max_depth,
                &mut rng,
                &coverage,
                options.guidance,
                deadline,
                canon,
            );
            traces += 1;
            steps += trace.depth() as u64;
            // Record the first violating state *per invariant* of this trace: later
            // violations of the same invariant add no information (the walk typically
            // stays in violation), but a different invariant first violated deeper in
            // the same trace must not be dropped.
            let mut seen_in_trace: Vec<&'static str> = Vec::new();
            for (depth, step) in trace.steps.iter().enumerate() {
                let violated = spec.violated_invariants(&step.state);
                if violated.is_empty() {
                    continue;
                }
                let mut fresh = false;
                for inv in violated {
                    if seen_in_trace.contains(&inv.id) {
                        continue;
                    }
                    seen_in_trace.push(inv.id);
                    fresh = true;
                    found.push(IndexedViolation {
                        trace_index: index,
                        violation: Violation {
                            invariant: inv.id,
                            invariant_name: inv.name,
                            depth: depth as u32,
                            trace: prefix_trace(&trace, depth),
                        },
                    });
                }
                if fresh {
                    let nanos = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                    // ordering: AcqRel — concurrent minima must all join (Acquire)
                    // and publish (Release) so the final load sees the true minimum.
                    first_violation_nanos.fetch_min(nanos, Ordering::AcqRel);
                    if options.stop_on_violation {
                        // ordering: Release — publishes this worker's recorded
                        // violation before other workers observe the stop flag.
                        stop.store(true, Ordering::Release);
                    }
                }
            }
            index += workers;
        }
        (traces, steps, found)
    };

    let results: Vec<(usize, u64, Vec<IndexedViolation<S>>)> = if workers == 1 {
        vec![run_stripe(0)]
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || run_stripe(w)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("explore worker panicked"))
                .collect()
        })
    };

    let mut traces = 0usize;
    let mut steps = 0u64;
    let mut all: Vec<IndexedViolation<S>> = Vec::new();
    for (t, s, found) in results {
        traces += t;
        steps += s;
        all.extend(found);
    }
    // Deterministic merge: lowest trace index wins per invariant, ties by depth.
    all.sort_by_key(|v| (v.trace_index, v.violation.depth, v.violation.invariant));
    let first_violation_trace = all.first().map(|v| v.trace_index);
    let mut violations: Vec<Violation<S>> = Vec::new();
    for v in all {
        if violations
            .iter()
            .any(|k| k.invariant == v.violation.invariant)
        {
            continue;
        }
        violations.push(v.violation);
    }

    // ordering: Acquire — pairs with the AcqRel fetch_min above (workers have joined
    // by now, but the load should not rely on the join for its value).
    let nanos = first_violation_nanos.load(Ordering::Acquire);
    let elapsed = start.elapsed();
    ExploreOutcome {
        spec_name: spec.name.clone(),
        violations,
        stats: ExploreStats {
            traces,
            steps,
            elapsed,
            first_violation_trace,
            time_to_first_violation: (nanos != u64::MAX).then(|| Duration::from_nanos(nanos)),
            budget_overshoot: options
                .time_budget
                .and_then(|budget| elapsed.checked_sub(budget))
                .filter(|o| !o.is_zero()),
            coverage: coverage.snapshot(),
        },
    }
}

/// The prefix of `trace` ending at step `depth` (inclusive).
fn prefix_trace<S: Clone>(trace: &Trace<S>, depth: usize) -> Trace<S> {
    Trace {
        steps: trace.steps[..=depth].to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_spec::{
        ActionDef, ActionInstance, Granularity, Invariant, InvariantSource, ModuleId, ModuleSpec,
    };
    use std::collections::BTreeMap;

    /// A walk with a hot "noise" loop and one rare "advance" chain: `Advance` is only
    /// enabled when `noise == 0`, while three `Churn` actions shuffle `noise` through a
    /// tiny set of values.  Uniform sampling spends most steps churning; coverage
    /// guidance learns that churned states are over-visited and favours the fresh
    /// states `Advance` produces.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Walk {
        pos: u32,
        noise: u32,
    }

    impl SpecState for Walk {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
            let mut m = BTreeMap::new();
            if vars.contains(&"pos") {
                m.insert("pos".to_owned(), remix_spec::Value::from(self.pos));
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["pos", "noise"]
        }
    }

    fn needle_spec(target: u32) -> Spec<Walk> {
        let m = ModuleId("Walk");
        let churn = ActionDef::new(
            "Churn",
            m,
            Granularity::Baseline,
            vec!["noise"],
            vec!["noise"],
            |s: &Walk| {
                (1..=3u32)
                    .map(|i| {
                        ActionInstance::new(
                            format!("Churn({i})"),
                            Walk {
                                noise: (s.noise + i) % 4,
                                ..s.clone()
                            },
                        )
                    })
                    .collect()
            },
        );
        let advance = ActionDef::new(
            "Advance",
            m,
            Granularity::Baseline,
            vec!["pos", "noise"],
            vec!["pos"],
            |s: &Walk| {
                if s.noise == 0 {
                    vec![ActionInstance::new(
                        format!("Advance({})", s.pos),
                        Walk {
                            pos: s.pos + 1,
                            noise: s.noise,
                        },
                    )]
                } else {
                    vec![]
                }
            },
        );
        let inv = Invariant::always(
            "NEEDLE",
            "target position is unreachable",
            InvariantSource::Protocol,
            move |s: &Walk| s.pos < target,
        );
        Spec::new(
            "needle",
            vec![Walk { pos: 0, noise: 1 }],
            vec![ModuleSpec::new(
                m,
                Granularity::Baseline,
                vec![churn, advance],
            )],
            vec![inv],
        )
    }

    fn options() -> ExploreOptions {
        ExploreOptions::default()
            .with_traces(400)
            .with_max_depth(48)
            .with_seed(11)
    }

    #[test]
    fn guided_traces_are_legal_executions() {
        let spec = needle_spec(1000);
        let coverage = CoverageMap::new(8, 16);
        let mut rng = CheckerRng::seed_from_u64(5);
        let trace = explore_one(
            &spec,
            24,
            &mut rng,
            &coverage,
            Guidance::CoverageGuided { rarity_weight: 16 },
            None,
            None,
        );
        assert!(trace.depth() <= 24);
        for w in trace.steps.windows(2) {
            let successors = spec.successors(&w[0].state);
            assert!(successors.iter().any(|(_, s)| s == &w[1].state));
        }
    }

    #[test]
    fn exploration_is_deterministic_for_a_seed() {
        let spec = needle_spec(6);
        let a = explore(&spec, &options());
        let b = explore(&spec, &options());
        assert_eq!(a.stats.traces, b.stats.traces);
        assert_eq!(a.stats.first_violation_trace, b.stats.first_violation_trace);
        assert_eq!(
            a.violations.iter().map(|v| v.depth).collect::<Vec<_>>(),
            b.violations.iter().map(|v| v.depth).collect::<Vec<_>>()
        );
    }

    #[test]
    fn guided_finds_the_needle_faster_than_uniform() {
        // Same seed, same budget; guidance must reach the rare deep state on an earlier
        // trace index than the uniform baseline.
        let spec = needle_spec(8);
        let uniform = explore(&spec, &options().uniform());
        let guided = explore(&spec, &options().guided(16));
        let found_guided = guided
            .stats
            .first_violation_trace
            .expect("guided exploration finds the needle");
        match uniform.stats.first_violation_trace {
            None => {} // uniform never found it within the budget — guided strictly wins
            Some(found_uniform) => assert!(
                found_guided < found_uniform,
                "guided should find the violation on an earlier trace: guided={found_guided} uniform={found_uniform}"
            ),
        }
        // The guided counterexample is a real violation of the spec.
        let v = guided.first_violation().unwrap();
        assert_eq!(v.invariant, "NEEDLE");
        assert!(!spec
            .violated_invariants(v.trace.last_state().unwrap())
            .is_empty());
    }

    #[test]
    fn guided_coverage_spreads_over_more_prefixes() {
        // On a pass-through budget (no violation to stop at), guidance visits at least
        // as many distinct regions as uniform sampling with the same step budget.
        let spec = needle_spec(1000);
        let opts = options().with_traces(64);
        let uniform = explore(&spec, &opts.clone().uniform());
        let guided = explore(&spec, &opts.guided(16));
        assert!(
            guided.stats.coverage.distinct_prefixes >= uniform.stats.coverage.distinct_prefixes,
            "guided {} vs uniform {}",
            guided.stats.coverage.distinct_prefixes,
            uniform.stats.coverage.distinct_prefixes
        );
    }

    #[test]
    fn empty_init_and_zero_depth_are_handled() {
        let spec: Spec<Walk> = Spec::new("empty", vec![], vec![], vec![]);
        let coverage = CoverageMap::new(1, 8);
        let mut rng = CheckerRng::seed_from_u64(1);
        let trace = explore_one(
            &spec,
            10,
            &mut rng,
            &coverage,
            Guidance::Uniform,
            None,
            None,
        );
        assert!(trace.is_empty());

        let spec = needle_spec(5);
        let trace = explore_one(&spec, 0, &mut rng, &coverage, Guidance::Uniform, None, None);
        assert_eq!(trace.depth(), 0);
        assert_eq!(trace.steps.len(), 1);
    }

    #[test]
    fn coverage_counts_each_prefix_once_per_trace() {
        // The Walk spec churns through a four-value noise set, so every walk revisits
        // regions it has already recorded.  Per-trace dedup must keep the hottest
        // prefix at or below the trace count — the committed artefact's
        // `max_prefix_hits: 8193` out of 8192 traces came from exactly this
        // within-trace revisit over-count.
        let spec = needle_spec(1000);
        for opts in [
            options().with_traces(128).uniform(),
            options().with_traces(128).guided(16),
        ] {
            let outcome = explore(&spec, &opts);
            assert!(
                outcome.stats.coverage.max_prefix_hits <= outcome.stats.traces as u64,
                "max_prefix_hits {} must not exceed the {} sampled traces",
                outcome.stats.coverage.max_prefix_hits,
                outcome.stats.traces
            );
        }
    }

    #[test]
    fn expired_deadline_cuts_a_trace_mid_walk() {
        // A deadline that has already passed must stop the walk before its first step;
        // the earlier engine only checked the budget between traces, so one deep trace
        // could overshoot it unboundedly.
        let spec = needle_spec(1000);
        let coverage = CoverageMap::new(8, 16);
        let mut rng = CheckerRng::seed_from_u64(3);
        let expired = Instant::now() - Duration::from_millis(1);
        let trace = explore_one(
            &spec,
            1_000_000,
            &mut rng,
            &coverage,
            Guidance::Uniform,
            Some(expired),
            None,
        );
        assert_eq!(trace.depth(), 0, "no step may start after the deadline");
        assert_eq!(trace.steps.len(), 1, "the initial state is still reported");
    }

    #[test]
    fn budget_overshoot_is_reported_and_bounded() {
        let spec = needle_spec(1000);
        let outcome = explore(
            &spec,
            &options()
                .with_traces(64)
                .with_max_depth(4096)
                .with_time_budget(Duration::from_millis(1)),
        );
        // The run overshoots by at most one step of the single in-flight trace, not by
        // the full 4096-step walk; on any realistic host that is well under a second.
        if let Some(overshoot) = outcome.stats.budget_overshoot {
            assert!(
                overshoot < Duration::from_secs(5),
                "overshoot {overshoot:?} suggests the per-step deadline check regressed"
            );
        }
        assert!(outcome.stats.elapsed >= Duration::from_millis(1));
    }

    #[test]
    fn rarity_weights_do_not_collapse_on_long_runs() {
        // Pre-heat the coverage map far past the old absolute cut-off
        // (rarity_weight * SCALE = 16 * 1024): under the old formula every weight
        // would floor to 1 and the choice would be uniform; the relative formula must
        // still strongly prefer the cold successor.
        let spec = needle_spec(1000);
        let coverage = CoverageMap::new(8, 16);
        let hot = Walk { pos: 0, noise: 2 };
        for _ in 0..200_000u32 {
            coverage.record_action("Churn(2)");
        }
        let _ = spec; // hits come from the shared action counter
        let successors = vec![
            ("Churn(2)".to_owned(), hot.clone()),
            ("Advance(0)".to_owned(), Walk { pos: 1, noise: 0 }),
        ];
        let mut rng = CheckerRng::seed_from_u64(9);
        let mut cold_choices = 0usize;
        for _ in 0..256 {
            if weighted_choice(&successors, &coverage, 16, &mut rng, None).0 == 1 {
                cold_choices += 1;
            }
        }
        assert!(
            cold_choices > 230,
            "the cold successor must dominate ({cold_choices}/256 picks); \
             near-uniform picks mean the rarity weight degenerated"
        );
    }

    #[test]
    fn workers_share_the_coverage_map() {
        let spec = needle_spec(1000);
        let outcome = explore(&spec, &options().with_traces(32).with_workers(4));
        assert_eq!(outcome.stats.traces, 32);
        assert!(outcome.stats.coverage.total_hits > 0);
        assert!(outcome.stats.steps > 0);
    }
}
