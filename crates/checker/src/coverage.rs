//! Coverage accounting for guided schedule exploration.
//!
//! The conformance loop of §3.5.2 samples model-level traces by *uniform* random walk,
//! which keeps revisiting the hot regions of the state space (election/discovery churn)
//! and rarely reaches the deep interleavings where the historical bugs live.  The guided
//! explorer ([`mod@crate::explore`]) instead biases each action choice toward *rarely
//! visited* territory, and this module provides the shared bookkeeping it biases on:
//!
//! * **per-fingerprint-prefix hit counters** — how often each region of the state space
//!   (identified by the leading [`CoverageMap::prefix_bits`] bits of the 128-bit state
//!   fingerprint) has been visited across all sampled traces, and
//! * **per-action hit counters** — how often each action *definition* (the label up to
//!   its instantiation arguments, e.g. `NodeCrash` for `NodeCrash(2)`) has been taken.
//!
//! The map is shared by all explorer workers, so it reuses the lock-striping scheme of
//! the parallel BFS engine ([`crate::bfs`]): counters are split into power-of-two
//! stripes — prefix counters keyed by the leading fingerprint bits, action counters by
//! a hash of the definition name, so each counter lives on exactly one stripe and both
//! reads and writes lock a single stripe.  Inserts only contend when two workers hit
//! the same stripe, and contended acquisitions are counted so a run can report how much
//! the sharing actually cost (mirroring `CheckStats::shard_contention`).

use std::collections::HashMap;

use remix_spec::{LabelId, LabelTable};

use crate::sync::{AtomicU64, CoverageRank, OrderedMutex, Ordering};

use crate::fingerprint::Fingerprint;

/// One lock stripe of the coverage counters.
struct CoverageShard {
    /// Fingerprint-prefix → visit count.  Both maps of a stripe share one lock rank
    /// (`coverage.stripe`) and are never held simultaneously: [`CoverageMap::record`]
    /// drops the prefix guard before touching the action counter.
    prefixes: OrderedMutex<CoverageRank, HashMap<u64, u64>>,
    /// Interned action-definition id → taken count.  Definition names are interned
    /// into the map's [`LabelTable`] (the same layer the state store uses for labels),
    /// so the per-step hot path allocates no strings: recording and looking up an
    /// action costs one read-locked table hit plus one striped counter bump.
    actions: OrderedMutex<CoverageRank, HashMap<LabelId, u64>>,
    /// Lock acquisitions on this stripe that found it already held.
    contention: AtomicU64,
}

/// Lock-striped hit counters over fingerprint prefixes and action names.
///
/// All operations are `&self` and thread-safe; the map is designed to be shared by the
/// workers of one guided exploration run (§3.5.2's sampling loop, made coverage-aware).
pub struct CoverageMap {
    shards: Vec<CoverageShard>,
    /// `shards.len() - 1`; the stripe count is always a power of two.
    mask: usize,
    /// Right-shift extracting the coverage prefix from the leading fingerprint bits.
    prefix_shift: u32,
    /// Number of leading fingerprint bits that form a coverage prefix.
    prefix_bits: u32,
    /// Interned action-definition names (shared by all workers of a run).
    labels: LabelTable,
}

/// A point-in-time summary of a [`CoverageMap`], reported alongside exploration stats
/// (and serialized into `BENCH_explore.json` by the bench harness).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoverageSnapshot {
    /// Number of distinct fingerprint prefixes visited.
    pub distinct_prefixes: usize,
    /// Total state visits recorded (one per trace step).
    pub total_hits: u64,
    /// The highest hit count of any single prefix (a measure of how hot the hottest
    /// region was; uniform sampling drives this far above the mean).
    pub max_prefix_hits: u64,
    /// Number of distinct action definitions taken.
    pub distinct_actions: usize,
    /// Total contended lock acquisitions across all stripes.
    pub contention: u64,
}

impl CoverageMap {
    /// Creates a map with `shards` lock stripes (rounded up to a power of two) counting
    /// hits at `prefix_bits`-bit fingerprint-prefix granularity (clamped to 1..=64).
    ///
    /// Coarser prefixes (fewer bits) make more states count as "the same region" and
    /// push exploration away from anything resembling a visited state; finer prefixes
    /// approach per-state novelty search.
    pub fn new(shards: usize, prefix_bits: u32) -> Self {
        let n = shards.max(1).next_power_of_two();
        let prefix_bits = prefix_bits.clamp(1, 64);
        CoverageMap {
            shards: (0..n)
                .map(|_| CoverageShard {
                    prefixes: OrderedMutex::with_site("coverage.prefixes", HashMap::new()),
                    actions: OrderedMutex::with_site("coverage.actions", HashMap::new()),
                    contention: AtomicU64::new(0),
                })
                .collect(),
            mask: n - 1,
            prefix_shift: 64 - prefix_bits,
            prefix_bits,
            labels: LabelTable::new(),
        }
    }

    /// The number of leading fingerprint bits that form a coverage prefix.
    pub fn prefix_bits(&self) -> u32 {
        self.prefix_bits
    }

    /// The coverage prefix of a fingerprint: its leading [`Self::prefix_bits`] bits.
    pub fn prefix_of(&self, fp: Fingerprint) -> u64 {
        fp.0 >> self.prefix_shift
    }

    fn shard_index(&self, prefix: u64) -> usize {
        // The prefix already is the leading bits; stripe by its low bits so neighbouring
        // prefixes spread across stripes.
        (prefix as usize) & self.mask
    }

    /// The stripe owning an action definition's counter: the definition's dense
    /// interned id, so a definition always lives on exactly one stripe and lookups
    /// lock only that one (no string hashing on the per-successor hot path).
    fn action_shard_index(&self, id: LabelId) -> usize {
        (id.0 as usize) & self.mask
    }

    /// Records one visit of the state with fingerprint `fp` reached by `action`, and
    /// returns the prefix's hit count *before* this visit (so the caller can reason
    /// about how novel the step was).
    ///
    /// The explorer calls this **at most once per trace per prefix** (and
    /// [`CoverageMap::record_action`] for the remaining steps), so a prefix counter
    /// reads as "number of traces that visited this region" and
    /// [`CoverageSnapshot::max_prefix_hits`] can never exceed the trace count.  The
    /// earlier every-step recording double-counted within-trace revisits — the
    /// `max_prefix_hits: 8193` from 8192 traces in the committed `BENCH_explore.json`
    /// artefact came from a walk stepping back into the initial state's region.
    pub fn record(&self, fp: Fingerprint, action: &str) -> u64 {
        let prefix = self.prefix_of(fp);
        let shard = &self.shards[self.shard_index(prefix)];
        let before = {
            let mut prefixes = shard.prefixes.lock_counting(&shard.contention);
            let slot = prefixes.entry(prefix).or_insert(0);
            let before = *slot;
            *slot += 1;
            before
        };
        self.record_action(action);
        before
    }

    /// Records one taken step of `action` without touching any prefix counter.
    ///
    /// Used by the explorer for steps whose state region was already recorded earlier
    /// in the same trace: action counters keep counting *steps* (how often a
    /// definition fires) while prefix counters count *traces* (how many walks reached
    /// a region).
    pub fn record_action(&self, action: &str) {
        let id = self.labels.intern(action_definition(action));
        let action_shard = &self.shards[self.action_shard_index(id)];
        let mut actions = action_shard.actions.lock_counting(&action_shard.contention);
        *actions.entry(id).or_insert(0) += 1;
    }

    /// Hit count of the state region containing `fp`.
    pub fn prefix_hits(&self, fp: Fingerprint) -> u64 {
        let prefix = self.prefix_of(fp);
        let shard = &self.shards[self.shard_index(prefix)];
        let prefixes = shard.prefixes.lock_counting(&shard.contention);
        prefixes.get(&prefix).copied().unwrap_or(0)
    }

    /// Total hit count of an action definition (instantiation arguments are ignored, so
    /// `NodeCrash(0)` and `NodeCrash(2)` share one counter).
    ///
    /// A definition's counter lives on exactly one stripe (keyed by the hash of its
    /// name), so this locks a single stripe — it is on the guided explorer's
    /// per-successor hot path.
    pub fn action_hits_total(&self, action: &str) -> u64 {
        let id = self.labels.intern(action_definition(action));
        let shard = &self.shards[self.action_shard_index(id)];
        let actions = shard.actions.lock_counting(&shard.contention);
        actions.get(&id).copied().unwrap_or(0)
    }

    /// Summarizes the map.
    pub fn snapshot(&self) -> CoverageSnapshot {
        let mut snap = CoverageSnapshot::default();
        for shard in &self.shards {
            {
                let prefixes = shard.prefixes.lock_counting(&shard.contention);
                snap.distinct_prefixes += prefixes.len();
                for hits in prefixes.values() {
                    snap.total_hits += hits;
                    snap.max_prefix_hits = snap.max_prefix_hits.max(*hits);
                }
            }
            {
                // A definition lives on exactly one stripe, so per-stripe map sizes sum
                // to the distinct-definition count.
                let actions = shard.actions.lock_counting(&shard.contention);
                snap.distinct_actions += actions.len();
            }
            // ordering: Relaxed — contention counts are observability only.
            snap.contention += shard.contention.load(Ordering::Relaxed);
        }
        snap
    }
}

/// The action *definition* name of an instantiated label: everything before the first
/// `(`, e.g. `NodeCrash` for `NodeCrash(2)`.
pub fn action_definition(label: &str) -> &str {
    label.split('(').next().unwrap_or(label).trim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::fingerprint;

    #[test]
    fn records_and_reports_hits() {
        let map = CoverageMap::new(8, 16);
        let fp = fingerprint(&42u64);
        assert_eq!(map.prefix_hits(fp), 0);
        assert_eq!(map.record(fp, "Step(1)"), 0);
        assert_eq!(map.record(fp, "Step(2)"), 1);
        assert_eq!(map.prefix_hits(fp), 2);
        assert_eq!(
            map.action_hits_total("Step(9)"),
            2,
            "arguments share a counter"
        );
        let snap = map.snapshot();
        assert_eq!(snap.total_hits, 2);
        assert_eq!(snap.distinct_prefixes, 1);
        assert_eq!(snap.distinct_actions, 1);
        assert_eq!(snap.max_prefix_hits, 2);
    }

    #[test]
    fn prefix_granularity_buckets_states() {
        // With a 1-bit prefix there are only two regions, so two distinct states very
        // likely share one (and certainly at most two exist).
        let map = CoverageMap::new(1, 1);
        for i in 0..64u64 {
            map.record(fingerprint(&i), "A");
        }
        let snap = map.snapshot();
        assert!(snap.distinct_prefixes <= 2);
        assert_eq!(snap.total_hits, 64);
    }

    #[test]
    fn action_definition_strips_arguments() {
        assert_eq!(action_definition("NodeCrash(2)"), "NodeCrash");
        assert_eq!(action_definition("Init"), "Init");
        assert_eq!(action_definition("Elect(1, [1, 2])"), "Elect");
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let map = CoverageMap::new(4, 12);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let map = &map;
                scope.spawn(move || {
                    for i in 0..256u64 {
                        map.record(
                            fingerprint(&(i % 16)),
                            if t % 2 == 0 { "A(0)" } else { "B(1)" },
                        );
                    }
                });
            }
        });
        let snap = map.snapshot();
        assert_eq!(snap.total_hits, 4 * 256);
        assert_eq!(snap.distinct_actions, 2);
        assert_eq!(
            map.action_hits_total("A") + map.action_hits_total("B"),
            4 * 256
        );
    }
}
