//! Sleep-set dynamic partial-order reduction, shared by the BFS and DFS engines.
//!
//! # What is pruned
//!
//! Two transitions with declared read/write footprints ([`Effect`]) that are
//! *independent* ([`Effect::independent`]) commute: firing them in either order from a
//! common state reaches the same final state, and neither disables the other.  Plain
//! exploration still walks both interleavings and relies on state dedup to merge the
//! diamond at the far corner — paying a full successor generation (and, under symmetry,
//! a canonicalization) for each redundant edge.  Sleep sets prune those edges *before*
//! they are generated.
//!
//! Each frontier state carries a **sleep set**: labels whose transitions are already
//! covered through a sibling interleaving.  When a state is expanded, transitions whose
//! label is in its sleep set are skipped (counted in `CheckStats::pruned_transitions`);
//! each explored transition `t` passes down the sleep set
//!
//! ```text
//! sleep(child) = { x ∈ sleep(s) ∪ earlier(s, t) : independent(x, t) }
//! ```
//!
//! where `earlier(s, t)` are the explored (not pruned) transitions enumerated before
//! `t` at `s` with declared footprints.  This is Godefroid's classical sleep-set
//! recurrence; the footprint table below supplies the independence relation.
//!
//! # Soundness (safety properties)
//!
//! Sleep sets never remove *states*, only redundant edges between reached states:
//! every reachable state is still reached, so invariant verdicts (and
//! `distinct_states`) are unchanged.  The engines add two refinements:
//!
//! * **BFS** joins the sleep sets of all same-level arrival edges by intersection at
//!   the level barrier (a transition is only kept asleep if *every* minimal-depth
//!   arrival keeps it asleep), and ignores arrival edges from deeper levels entirely.
//!   An induction over levels shows every state is still discovered at its minimal
//!   BFS depth, so minimal counterexample depths — and depth-bounded runs — are also
//!   unchanged, and the per-state sleep sets are a function of the level sets alone,
//!   making pruned/explored transition counts identical for every worker count.
//! * **DFS** records one sleep set per state; re-reaching a state with a smaller
//!   incoming sleep set shrinks the recorded set (intersection) and re-pushes the
//!   state for re-expansion — the standard fix for combining sleep sets with state
//!   matching, which would otherwise lose states.  Sets only shrink, so this
//!   terminates.
//!
//! Composition with symmetry reduction is frame-based: sleep sets hold labels in the
//! parent's (canonical) id frame, so they are only propagated across edges whose
//! canonicalizing permutation is the identity — any relabelling edge resets the child's
//! sleep set to empty, which is always sound.  See `ARCHITECTURE.md` for the full
//! argument.

use remix_spec::{Effect, LabelId};

use crate::sync::{OrderedRwLock, PorEffectsRank};

/// A sorted, deduplicated set of sleeping labels.
pub(crate) type SleepSet = Vec<LabelId>;

/// Write-once table of declared label footprints, indexed by the dense [`LabelId`]
/// space.
///
/// An instance's [`Effect`] must be a function of its label alone (the contract of
/// `ActionInstance::effect`), so every recording for a label carries the same value and
/// first-writer-wins is deterministic.  Labels without a recorded footprint are treated
/// as dependent on everything (they can never justify keeping another label asleep).
pub(crate) struct FootprintTable {
    effects: OrderedRwLock<PorEffectsRank, Vec<Option<Effect>>>,
}

impl FootprintTable {
    pub(crate) fn new() -> Self {
        FootprintTable {
            effects: OrderedRwLock::new(Vec::new()),
        }
    }

    /// Records `effect` as `label`'s footprint (no-op if already recorded).
    pub(crate) fn record(&self, label: LabelId, effect: Effect) {
        let idx = label.0 as usize;
        {
            let effects = self.effects.read();
            if effects.get(idx).is_some_and(Option::is_some) {
                return;
            }
        }
        let mut effects = self.effects.write();
        if effects.len() <= idx {
            effects.resize(idx + 1, None);
        }
        effects[idx].get_or_insert(effect);
    }

    /// The recorded footprint of `label`, if any.
    #[cfg(test)]
    pub(crate) fn get(&self, label: LabelId) -> Option<Effect> {
        self.effects.read().get(label.0 as usize).copied().flatten()
    }

    /// Resolves a sleep set into `(label, effect)` pairs, dropping labels without a
    /// recorded footprint (they cannot stay asleep across any transition anyway).
    pub(crate) fn resolve(&self, sleep: &[LabelId]) -> Vec<(LabelId, Effect)> {
        let effects = self.effects.read();
        sleep
            .iter()
            .filter_map(|&l| effects.get(l.0 as usize).copied().flatten().map(|e| (l, e)))
            .collect()
    }
}

/// Intersects `cur` (sorted) with `other` (sorted) in place.
pub(crate) fn intersect_sorted(cur: &mut SleepSet, other: &[LabelId]) {
    cur.retain(|x| other.binary_search(x).is_ok());
}

/// The sleep set handed down across the transition `t` (with footprint `effect`):
/// every inherited or earlier-sibling label whose footprint is independent of `t`'s.
/// Returns an empty set for transitions without a usable footprint — they are
/// dependent on everything, so nothing stays asleep across them.
pub(crate) fn child_sleep(
    sleep_in: &[(LabelId, Effect)],
    retained: &[(LabelId, Effect)],
    effect: Option<Effect>,
) -> SleepSet {
    let Some(e) = effect.filter(|e| !e.is_global()) else {
        return Vec::new();
    };
    let mut out: SleepSet = sleep_in
        .iter()
        .chain(retained)
        .filter(|(_, xe)| xe.independent(&e))
        .map(|(x, _)| *x)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_table_is_write_once() {
        let t = FootprintTable::new();
        let a = Effect::new().writes_server(0);
        let b = Effect::new().writes_server(1);
        t.record(LabelId(3), a);
        t.record(LabelId(3), b);
        assert_eq!(t.get(LabelId(3)), Some(a), "first writer wins");
        assert_eq!(t.get(LabelId(0)), None);
        assert_eq!(t.get(LabelId(99)), None);
    }

    #[test]
    fn resolve_drops_unknown_labels() {
        let t = FootprintTable::new();
        let a = Effect::new().writes_server(0);
        t.record(LabelId(1), a);
        let resolved = t.resolve(&[LabelId(0), LabelId(1)]);
        assert_eq!(resolved, vec![(LabelId(1), a)]);
    }

    #[test]
    fn child_sleep_keeps_only_independent_labels() {
        let w0 = Effect::new().writes_server(0);
        let w1 = Effect::new().writes_server(1);
        let w2 = Effect::new().writes_server(2);
        let sleep_in = vec![(LabelId(10), w0), (LabelId(11), w2)];
        let retained = vec![(LabelId(12), w1)];
        // Transition writes server 1: the earlier sibling (also writing 1) conflicts,
        // the inherited labels writing 0 and 2 stay asleep.
        let cs = child_sleep(&sleep_in, &retained, Some(w1));
        assert_eq!(cs, vec![LabelId(10), LabelId(11)]);
        // No declared footprint: nothing survives.
        assert!(child_sleep(&sleep_in, &retained, None).is_empty());
        assert!(child_sleep(&sleep_in, &retained, Some(Effect::global())).is_empty());
    }

    #[test]
    fn intersection_is_sorted_set_intersection() {
        let mut cur = vec![LabelId(1), LabelId(3), LabelId(5)];
        intersect_sorted(&mut cur, &[LabelId(3), LabelId(4), LabelId(5)]);
        assert_eq!(cur, vec![LabelId(3), LabelId(5)]);
        intersect_sorted(&mut cur, &[]);
        assert!(cur.is_empty());
    }
}
