//! Breadth-first state-space exploration.
//!
//! BFS is the exploration strategy the paper uses (§4.4): it guarantees that the first
//! violation found for each invariant has minimal depth, which produces short, debuggable
//! counterexample traces.
//!
//! # Parallel engine
//!
//! Exploration is level-synchronous and scales across [`CheckOptions::workers`] threads:
//!
//! * **Persistent worker pool** — worker threads are spawned *once per run* and park on
//!   a condition variable between levels; the coordinator publishes each level
//!   (frontier, steal ranges, depth) and wakes them.  The previous engine re-spawned
//!   its workers at every level boundary, which made small-frontier levels pay thread
//!   spawn latency over and over — the measured cause of the *negative* multi-worker
//!   scaling in earlier `BENCH_table5.json` artefacts.
//! * **Arena state store** — discovered states live in a lock-striped
//!   [`StateStore`]: `u32` state indices, parent-by-index, interned action labels, and
//!   (in [`StoreMode::Full`](crate::store::StoreMode)) states inline in the arena — no
//!   per-state `Arc`, no per-transition `String`.
//!   [`StoreMode::FingerprintOnly`](crate::store::StoreMode) drops the states entirely
//!   for memory-bounded runs; see [`crate::store`].
//! * **Per-worker successor buffers** — each worker accumulates successors in local
//!   per-shard buffers and merges a buffer into its stripe in one batch of
//!   [`CheckOptions::batch_size`] states (and unconditionally at the level boundary),
//!   amortising one lock acquisition over the whole batch.
//! * **Work stealing** — the frontier of each level is split into one contiguous range
//!   per worker; a worker that drains its range steals the back half of the largest
//!   remaining range, so skewed successor costs cannot leave threads idle.  Range bounds
//!   live in one packed atomic word, so a claim and a steal can never hand the same
//!   index to two workers: every state is expanded exactly once for any worker count.
//! * **Deterministic stop precedence** — several stop conditions can trip within one
//!   level (a violation on one worker, the state limit on another, the wall clock on a
//!   third).  Stop requests accumulate in a bitmask and are resolved once per level
//!   under a fixed precedence — violation stops over [`StopReason::StateLimit`] over
//!   [`StopReason::TimeBudget`] — so the reported [`StopReason`] does not depend on
//!   which worker tripped its condition first.  Expansion aborts a level early once any
//!   stop is requested (as the engine always has); sequentially that abort point — and
//!   hence the fired set and reported reason — is reproducible because states are
//!   claimed and flushed in a fixed order, while across workers the fired set can vary
//!   with scheduling — the precedence then guarantees the *resolution* over the fired
//!   set is still fixed, and a scheduling-dependent wall-clock stop can never mask a
//!   violation stop.
//!
//! With `workers = 1` the same code runs inline on the calling thread, with no thread
//! spawns and no atomics on the hot path beyond the shard counters, so sequential runs
//! behave exactly like the pre-parallel engine.  Parallel and sequential runs discover
//! the same state space and report the same minimal violation depth (all states of a
//! level share one depth); see the `parallel_matches_sequential_*` regression tests.
//!
//! # Partial-order reduction and incremental canonicalization
//!
//! Under [`CheckOptions::por`] the engine prunes redundant interleavings with sleep
//! sets derived from declared action footprints (see the `por` module): each frontier
//! state carries the set of labels already covered through a sibling ordering, pruned
//! transitions are skipped *before* canonicalization and fingerprinting, and the sleep
//! sets of all same-level arrival edges are intersected at the level barrier — which
//! keeps the reduction sound for safety properties, minimal-depth preserving, and
//! deterministic across worker counts.  Independently, when the spec provides an
//! incremental canonicalization (`Spec::incremental_symmetry`) and a successor's
//! footprint bounds which servers changed, the per-successor canonicalization reuses
//! the parent's sort keys instead of recomputing all of them — the parent is already
//! canonical, so untouched keys are unchanged by construction (debug builds verify
//! every incremental result against the full recomputation).

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::Path;
use std::time::Instant;

use remix_spec::{
    canon_stats, CanonFn, Effect, IncrementalCanon, LabelId, LabelTable, Perm, Spec, SpecState,
    Trace,
};

use crate::fingerprint::{fingerprint, Fingerprint};
use crate::options::{CheckMode, CheckOptions, SymmetryMode};
use crate::outcome::{CheckOutcome, CheckStats, StopReason, Violation};
use crate::por::{self, FootprintTable, SleepSet};
use crate::spill::IndexQueue;
use crate::stop::{
    StopCell, STOP_FIRST_VIOLATION, STOP_STATE_LIMIT, STOP_TIME_BUDGET, STOP_VIOLATION_LIMIT,
};
use crate::store::{Insert, StateIndex, StateStore, StoreMode};
use crate::sync::{
    AtomicU32, AtomicU64, AtomicU8, AtomicUsize, FrontierRank, FrontierSleepsRank, GateRank,
    MailboxRank, OrderedCondvar, OrderedMutex, OrderedRwLock, Ordering, PanicSlotRank, ResultsRank,
};

/// One worker's slice of the frontier, stealable by other workers.
///
/// `next` and `end` are packed into one 64-bit word (32 bits each) so that claims and
/// steals are single compare-exchange operations on the same atomic: an index can never
/// be handed to both its owner and a thief, which keeps transition counts — not just the
/// explored state set — identical across worker counts.  Frontier levels are bounded far
/// below `u32::MAX` by the configuration's budgets.
struct StealRange {
    packed: AtomicU64,
}

fn pack(next: usize, end: usize) -> u64 {
    debug_assert!(next <= u32::MAX as usize && end <= u32::MAX as usize);
    ((next as u64) << 32) | end as u64
}

fn unpack(word: u64) -> (usize, usize) {
    ((word >> 32) as usize, (word & 0xffff_ffff) as usize)
}

impl StealRange {
    fn new(start: usize, end: usize) -> Self {
        StealRange {
            packed: AtomicU64::new(pack(start, end)),
        }
    }

    /// Re-arms this range for a new level (only the coordinator writes between levels).
    fn reset(&self, start: usize, end: usize) {
        // ordering: Release — publishes the new bounds before workers wake (the gate
        // handshake also orders this; Release keeps reset safe on its own).
        self.packed.store(pack(start, end), Ordering::Release);
    }

    /// Claims the next index of this range, if any remains.
    fn claim(&self) -> Option<usize> {
        // ordering: Acquire — sees the coordinator's reset and other claims/steals.
        let mut word = self.packed.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(word);
            if next >= end {
                return None;
            }
            match self.packed.compare_exchange_weak(
                word,
                pack(next + 1, end),
                // ordering: AcqRel on success (the claim both observes and extends
                // the claim history), Acquire on failure to reload a current word.
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(next),
                Err(current) => word = current,
            }
        }
    }

    fn remaining(&self) -> usize {
        // ordering: Acquire — an advisory victim-size read; pairs with the CAS.
        let (next, end) = unpack(self.packed.load(Ordering::Acquire));
        end.saturating_sub(next)
    }

    /// Tries to steal the back half of this range, returning the stolen bounds.
    fn steal_half(&self) -> Option<(usize, usize)> {
        // ordering: Acquire — sees the victim's current bounds; pairs with the CAS.
        let mut word = self.packed.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(word);
            if end.saturating_sub(next) < 2 {
                return None;
            }
            let mid = next + (end - next) / 2;
            match self.packed.compare_exchange_weak(
                word,
                pack(next, mid),
                // ordering: AcqRel/Acquire — same contract as claim's CAS: a range
                // index is handed to exactly one of owner and thief.
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((mid, end)),
                Err(current) => word = current,
            }
        }
    }
}

/// A violation observed by a worker, resolved into a [`Violation`] (with trace) after the
/// level completes.
struct PendingViolation {
    index: StateIndex,
    /// The violating state's fingerprint: the scheduling-independent tie-breaker when
    /// choosing each invariant's representative (state indices depend on insert order).
    fp: Fingerprint,
    depth: u32,
    invariant: &'static str,
    invariant_name: &'static str,
}

/// Everything one worker produced while expanding (part of) one level.
struct WorkerLevelResult<S> {
    next_frontier: Vec<(StateIndex, S)>,
    transitions: u64,
    /// Transitions skipped by sleep-set POR (not counted in `transitions`).
    pruned: u64,
    violations: Vec<PendingViolation>,
    /// Arrival edges recorded under POR: the sleep set each inserted (fresh *or*
    /// already-known) successor would inherit through this edge.  The coordinator
    /// intersects the contributions per target at the level barrier.
    sleep_edges: Vec<(StateIndex, SleepSet)>,
}

impl<S> Default for WorkerLevelResult<S> {
    fn default() -> Self {
        WorkerLevelResult {
            next_frontier: Vec::new(),
            transitions: 0,
            pruned: 0,
            violations: Vec::new(),
            sleep_edges: Vec::new(),
        }
    }
}

/// Coordination state of the persistent worker pool: generation counter, in-flight
/// worker count and the shutdown flag, guarded by one mutex with two condvars.
struct Gate {
    generation: u64,
    remaining: usize,
    shutdown: bool,
}

/// What the pool workers do in the next gate cycle: expand the published frontier, or
/// (under owner routing) drain the shard mailboxes they own.
const PHASE_EXPAND: u8 = 0;
const PHASE_DRAIN: u8 = 1;

/// One producer's batch of successors routed to the shard that owns their fingerprint
/// range.  `(producer, seq)` gives drain a scheduling-independent replay order, so the
/// owner-routed engine assigns slots deterministically for any worker interleaving.
struct RoutedBatch<S> {
    producer: u32,
    seq: u32,
    items: Vec<BufferedSuccessor<S>>,
}

/// Everything shared between the coordinator and the pool workers for a whole run.
///
/// Run-constant fields are plain references; per-level fields (`frontier`, `ranges`,
/// `child_depth`) are rewritten by the coordinator *between* levels, while every worker
/// is parked — the generation handshake in `gate` is the synchronisation point.
struct RunShared<'a, S> {
    spec: &'a Spec<S>,
    labels: &'a LabelTable,
    store: &'a StateStore<S>,
    /// The active canonicalization function under
    /// [`SymmetryMode::Canonicalize`] (`None` when symmetry is off or the spec has no
    /// symmetry group).  When set, the frontier and the store hold canonical
    /// representatives and violation traces are de-canonicalized on reconstruction.
    canon: Option<&'a CanonFn<S>>,
    /// The incremental variant of `canon`, used for successors whose footprint bounds
    /// the touched servers (`None` when symmetry is off or the spec only provides the
    /// full recomputation).
    incr: Option<&'a IncrementalCanon<S>>,
    /// Sleep-set partial-order reduction is active ([`CheckOptions::por`]).
    por: bool,
    /// Declared footprint per interned label (grown lazily as labels are explored).
    footprints: FootprintTable,
    /// The sleep set of each current-frontier state, index-aligned with the published
    /// frontier.  Rewritten by the coordinator between levels; empty for spilled
    /// levels (their sleeps degrade to ∅, which is always sound).
    frontier_sleeps: OrderedRwLock<FrontierSleepsRank, Vec<SleepSet>>,
    stop: &'a StopCell,
    violation_count: &'a AtomicUsize,
    violation_limit: usize,
    violation_stop: u8,
    batch_size: usize,
    max_states: Option<usize>,
    deadline: Option<Instant>,
    frontier: OrderedRwLock<FrontierRank, Vec<(StateIndex, S)>>,
    ranges: Vec<StealRange>,
    child_depth: AtomicU32,
    /// Owner-routed sharding (see [`CheckOptions::route_by_owner`]): when set, workers
    /// deposit successor batches into the owning shard's mailbox during the expand
    /// phase instead of locking the stripe, and a second drain phase lets each shard's
    /// owner merge them single-threadedly.
    route_by_owner: bool,
    /// The phase the pool runs in the next gate cycle ([`PHASE_EXPAND`] or
    /// [`PHASE_DRAIN`]); only the coordinator writes it, between cycles.
    phase: AtomicU8,
    /// Number of pool workers (drain ownership is `shard % pool_workers == worker`).
    pool_workers: usize,
    /// One mailbox per store shard for owner-routed batches.
    mailboxes: Vec<OrderedMutex<MailboxRank, Vec<RoutedBatch<S>>>>,
    results: Vec<OrderedMutex<ResultsRank, Option<WorkerLevelResult<S>>>>,
    /// The first panic payload caught on a pool worker, re-raised by the coordinator
    /// after the level completes (a dead worker must still decrement `gate.remaining`,
    /// or the coordinator would wait forever — see `pool_worker`).
    worker_panic: OrderedMutex<PanicSlotRank, Option<Box<dyn std::any::Any + Send>>>,
    gate: OrderedMutex<GateRank, Gate>,
    work_ready: OrderedCondvar,
    work_done: OrderedCondvar,
}

/// Runs breadth-first model checking of `spec` under `options`.
pub fn check_bfs<S: SpecState>(spec: &Spec<S>, options: &CheckOptions) -> CheckOutcome<S> {
    let start = Instant::now();
    let fallbacks_before = canon_stats::tie_cap_fallbacks();
    let workers = options.workers.max(1);
    let labels = LabelTable::new();
    let store: StateStore<S> =
        StateStore::with_spill(options.store_mode, options.shards, &options.spill);
    let stop = StopCell::new();
    let violation_count = AtomicUsize::new(0);
    let mut violations: Vec<Violation<S>> = Vec::new();

    let (violation_limit, violation_stop) = match options.mode {
        CheckMode::FirstViolation => (1, STOP_FIRST_VIOLATION),
        CheckMode::Completion { violation_limit } => (violation_limit, STOP_VIOLATION_LIMIT),
    };

    // Symmetry reduction is active only when both the options request it and the spec
    // carries a canonicalization function; otherwise the engine runs untouched.
    let canon: Option<&CanonFn<S>> = match options.symmetry {
        SymmetryMode::Canonicalize => spec.symmetry.as_ref(),
        SymmetryMode::Off => None,
    };
    // The incremental path only makes sense when the full canonicalization is active
    // (it shares the same canonical-representative invariant).
    let incr: Option<&IncrementalCanon<S>> = canon.and(spec.incremental_symmetry.as_ref());

    // Seed the store with the initial states (depth 0), checking invariants on each.
    let mut frontier: Vec<(StateIndex, S)> = Vec::new();
    let mut pending: Vec<PendingViolation> = Vec::new();
    for init in &spec.init {
        let insert = match canon {
            Some(canon) => {
                let (canonical, perm) = canon(init);
                let fp = fingerprint(&canonical);
                let mut handle = store.lock_shard(store.shard_of(fp));
                (
                    handle.insert_canonical(fp, None, LabelTable::init_id(), canonical, perm),
                    fp,
                )
            }
            None => {
                let fp = fingerprint(init);
                let mut handle = store.lock_shard(store.shard_of(fp));
                (
                    handle.insert(fp, None, LabelTable::init_id(), init.clone()),
                    fp,
                )
            }
        };
        let (Insert::Fresh(index, state), fp) = insert else {
            continue;
        };
        let violated = spec.violated_invariants(&state);
        if !violated.is_empty() {
            // ordering: AcqRel — the running total decides whether to request a stop,
            // so each increment must both publish and observe concurrent increments.
            let total =
                violation_count.fetch_add(violated.len(), Ordering::AcqRel) + violated.len();
            for inv in violated {
                pending.push(PendingViolation {
                    index,
                    fp,
                    depth: 0,
                    invariant: inv.id,
                    invariant_name: inv.name,
                });
            }
            if total >= violation_limit {
                stop.request(violation_stop);
            }
        }
        frontier.push((index, state));
    }

    let shared = RunShared {
        spec,
        labels: &labels,
        store: &store,
        canon,
        incr,
        por: options.por,
        footprints: FootprintTable::new(),
        frontier_sleeps: OrderedRwLock::new(Vec::new()),
        stop: &stop,
        violation_count: &violation_count,
        violation_limit,
        violation_stop,
        batch_size: options.batch_size.max(1),
        max_states: options.max_states,
        deadline: options.time_budget.map(|b| start + b),
        frontier: OrderedRwLock::new(Vec::new()),
        ranges: (0..workers).map(|_| StealRange::new(0, 0)).collect(),
        child_depth: AtomicU32::new(1),
        route_by_owner: options.route_by_owner,
        phase: AtomicU8::new(PHASE_EXPAND),
        pool_workers: workers,
        mailboxes: (0..store.shard_count())
            .map(|_| OrderedMutex::new(Vec::new()))
            .collect(),
        results: (0..workers).map(|_| OrderedMutex::new(None)).collect(),
        worker_panic: OrderedMutex::new(None),
        gate: OrderedMutex::new(Gate {
            generation: 0,
            remaining: 0,
            shutdown: false,
        }),
        work_ready: OrderedCondvar::new(),
        work_done: OrderedCondvar::new(),
    };

    resolve_violations(&shared, options, pending, &mut violations);
    if let Some(reason) = stop.stop_reason() {
        let stats = stats_from(&store, &vec![0u64; workers], 0, start, 0, fallbacks_before);
        return CheckOutcome {
            spec_name: spec.name.clone(),
            stats,
            stop_reason: reason,
            violations,
            // ordering: Acquire — pairs with the AcqRel counter updates; reads the
            // final total after all inserts above.
            violation_count: violation_count.load(Ordering::Acquire),
        };
    }

    let mut per_worker_transitions = vec![0u64; workers];
    let mut pruned_transitions: u64 = 0;
    let mut max_depth_reached: u32 = 0;
    let mut stop_reason = StopReason::Exhausted;

    let run = |pool: bool| {
        level_loop(
            &shared,
            options,
            start,
            frontier,
            pool,
            &mut per_worker_transitions,
            &mut pruned_transitions,
            &mut max_depth_reached,
            &mut violations,
        )
    };
    if workers == 1 {
        stop_reason = run(false);
    } else {
        std::thread::scope(|scope| {
            for w in 0..workers {
                let shared = &shared;
                scope.spawn(move || pool_worker(shared, w));
            }
            stop_reason = run(true);
            // Unpark everyone one last time so the scope can join.
            let mut gate = shared.gate.lock();
            gate.shutdown = true;
            drop(gate);
            shared.work_ready.notify_all();
        });
    }

    let stats = stats_from(
        &store,
        &per_worker_transitions,
        max_depth_reached,
        start,
        pruned_transitions,
        fallbacks_before,
    );
    CheckOutcome {
        spec_name: spec.name.clone(),
        stats,
        stop_reason,
        violations,
        // ordering: Acquire — the final total, read after every worker joined.
        violation_count: violation_count.load(Ordering::Acquire),
    }
}

/// Frontier levels smaller than this are never spilled, whatever the memory budget:
/// below it the queue's syscall overhead dwarfs the memory saved.
const MIN_FRONTIER_CHUNK: usize = 256;

/// One BFS level, either resident or round-tripping through an on-disk index queue.
///
/// Spilled levels store only the `u32` state indices; the states themselves are reloaded
/// from the full-state arena chunk by chunk, which is why frontier spilling requires
/// [`StoreMode::Full`] — in fingerprint-only mode the frontier is the *sole* holder of
/// the live states and dropping them would lose the level.
enum LevelFrontier<S> {
    Ram(Vec<(StateIndex, S)>),
    Disk(IndexQueue),
}

impl<S> LevelFrontier<S> {
    fn len(&self) -> usize {
        match self {
            LevelFrontier::Ram(v) => v.len(),
            LevelFrontier::Disk(q) => q.remaining(),
        }
    }
}

/// Accumulates the next BFS level across the chunks of the current one, spilling index
/// runs to disk whenever the resident tail outgrows the memory budget.
struct NextFrontier<'a, S> {
    ram: Vec<(StateIndex, S)>,
    disk: Option<IndexQueue>,
    /// `(chunk_size, spill_dir)`; `None` disables frontier spilling entirely.
    spill: Option<(usize, &'a Path)>,
    child_depth: u32,
    store: &'a StateStore<S>,
}

impl<'a, S: SpecState> NextFrontier<'a, S> {
    fn new(spill: Option<(usize, &'a Path)>, child_depth: u32, store: &'a StateStore<S>) -> Self {
        NextFrontier {
            ram: Vec::new(),
            disk: None,
            spill,
            child_depth,
            store,
        }
    }

    fn extend(&mut self, items: Vec<(StateIndex, S)>) {
        self.ram.extend(items);
        if let Some((threshold, dir)) = self.spill {
            if self.ram.len() > threshold {
                self.flush(dir);
            }
        }
    }

    /// Moves the resident entries onto the level's index queue, dropping the states
    /// (they stay reloadable from the full-state arena).
    fn flush(&mut self, dir: &Path) {
        let queue = match &mut self.disk {
            Some(queue) => queue,
            None => {
                let path = dir.join(format!("frontier-{:06}.idx", self.child_depth));
                self.disk
                    .insert(IndexQueue::create(&path).expect("creating a frontier spill queue"))
            }
        };
        let indices: Vec<u32> = self.ram.drain(..).map(|(index, _)| index.0).collect();
        queue
            .push(&indices)
            .expect("appending to a frontier spill queue");
        self.store.note_frontier_spilled(indices.len() as u64);
    }

    fn is_empty(&self) -> bool {
        self.ram.is_empty() && self.disk.as_ref().is_none_or(|q| q.remaining() == 0)
    }

    /// Finalizes the level: fully resident, or fully on disk once any part spilled (a
    /// mixed level would expand its two halves in a scheduling-dependent order).
    fn into_frontier(mut self) -> LevelFrontier<S> {
        match self.disk.take() {
            Some(queue) => {
                self.disk = Some(queue);
                if !self.ram.is_empty() {
                    let (_, dir) = self.spill.expect("a spilled frontier has a spill dir");
                    self.flush(dir);
                }
                LevelFrontier::Disk(self.disk.take().expect("queue restored above"))
            }
            None => LevelFrontier::Ram(self.ram),
        }
    }
}

/// The level-synchronous main loop, shared by the inline (1-worker) and pooled paths.
#[allow(clippy::too_many_arguments)]
fn level_loop<S: SpecState>(
    shared: &RunShared<'_, S>,
    options: &CheckOptions,
    start: Instant,
    frontier: Vec<(StateIndex, S)>,
    pool: bool,
    per_worker_transitions: &mut [u64],
    pruned_transitions: &mut u64,
    max_depth_reached: &mut u32,
    violations: &mut Vec<Violation<S>>,
) -> StopReason {
    // Frontier spilling is active only with a memory budget AND the full-state store
    // (see `LevelFrontier`).  The chunk size is how many frontier entries the budget
    // buys; states round-trip through disk only when a level outgrows it.
    let frontier_spill: Option<(usize, &Path)> = match (
        shared.store.spill_dir(),
        options.spill.budget_bytes,
        shared.store.mode(),
    ) {
        (Some(dir), Some(budget), StoreMode::Full) => {
            let entry = std::mem::size_of::<(StateIndex, S)>().max(1);
            Some(((budget as usize / entry).max(MIN_FRONTIER_CHUNK), dir))
        }
        _ => None,
    };

    let mut frontier = LevelFrontier::Ram(frontier);
    let mut level_depth: u32 = 0;
    while frontier.len() > 0 {
        // Check resource budgets between levels (workers also check them within a level).
        if let Some(budget) = options.time_budget {
            if start.elapsed() >= budget {
                return StopReason::TimeBudget;
            }
        }
        if let Some(max_depth) = options.max_depth {
            if level_depth >= max_depth {
                return StopReason::DepthBound;
            }
        }

        // ordering: Release — pairs with the workers' Acquire loads; the gate
        // handshake already orders the level publication, this keeps the field
        // self-consistent even read in isolation.
        shared.child_depth.store(level_depth + 1, Ordering::Release);
        let mut next = NextFrontier::new(frontier_spill, level_depth + 1, shared.store);
        let mut pending: Vec<PendingViolation> = Vec::new();
        let mut sleep_edges: Vec<(StateIndex, SleepSet)> = Vec::new();

        // A resident level is one chunk; a spilled level streams back in budget-sized
        // chunks, each expanded exactly like a whole level used to be.
        loop {
            let chunk: Vec<(StateIndex, S)> = match &mut frontier {
                LevelFrontier::Ram(v) => std::mem::take(v),
                LevelFrontier::Disk(queue) => {
                    let max = frontier_spill
                        .map(|(chunk_size, _)| chunk_size)
                        .unwrap_or(usize::MAX);
                    queue
                        .next_chunk(max)
                        .expect("reading back a spilled frontier queue")
                        .into_iter()
                        .map(|raw| {
                            let index = StateIndex(raw);
                            let state = shared
                                .store
                                .with_state(index, S::clone)
                                .expect("spilled frontiers require the full-state store");
                            (index, state)
                        })
                        .collect()
                }
            };
            if chunk.is_empty() {
                break;
            }
            expand_level_chunk(
                shared,
                chunk,
                pool,
                per_worker_transitions,
                pruned_transitions,
                &mut next,
                &mut pending,
                &mut sleep_edges,
            );
            // Mid-level stops abort the remaining chunks, exactly as expansion of a
            // resident level aborts its remaining claims.
            if shared.stop.requested() || matches!(frontier, LevelFrontier::Ram(_)) {
                break;
            }
        }

        resolve_violations(shared, options, pending, violations);
        if !next.is_empty() {
            *max_depth_reached = (*max_depth_reached).max(level_depth + 1);
        }
        if let Some(reason) = shared.stop.stop_reason() {
            return reason;
        }
        frontier = next.into_frontier();
        if shared.por {
            publish_frontier_sleeps(shared, sleep_edges, &frontier);
        }
        level_depth += 1;
    }
    StopReason::Exhausted
}

/// Builds the next level's sleep sets from the arrival edges recorded during the level
/// just expanded, and publishes them index-aligned with the next frontier.
///
/// A state reached through several same-level edges keeps only the labels *every*
/// arrival keeps asleep (set intersection — commutative, so the result is independent
/// of worker scheduling).  Edges to states of older levels (re-visits at greater depth)
/// have no aligned frontier slot and are dropped; spilled levels get no sleep sets at
/// all — both degrade the reduction, never its soundness.
fn publish_frontier_sleeps<S>(
    shared: &RunShared<'_, S>,
    sleep_edges: Vec<(StateIndex, SleepSet)>,
    frontier: &LevelFrontier<S>,
) {
    let mut by_index: HashMap<u32, SleepSet> = HashMap::with_capacity(sleep_edges.len());
    for (index, sleep) in sleep_edges {
        match by_index.entry(index.0) {
            Entry::Occupied(mut slot) => por::intersect_sorted(slot.get_mut(), &sleep),
            Entry::Vacant(slot) => {
                slot.insert(sleep);
            }
        }
    }
    let aligned: Vec<SleepSet> = match frontier {
        LevelFrontier::Ram(v) => v
            .iter()
            .map(|(index, _)| by_index.remove(&index.0).unwrap_or_default())
            .collect(),
        LevelFrontier::Disk(_) => Vec::new(),
    };
    *shared.frontier_sleeps.write() = aligned;
}

/// Expands one chunk of the current level (inline or on the pool), merging the per-worker
/// results into the accumulators.  Under owner routing each chunk runs as two phases:
/// expand (deposit successors into shard mailboxes) then drain (each shard's owner
/// merges its mailbox).
#[allow(clippy::too_many_arguments)]
fn expand_level_chunk<S: SpecState>(
    shared: &RunShared<'_, S>,
    chunk: Vec<(StateIndex, S)>,
    pool: bool,
    per_worker_transitions: &mut [u64],
    pruned_transitions: &mut u64,
    next: &mut NextFrontier<'_, S>,
    pending: &mut Vec<PendingViolation>,
    sleep_edges: &mut Vec<(StateIndex, SleepSet)>,
) {
    let workers = per_worker_transitions.len();
    let mut merge = |results: Vec<WorkerLevelResult<S>>| {
        for (w, result) in results.into_iter().enumerate() {
            per_worker_transitions[w] += result.transitions;
            *pruned_transitions += result.pruned;
            next.extend(result.next_frontier);
            pending.extend(result.violations);
            sleep_edges.extend(result.sleep_edges);
        }
    };

    // Small frontiers are not worth waking the pool for; expand them inline.
    let use_pool = pool && chunk.len() >= 64;
    if use_pool {
        {
            let mut shared_frontier = shared.frontier.write();
            *shared_frontier = chunk;
            let len = shared_frontier.len();
            let per_worker = len.div_ceil(workers);
            for (w, range) in shared.ranges.iter().enumerate() {
                range.reset((w * per_worker).min(len), ((w + 1) * per_worker).min(len));
            }
        }
        // ordering: Release — the phase is read by workers after the gate wake;
        // Release pairs with their Acquire load so a cycle never runs a stale phase.
        shared.phase.store(PHASE_EXPAND, Ordering::Release);
        merge(run_pool_cycle(shared, workers));
        if shared.route_by_owner {
            if shared.stop.requested() {
                // The level is being aborted: deposited batches are discarded just as
                // the unrouted engine drops unflushed worker buffers on a stop.
                clear_mailboxes(shared);
            } else {
                // ordering: Release — see the PHASE_EXPAND store above.
                shared.phase.store(PHASE_DRAIN, Ordering::Release);
                merge(run_pool_cycle(shared, workers));
            }
        }
    } else {
        shared.ranges[0].reset(0, chunk.len());
        for range in &shared.ranges[1..] {
            range.reset(0, 0);
        }
        merge(vec![expand_range(shared, &chunk, 0)]);
        if shared.route_by_owner {
            if shared.stop.requested() {
                clear_mailboxes(shared);
            } else {
                merge(vec![drain_mailboxes(shared, 0, 1)]);
            }
        }
    }
}

/// Runs one gate cycle of the persistent pool (all workers execute the current phase)
/// and collects the published per-worker results.
fn run_pool_cycle<S: SpecState>(
    shared: &RunShared<'_, S>,
    workers: usize,
) -> Vec<WorkerLevelResult<S>> {
    // Wake the pool and wait for every worker to finish the cycle.
    {
        let mut gate = shared.gate.lock();
        gate.generation += 1;
        gate.remaining = workers;
        drop(gate);
        shared.work_ready.notify_all();
        let mut gate = shared.gate.lock();
        while gate.remaining > 0 {
            gate = shared.work_done.wait(gate);
        }
    }
    if let Some(payload) = shared.worker_panic.lock().take() {
        // Wake the parked workers so `thread::scope` can join, then re-raise
        // the worker's panic from the coordinator.
        let mut gate = shared.gate.lock();
        gate.shutdown = true;
        drop(gate);
        shared.work_ready.notify_all();
        std::panic::resume_unwind(payload);
    }
    let mut results = Vec::with_capacity(workers);
    for slot in &shared.results {
        let result = slot
            .lock()
            .take()
            .expect("every pool worker publishes a cycle result");
        results.push(result);
    }
    results
}

fn clear_mailboxes<S>(shared: &RunShared<'_, S>) {
    for mailbox in &shared.mailboxes {
        mailbox.lock().clear();
    }
}

/// The body of one pool worker: park until the coordinator publishes a level (or shuts
/// the run down), expand it, publish the result, repeat.
fn pool_worker<S: SpecState>(shared: &RunShared<'_, S>, worker: usize) {
    let mut last_generation = 0u64;
    loop {
        {
            let mut gate = shared.gate.lock();
            while gate.generation == last_generation && !gate.shutdown {
                gate = shared.work_ready.wait(gate);
            }
            if gate.shutdown {
                return;
            }
            last_generation = gate.generation;
        }
        // A panicking spec closure (action or invariant) must not leave the
        // coordinator waiting forever on `gate.remaining`: catch the panic, publish an
        // empty result, request a stop so the other workers drain, and let the
        // coordinator re-raise the payload after the level completes.  (The previous
        // per-level-spawn engine propagated worker panics through `join()`; this keeps
        // that contract under the persistent pool.)
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // ordering: Acquire — pairs with the coordinator's Release store; the
            // phase decides which cycle body runs, so it must not be stale.
            if shared.phase.load(Ordering::Acquire) == PHASE_DRAIN {
                drain_mailboxes(shared, worker, shared.pool_workers)
            } else {
                let frontier = shared.frontier.read();
                expand_range(shared, &frontier, worker)
            }
        }))
        .unwrap_or_else(|payload| {
            shared.worker_panic.lock().get_or_insert(payload);
            shared.stop.request(STOP_TIME_BUDGET);
            WorkerLevelResult::default()
        });
        *shared.results[worker].lock() = Some(result);
        let mut gate = shared.gate.lock();
        gate.remaining -= 1;
        if gate.remaining == 0 {
            shared.work_done.notify_all();
        }
    }
}

/// One buffered successor awaiting its batch merge: 24 bytes of metadata plus the state
/// (the canonical representative, with the applied permutation, under symmetry).
struct BufferedSuccessor<S> {
    fp: Fingerprint,
    parent: StateIndex,
    label: LabelId,
    state: S,
    perm: Option<Perm>,
    /// The sleep set this edge hands down to its target (empty when POR is off).
    sleep: SleepSet,
}

/// The worker loop: claims frontier indices (own range first, then stolen halves),
/// expands each state, and buffers successors per shard, flushing in batches.
fn expand_range<S: SpecState>(
    shared: &RunShared<'_, S>,
    frontier: &[(StateIndex, S)],
    worker: usize,
) -> WorkerLevelResult<S> {
    let mut result = WorkerLevelResult::default();
    let shard_count = shared.store.shard_count();
    let mut buffers: Vec<Vec<BufferedSuccessor<S>>> =
        (0..shard_count).map(|_| Vec::new()).collect();
    let mut seqs: Vec<u32> = vec![
        0;
        if shared.route_by_owner {
            shard_count
        } else {
            0
        }
    ];
    let mut stolen: Option<StealRange> = None;
    let mut processed: u64 = 0;
    // ordering: Acquire — pairs with the coordinator's Release store between levels.
    let child_depth = shared.child_depth.load(Ordering::Acquire);
    // Index-aligned sleep sets of the published frontier (empty map when POR is off or
    // the level was spilled).  Workers hold the read lock for the whole cycle; the
    // coordinator only writes between cycles, while every worker is parked.
    let frontier_sleeps = shared.por.then(|| shared.frontier_sleeps.read());

    'claim: loop {
        if shared.stop.requested() {
            break;
        }
        // Claim from the stolen range first (it was taken to be worked on), then from the
        // worker's own range, then steal from the largest remaining range.
        let idx = loop {
            if let Some(range) = &stolen {
                if let Some(idx) = range.claim() {
                    break idx;
                }
                stolen = None;
            }
            if let Some(idx) = shared.ranges[worker].claim() {
                break idx;
            }
            let victim = shared
                .ranges
                .iter()
                .enumerate()
                .filter(|(v, _)| *v != worker)
                .max_by_key(|(_, r)| r.remaining())
                .filter(|(_, r)| r.remaining() >= 2);
            let Some((_, victim)) = victim else {
                // No range anywhere holds stealable work: the level is drained.
                break 'claim;
            };
            match victim.steal_half() {
                Some((start, end)) => stolen = Some(StealRange::new(start, end)),
                // Lost the race to the victim's owner (or another thief); other ranges
                // may still hold work, so rescan rather than leaving this worker idle
                // for the rest of the level.
                None => continue,
            }
        };

        let (parent_index, state) = &frontier[idx];
        // POR bookkeeping for this parent: the labels it must not re-explore (sorted),
        // their footprints (resolved once, outside the hot closure), and the explored
        // earlier siblings accumulated as enumeration proceeds.
        let sleep_in: &[LabelId] = frontier_sleeps
            .as_ref()
            .and_then(|sleeps| sleeps.get(idx))
            .map_or(&[], |sleep| sleep.as_slice());
        let sleep_in_effects: Vec<(LabelId, Effect)> = if sleep_in.is_empty() {
            Vec::new()
        } else {
            shared.footprints.resolve(sleep_in)
        };
        let mut retained: Vec<(LabelId, Effect)> = Vec::new();
        // The parent's canonicalization memo, built lazily on the first successor that
        // can use the incremental path (the parent state is already canonical).
        let mut memo: Option<Box<dyn std::any::Any + Send + Sync>> = None;
        // Effects observed during this expansion; recorded into the (locked) footprint
        // table only after the callback returns — the successor callback itself stays
        // lock-free (the concurrency lint's no-lock-in-callback rule, which keeps spec
        // enumeration code unable to deadlock against engine locks).
        let mut fresh_effects: Vec<(LabelId, Effect)> = Vec::new();
        shared
            .spec
            .for_each_successor(state, shared.labels, |label, next, effect| {
                if shared.por && sleep_in.binary_search(&label).is_ok() {
                    // Already covered through a sibling interleaving of an earlier
                    // edge: skip before canonicalization and fingerprinting.
                    result.pruned += 1;
                    return;
                }
                result.transitions += 1;
                let mut sleep = SleepSet::new();
                if shared.por {
                    if let Some(e) = effect {
                        fresh_effects.push((label, e));
                    }
                    sleep = por::child_sleep(&sleep_in_effects, &retained, effect);
                    if let Some(e) = effect.filter(|e| !e.is_global()) {
                        retained.push((label, e));
                    }
                }
                // Under symmetry the successor is replaced by the canonical
                // representative of its orbit before fingerprinting, so the whole
                // orbit dedups to one store entry; the applied permutation rides
                // along for later trace de-canonicalization.  When the successor's
                // footprint bounds the touched servers, the incremental path reuses
                // the parent's sort keys instead of recomputing all of them.
                let (next, perm) = match (shared.canon, shared.incr) {
                    (Some(_canon), Some(incr)) if effect.is_some_and(|e| !e.is_global()) => {
                        let touched = effect.expect("guarded above").touched_servers();
                        let parent_memo = memo.get_or_insert_with(|| (incr.memo)(state));
                        #[cfg(debug_assertions)]
                        let oracle = next.clone();
                        let (canonical, perm) = (incr.canon)(next, &**parent_memo, touched);
                        #[cfg(debug_assertions)]
                        debug_assert_eq!(
                            canonical,
                            _canon(&oracle).0,
                            "incremental canonicalization diverged from the full \
                             recomputation (label {label:?})"
                        );
                        (canonical, Some(perm))
                    }
                    (Some(_canon), Some(incr)) => {
                        // No usable footprint, but the owned full path still skips the
                        // deep rewrite when the canonical permutation is the identity.
                        let (canonical, perm) = (incr.full_owned)(next);
                        (canonical, Some(perm))
                    }
                    (Some(canon), None) => {
                        let (canonical, perm) = canon(&next);
                        (canonical, Some(perm))
                    }
                    (None, _) => (next, None),
                };
                // Sleep-set labels live in the parent's id frame; a relabelling edge
                // invalidates them, so the child starts awake (always sound).
                if perm.as_ref().is_some_and(|p| !p.is_identity()) {
                    sleep.clear();
                }
                let fp = fingerprint(&next);
                let shard = shared.store.shard_of(fp);
                buffers[shard].push(BufferedSuccessor {
                    fp,
                    parent: *parent_index,
                    label,
                    state: next,
                    perm,
                    sleep,
                });
            });
        for (label, effect) in fresh_effects.drain(..) {
            shared.footprints.record(label, effect);
        }
        // Batch flushing happens here, between parents, instead of inside the
        // callback: a buffer can overshoot `batch_size` by at most one parent's
        // successor count, and the merged outcome is unchanged (flush order within
        // a worker was already a function of claim order alone).
        for shard in 0..shard_count {
            if buffers[shard].len() >= shared.batch_size {
                if shared.route_by_owner {
                    deposit(shared, shard, worker, &mut seqs[shard], &mut buffers[shard]);
                } else {
                    flush_shard(shared, shard, &mut buffers[shard], child_depth, &mut result);
                }
            }
        }

        processed += 1;
        if processed.is_multiple_of(64) {
            if let Some(deadline) = shared.deadline {
                if Instant::now() >= deadline {
                    shared.stop.request(STOP_TIME_BUDGET);
                }
            }
        }
    }

    // Merge whatever is still buffered at the level boundary — unless a stop was
    // requested, in which case exploration is being aborted anyway and merging the
    // leftovers would only push `distinct_states` further past the stop condition (the
    // pre-parallel engine likewise broke out without expanding the rest of the level).
    if !shared.stop.requested() {
        for (shard, buffer) in buffers.iter_mut().enumerate() {
            if !buffer.is_empty() {
                if shared.route_by_owner {
                    deposit(shared, shard, worker, &mut seqs[shard], buffer);
                } else {
                    flush_shard(shared, shard, buffer, child_depth, &mut result);
                }
            }
        }
    }
    result
}

/// Routes one successor batch to its owning shard's mailbox (owner-routed mode), tagging
/// it with `(producer, seq)` so the drain phase can replay batches deterministically.
fn deposit<S>(
    shared: &RunShared<'_, S>,
    shard: usize,
    worker: usize,
    seq: &mut u32,
    buffer: &mut Vec<BufferedSuccessor<S>>,
) {
    let items = std::mem::take(buffer);
    shared.mailboxes[shard].lock().push(RoutedBatch {
        producer: worker as u32,
        seq: *seq,
        items,
    });
    *seq += 1;
}

/// The drain phase of an owner-routed chunk: each of the `drainers` workers merges the
/// mailboxes of the shards it owns (`shard % drainers == worker`), replaying batches in
/// `(producer, seq)` order.  Every shard has exactly one drainer, so inserts into a
/// stripe are single-threaded — the lock in `flush_shard` is uncontended by design.
/// `drainers` is the number of workers participating in *this* drain cycle: the pool
/// size on the pooled path, 1 when a small chunk drains inline.
fn drain_mailboxes<S: SpecState>(
    shared: &RunShared<'_, S>,
    worker: usize,
    drainers: usize,
) -> WorkerLevelResult<S> {
    let mut result = WorkerLevelResult::default();
    // ordering: Acquire — pairs with the coordinator's Release store between levels.
    let child_depth = shared.child_depth.load(Ordering::Acquire);
    let workers = drainers.max(1);
    for shard in (worker..shared.mailboxes.len()).step_by(workers) {
        let mut batches = std::mem::take(&mut *shared.mailboxes[shard].lock());
        if batches.is_empty() {
            continue;
        }
        batches.sort_by_key(|b| (b.producer, b.seq));
        let mut combined: Vec<BufferedSuccessor<S>> =
            batches.into_iter().flat_map(|b| b.items).collect();
        flush_shard(shared, shard, &mut combined, child_depth, &mut result);
    }
    result
}

/// Merges one per-worker buffer into its stripe under a single lock acquisition, then
/// (outside the lock) checks invariants on the states that were actually new.
fn flush_shard<S: SpecState>(
    shared: &RunShared<'_, S>,
    shard: usize,
    buffer: &mut Vec<BufferedSuccessor<S>>,
    child_depth: u32,
    result: &mut WorkerLevelResult<S>,
) {
    let mut fresh: Vec<(StateIndex, Fingerprint, S)> = Vec::new();
    {
        let mut handle = shared.store.lock_shard(shard);
        for mut item in buffer.drain(..) {
            let sleep = std::mem::take(&mut item.sleep);
            let insert = match item.perm {
                Some(perm) => handle.insert_canonical(
                    item.fp,
                    Some(item.parent),
                    item.label,
                    item.state,
                    perm,
                ),
                None => handle.insert(item.fp, Some(item.parent), item.label, item.state),
            };
            // Both fresh and already-known targets contribute an arrival edge: a state
            // reached again within the same level only keeps a label asleep if every
            // minimal-depth arrival does (re-visits from older levels are dropped at
            // the barrier — their targets have no slot in the next frontier).
            let index = match &insert {
                Insert::Fresh(index, _) | Insert::Existing(index, _) => *index,
            };
            if shared.por {
                result.sleep_edges.push((index, sleep));
            }
            if let Insert::Fresh(index, state) = insert {
                fresh.push((index, item.fp, state));
            }
        }
    }
    for (index, fp, state) in fresh {
        if let Some(max_states) = shared.max_states {
            if shared.store.len() >= max_states {
                shared.stop.request(STOP_STATE_LIMIT);
            }
        }
        let violated = shared.spec.violated_invariants(&state);
        if !violated.is_empty() {
            let total = shared
                .violation_count
                // ordering: AcqRel — the running total decides the stop request
                // below, so each increment must observe and publish its peers.
                .fetch_add(violated.len(), Ordering::AcqRel)
                + violated.len();
            for inv in violated {
                result.violations.push(PendingViolation {
                    index,
                    fp,
                    depth: child_depth,
                    invariant: inv.id,
                    invariant_name: inv.name,
                });
            }
            if total >= shared.violation_limit {
                shared.stop.request(shared.violation_stop);
            }
        }
        result.next_frontier.push((index, state));
    }
}

/// Turns pending worker-side violation records into [`Violation`]s with reconstructed
/// traces, keeping (as before) only the first recorded violation of each invariant.
fn resolve_violations<S: SpecState>(
    shared: &RunShared<'_, S>,
    options: &CheckOptions,
    mut pending: Vec<PendingViolation>,
    violations: &mut Vec<Violation<S>>,
) {
    // Sort so the representative chosen for each invariant does not depend on worker
    // scheduling: lowest depth first, ties broken by fingerprint.
    pending.sort_by_key(|p| (p.depth, p.invariant, p.fp));
    for p in pending {
        if violations.iter().any(|v| v.invariant == p.invariant) {
            continue;
        }
        let trace = if options.collect_traces {
            match shared.canon {
                // A symmetry-reduced chain is a sequence of canonical forms, not an
                // execution; replay it back into the original id frame so the witness
                // runs step-by-step through `Spec::successors` on the original spec.
                Some(canon) => shared.store.reconstruct_trace_decanonicalized(
                    shared.spec,
                    shared.labels,
                    p.index,
                    canon,
                ),
                None => shared
                    .store
                    .reconstruct_trace(shared.spec, shared.labels, p.index),
            }
        } else {
            Trace::default()
        };
        violations.push(Violation {
            invariant: p.invariant,
            invariant_name: p.invariant_name,
            depth: p.depth,
            trace,
        });
    }
}

fn stats_from<S: SpecState>(
    store: &StateStore<S>,
    per_worker_transitions: &[u64],
    max_depth: u32,
    start: Instant,
    pruned_transitions: u64,
    canon_fallbacks_before: u64,
) -> CheckStats {
    CheckStats {
        distinct_states: store.len(),
        transitions: per_worker_transitions.iter().sum(),
        max_depth,
        elapsed: start.elapsed(),
        per_worker_transitions: per_worker_transitions.to_vec(),
        shard_contention: store.contention_counters(),
        peak_entry_bytes: store.entry_bytes(),
        entry_bytes_per_state: store.entry_bytes_per_state(),
        spill: store.spill_stats(),
        pruned_transitions,
        canon_fallbacks: canon_stats::tie_cap_fallbacks().saturating_sub(canon_fallbacks_before),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreMode;
    use remix_spec::{
        ActionDef, ActionInstance, Granularity, Invariant, InvariantSource, ModuleId, ModuleSpec,
    };
    use std::collections::BTreeMap;
    use std::time::Duration;

    /// A pair of counters where `b` may only be incremented after `a`, bounded by `max`.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Pair {
        a: u32,
        b: u32,
        max: u32,
    }

    impl SpecState for Pair {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
            let mut m = BTreeMap::new();
            for v in vars {
                match *v {
                    "a" => {
                        m.insert("a".to_owned(), remix_spec::Value::from(self.a));
                    }
                    "b" => {
                        m.insert("b".to_owned(), remix_spec::Value::from(self.b));
                    }
                    _ => {}
                }
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["a", "b"]
        }
    }

    fn pair_spec(max: u32, bad_at: Option<(u32, u32)>) -> Spec<Pair> {
        let m = ModuleId("Pair");
        let inc_a = ActionDef::new(
            "IncA",
            m,
            Granularity::Baseline,
            vec!["a"],
            vec!["a"],
            move |s: &Pair| {
                if s.a < s.max {
                    vec![ActionInstance::new(
                        format!("IncA({})", s.a),
                        Pair {
                            a: s.a + 1,
                            ..s.clone()
                        },
                    )]
                } else {
                    vec![]
                }
            },
        );
        let inc_b = ActionDef::new(
            "IncB",
            m,
            Granularity::Baseline,
            vec!["a", "b"],
            vec!["b"],
            move |s: &Pair| {
                if s.b < s.a {
                    vec![ActionInstance::new(
                        format!("IncB({})", s.b),
                        Pair {
                            b: s.b + 1,
                            ..s.clone()
                        },
                    )]
                } else {
                    vec![]
                }
            },
        );
        let inv = Invariant::always(
            "NO-BAD",
            "never reach the bad pair",
            InvariantSource::Protocol,
            move |s: &Pair| match bad_at {
                Some((a, b)) => !(s.a == a && s.b == b),
                None => true,
            },
        );
        Spec::new(
            "pair",
            vec![Pair { a: 0, b: 0, max }],
            vec![ModuleSpec::new(
                m,
                Granularity::Baseline,
                vec![inc_a, inc_b],
            )],
            vec![inv],
        )
    }

    #[test]
    fn explores_whole_space_when_no_violation() {
        let spec = pair_spec(3, None);
        let outcome = check_bfs(&spec, &CheckOptions::default());
        assert!(outcome.passed());
        assert_eq!(outcome.stop_reason, StopReason::Exhausted);
        // Reachable states are all pairs with b <= a <= 3: 4 + 3 + 2 + 1 = 10.
        assert_eq!(outcome.stats.distinct_states, 10);
        assert_eq!(outcome.stats.max_depth, 6);
        assert_eq!(
            outcome.stats.peak_entry_bytes,
            10 * outcome.stats.entry_bytes_per_state
        );
    }

    #[test]
    fn finds_minimal_depth_counterexample() {
        let spec = pair_spec(3, Some((2, 1)));
        let outcome = check_bfs(&spec, &CheckOptions::default());
        assert!(!outcome.passed());
        assert_eq!(outcome.stop_reason, StopReason::FirstViolation);
        let v = outcome.first_violation().unwrap();
        // Reaching (2, 1) takes exactly 3 transitions; BFS must not find a longer path.
        assert_eq!(v.depth, 3);
        assert_eq!(v.trace.depth(), 3);
        assert_eq!(v.trace.last_state().unwrap(), &Pair { a: 2, b: 1, max: 3 });
    }

    #[test]
    fn fingerprint_only_mode_finds_the_same_counterexample() {
        let spec = pair_spec(3, Some((2, 1)));
        let full = check_bfs(
            &spec,
            &CheckOptions::default().with_store_mode(StoreMode::Full),
        );
        let fp_only = check_bfs(
            &spec,
            &CheckOptions::default().with_store_mode(StoreMode::FingerprintOnly),
        );
        let (v_full, v_fp) = (
            full.first_violation().unwrap(),
            fp_only.first_violation().unwrap(),
        );
        assert_eq!(v_full.depth, v_fp.depth);
        assert_eq!(v_full.trace.last_state(), v_fp.trace.last_state());
        assert_eq!(
            v_full.trace.action_labels(),
            v_fp.trace.action_labels(),
            "the replayed fingerprint-only trace matches the stored one"
        );
        assert!(
            fp_only.stats.entry_bytes_per_state < full.stats.entry_bytes_per_state,
            "dropping states must shrink the per-entry footprint"
        );
    }

    #[test]
    fn fingerprint_only_mode_explores_the_same_space() {
        let spec = pair_spec(12, None);
        let full = check_bfs(
            &spec,
            &CheckOptions::default().with_store_mode(StoreMode::Full),
        );
        let fp_only = check_bfs(
            &spec,
            &CheckOptions::default().with_store_mode(StoreMode::FingerprintOnly),
        );
        assert_eq!(full.stats.distinct_states, fp_only.stats.distinct_states);
        assert_eq!(full.stats.transitions, fp_only.stats.transitions);
        assert_eq!(full.stats.max_depth, fp_only.stats.max_depth);
        assert!(fp_only.stats.peak_entry_bytes < full.stats.peak_entry_bytes);
    }

    #[test]
    fn completion_mode_counts_all_violations() {
        // Every state with a == max violates; there are max+1 of them (b ranges 0..=max).
        let m = ModuleId("Pair");
        let spec = {
            let mut s = pair_spec(2, None);
            s.invariants = vec![Invariant::always(
                "A-NOT-MAX",
                "a below max",
                InvariantSource::Protocol,
                |p: &Pair| p.a < p.max,
            )];
            let _ = m;
            s
        };
        let outcome = check_bfs(&spec, &CheckOptions::completion());
        assert_eq!(outcome.stop_reason, StopReason::Exhausted);
        assert_eq!(outcome.violation_count, 3);
        // Only one trace is kept per invariant.
        assert_eq!(outcome.violations.len(), 1);
    }

    #[test]
    fn respects_state_limit_and_depth_bound() {
        let spec = pair_spec(10, None);
        let outcome = check_bfs(&spec, &CheckOptions::default().with_max_states(5));
        assert_eq!(outcome.stop_reason, StopReason::StateLimit);
        assert!(outcome.stats.distinct_states >= 5);

        let outcome = check_bfs(&spec, &CheckOptions::default().with_max_depth(2));
        assert_eq!(outcome.stop_reason, StopReason::DepthBound);
        assert!(outcome.stats.max_depth <= 2);
    }

    #[test]
    fn respects_time_budget() {
        let spec = pair_spec(60, None);
        let outcome = check_bfs(
            &spec,
            &CheckOptions::default().with_time_budget(Duration::from_millis(0)),
        );
        assert_eq!(outcome.stop_reason, StopReason::TimeBudget);
    }

    #[test]
    fn violation_stop_outranks_resource_stops_in_the_same_level() {
        // A level where both the first violation and the state limit fire must still
        // deterministically report the violation stop — it carries the counterexample.
        let spec = pair_spec(8, Some((1, 0)));
        for mode in [StoreMode::Full, StoreMode::FingerprintOnly] {
            let outcome = check_bfs(
                &spec,
                &CheckOptions::default()
                    .with_store_mode(mode)
                    .with_max_states(1),
            );
            assert_eq!(
                outcome.stop_reason,
                StopReason::FirstViolation,
                "store mode {mode}"
            );
            assert!(!outcome.passed());
        }
    }

    #[test]
    fn stop_requests_resolve_under_a_fixed_precedence() {
        // Whatever order workers trip their conditions in — violation limit, state
        // limit and time budget all within one level — the resolved reason is fixed.
        for order in [
            [STOP_TIME_BUDGET, STOP_STATE_LIMIT, STOP_VIOLATION_LIMIT],
            [STOP_VIOLATION_LIMIT, STOP_TIME_BUDGET, STOP_STATE_LIMIT],
            [STOP_STATE_LIMIT, STOP_VIOLATION_LIMIT, STOP_TIME_BUDGET],
        ] {
            let cell = StopCell::new();
            for bit in order {
                cell.request(bit);
            }
            assert_eq!(cell.stop_reason(), Some(StopReason::ViolationLimit));
        }
        let cell = StopCell::new();
        cell.request(STOP_TIME_BUDGET);
        cell.request(STOP_STATE_LIMIT);
        assert_eq!(cell.stop_reason(), Some(StopReason::StateLimit));
        cell.request(STOP_FIRST_VIOLATION);
        assert_eq!(cell.stop_reason(), Some(StopReason::FirstViolation));
    }

    #[test]
    #[should_panic(expected = "boom in successor closure")]
    fn pool_worker_panics_propagate_instead_of_hanging() {
        // A wide first level (>= 64 states) forces the persistent pool to run; the
        // poisoned state's successor closure then panics on a worker thread.  The
        // panic must resurface from check_bfs (as it did with the per-level-spawn
        // engine), not leave the coordinator parked forever.
        let m = ModuleId("Wide");
        let spawn = ActionDef::new(
            "Spawn",
            m,
            Granularity::Baseline,
            vec!["a"],
            vec!["a"],
            |s: &Pair| {
                if s.a == 0 {
                    return (1..=100)
                        .map(|i| {
                            ActionInstance::new(
                                format!("Spawn({i})"),
                                Pair {
                                    a: i,
                                    b: 0,
                                    max: 100,
                                },
                            )
                        })
                        .collect();
                }
                if s.a == 42 {
                    panic!("boom in successor closure");
                }
                vec![]
            },
        );
        let spec = Spec::new(
            "wide",
            vec![Pair {
                a: 0,
                b: 0,
                max: 100,
            }],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![spawn])],
            vec![],
        );
        let _ = check_bfs(&spec, &CheckOptions::default().with_workers(4));
    }

    #[test]
    fn parallel_workers_agree_with_sequential() {
        let spec = pair_spec(12, Some((9, 4)));
        let seq = check_bfs(&spec, &CheckOptions::default());
        let par = check_bfs(&spec, &CheckOptions::default().with_workers(4));
        assert_eq!(
            seq.first_violation().unwrap().depth,
            par.first_violation().unwrap().depth
        );
        let full_seq = check_bfs(&pair_spec(12, None), &CheckOptions::default());
        let full_par = check_bfs(
            &pair_spec(12, None),
            &CheckOptions::default().with_workers(4),
        );
        assert_eq!(
            full_seq.stats.distinct_states,
            full_par.stats.distinct_states
        );
    }

    #[test]
    fn sharding_and_batching_knobs_do_not_change_the_search() {
        let spec = pair_spec(14, None);
        let baseline = check_bfs(&spec, &CheckOptions::default());
        for (shards, batch) in [(1, 1), (2, 3), (256, 4096)] {
            for mode in [StoreMode::Full, StoreMode::FingerprintOnly] {
                let outcome = check_bfs(
                    &spec,
                    &CheckOptions::default()
                        .with_workers(3)
                        .with_shards(shards)
                        .with_batch_size(batch)
                        .with_store_mode(mode),
                );
                assert_eq!(
                    outcome.stats.distinct_states,
                    baseline.stats.distinct_states
                );
                assert_eq!(outcome.stats.max_depth, baseline.stats.max_depth);
                assert_eq!(outcome.stop_reason, StopReason::Exhausted);
            }
        }
    }

    #[test]
    fn tiny_memory_budget_spills_but_does_not_change_the_search() {
        // A budget far below the state count must force fingerprint runs (and, in Full
        // mode, frontier levels) onto disk while leaving every reported statistic and
        // the violation identical to the in-RAM run.
        use crate::spill::SpillConfig;
        let spec = pair_spec(40, None);
        // Explicitly in-RAM so the baseline ignores any ambient REMIX_MEM_BUDGET
        // (the CI spill leg sets one for the whole test suite).
        let baseline = check_bfs(
            &spec,
            &CheckOptions::default().with_spill(SpillConfig::in_ram()),
        );
        for mode in [StoreMode::Full, StoreMode::FingerprintOnly] {
            let spilled = check_bfs(
                &spec,
                &CheckOptions::default()
                    .with_store_mode(mode)
                    .with_spill(SpillConfig::in_ram().with_budget_bytes(1 << 10)),
            );
            assert_eq!(
                spilled.stats.distinct_states, baseline.stats.distinct_states,
                "store mode {mode}"
            );
            assert_eq!(spilled.stats.transitions, baseline.stats.transitions);
            assert_eq!(spilled.stats.max_depth, baseline.stats.max_depth);
            assert_eq!(spilled.stop_reason, StopReason::Exhausted);
            assert!(
                spilled.stats.spill.runs_spilled > 0,
                "a 1 KiB budget over {} states must spill: {:?}",
                spilled.stats.distinct_states,
                spilled.stats.spill
            );
            assert!(spilled.stats.spill.disk_probes > 0);
            assert_eq!(
                spilled.stats.spill.frontier_spilled, 0,
                "pair_spec levels are narrower than the minimum spill chunk"
            );
        }
        assert_eq!(
            baseline.stats.spill,
            Default::default(),
            "no budget, no spill activity"
        );
    }

    /// A three-level comb: one root fans out to `width` children, each ticking twice.
    /// Every level after the root is `width` states wide, far past the budgeted chunk.
    fn wide_spec(width: u32) -> Spec<Pair> {
        let m = ModuleId("Wide");
        let spawn = ActionDef::new(
            "Spawn",
            m,
            Granularity::Baseline,
            vec!["a", "b"],
            vec!["a", "b"],
            move |s: &Pair| {
                if s.a == 0 {
                    (1..=width)
                        .map(|i| {
                            ActionInstance::new(
                                format!("Spawn({i})"),
                                Pair {
                                    a: i,
                                    b: 0,
                                    max: width,
                                },
                            )
                        })
                        .collect()
                } else if s.b < 2 {
                    vec![ActionInstance::new(
                        format!("Tick({},{})", s.a, s.b),
                        Pair {
                            b: s.b + 1,
                            ..s.clone()
                        },
                    )]
                } else {
                    vec![]
                }
            },
        );
        Spec::new(
            "wide",
            vec![Pair {
                a: 0,
                b: 0,
                max: width,
            }],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![spawn])],
            vec![],
        )
    }

    #[test]
    fn wide_levels_round_trip_through_the_frontier_queue() {
        use crate::spill::SpillConfig;
        let spec = wide_spec(600);
        let baseline = check_bfs(&spec, &CheckOptions::default());
        assert_eq!(baseline.stats.distinct_states, 1 + 3 * 600);
        for workers in [1, 3] {
            let spilled = check_bfs(
                &spec,
                &CheckOptions::default()
                    .with_workers(workers)
                    .with_spill(SpillConfig::in_ram().with_budget_bytes(1 << 10)),
            );
            assert_eq!(
                spilled.stats.distinct_states, baseline.stats.distinct_states,
                "workers {workers}"
            );
            assert_eq!(spilled.stats.transitions, baseline.stats.transitions);
            assert_eq!(spilled.stats.max_depth, baseline.stats.max_depth);
            assert_eq!(spilled.stop_reason, StopReason::Exhausted);
            assert!(
                spilled.stats.spill.frontier_spilled > 0,
                "600-wide levels exceed the budgeted chunk: {:?}",
                spilled.stats.spill
            );
        }
        // Fingerprint-only frontiers are the sole holders of the live states, so they
        // must stay resident however small the budget is.
        let fp_only = check_bfs(
            &spec,
            &CheckOptions::default()
                .with_store_mode(StoreMode::FingerprintOnly)
                .with_spill(SpillConfig::in_ram().with_budget_bytes(1 << 10)),
        );
        assert_eq!(
            fp_only.stats.distinct_states,
            baseline.stats.distinct_states
        );
        assert_eq!(fp_only.stats.spill.frontier_spilled, 0);
    }

    #[test]
    fn spilled_run_finds_the_same_counterexample() {
        use crate::spill::SpillConfig;
        let spec = pair_spec(30, Some((20, 10)));
        let in_ram = check_bfs(&spec, &CheckOptions::default());
        let spilled = check_bfs(
            &spec,
            &CheckOptions::default().with_spill(SpillConfig::in_ram().with_budget_bytes(512)),
        );
        let (a, b) = (
            in_ram.first_violation().unwrap(),
            spilled.first_violation().unwrap(),
        );
        assert_eq!(a.depth, b.depth);
        assert_eq!(a.trace.last_state(), b.trace.last_state());
        assert_eq!(a.trace.action_labels(), b.trace.action_labels());
        assert!(spilled.stats.spill.spilled());
    }

    #[test]
    fn owner_routing_agrees_with_lock_striping() {
        let spec = pair_spec(14, None);
        let baseline = check_bfs(&spec, &CheckOptions::default());
        for workers in [1, 3] {
            for mode in [StoreMode::Full, StoreMode::FingerprintOnly] {
                let routed = check_bfs(
                    &spec,
                    &CheckOptions::default()
                        .with_workers(workers)
                        .with_store_mode(mode)
                        .with_owner_routing(true),
                );
                assert_eq!(
                    routed.stats.distinct_states, baseline.stats.distinct_states,
                    "workers {workers}, store mode {mode}"
                );
                assert_eq!(routed.stats.transitions, baseline.stats.transitions);
                assert_eq!(routed.stats.max_depth, baseline.stats.max_depth);
                assert_eq!(routed.stop_reason, StopReason::Exhausted);
            }
        }
    }

    #[test]
    fn owner_routing_reports_the_same_minimal_violation() {
        let spec = pair_spec(12, Some((9, 4)));
        let plain = check_bfs(&spec, &CheckOptions::default());
        for workers in [1, 4] {
            let routed = check_bfs(
                &spec,
                &CheckOptions::default()
                    .with_workers(workers)
                    .with_owner_routing(true),
            );
            assert_eq!(
                routed.first_violation().unwrap().depth,
                plain.first_violation().unwrap().depth,
                "workers {workers}"
            );
            assert_eq!(routed.stop_reason, StopReason::FirstViolation);
        }
    }

    #[test]
    fn owner_routing_composes_with_spilling() {
        use crate::spill::SpillConfig;
        let spec = pair_spec(30, None);
        let baseline = check_bfs(&spec, &CheckOptions::default());
        let combined = check_bfs(
            &spec,
            &CheckOptions::default()
                .with_workers(3)
                .with_owner_routing(true)
                .with_spill(SpillConfig::in_ram().with_budget_bytes(1 << 10)),
        );
        assert_eq!(
            combined.stats.distinct_states,
            baseline.stats.distinct_states
        );
        assert_eq!(combined.stats.transitions, baseline.stats.transitions);
        assert_eq!(combined.stats.max_depth, baseline.stats.max_depth);
        assert!(combined.stats.spill.spilled());
    }

    #[test]
    fn per_worker_transitions_sum_to_the_total() {
        let spec = pair_spec(12, None);
        let outcome = check_bfs(&spec, &CheckOptions::default().with_workers(4));
        assert_eq!(outcome.stats.per_worker_transitions.len(), 4);
        assert_eq!(
            outcome.stats.per_worker_transitions.iter().sum::<u64>(),
            outcome.stats.transitions
        );
        assert_eq!(
            outcome.stats.shard_contention.len(),
            CheckOptions::default().shards
        );
    }
}
