//! Breadth-first state-space exploration.
//!
//! BFS is the exploration strategy the paper uses (§4.4): it guarantees that the first
//! violation found for each invariant has minimal depth, which produces short, debuggable
//! counterexample traces.  The frontier of each level can optionally be expanded by
//! several worker threads (TLC's "workers").

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use remix_spec::{Spec, SpecState, Trace};

use crate::fingerprint::{fingerprint, Fingerprint};
use crate::options::{CheckMode, CheckOptions};
use crate::outcome::{CheckOutcome, CheckStats, StopReason, Violation};

/// Bookkeeping for one discovered state.
struct Entry<S> {
    state: Arc<S>,
    parent: Option<Fingerprint>,
    action: String,
    depth: u32,
}

/// Runs breadth-first model checking of `spec` under `options`.
pub fn check_bfs<S: SpecState>(spec: &Spec<S>, options: &CheckOptions) -> CheckOutcome<S> {
    let start = Instant::now();
    let mut seen: HashMap<Fingerprint, Entry<S>> = HashMap::new();
    let mut frontier: Vec<Fingerprint> = Vec::new();
    let mut violations: Vec<Violation<S>> = Vec::new();
    let mut violation_count: usize = 0;
    let mut transitions: u64 = 0;
    let mut max_depth_reached: u32 = 0;
    let mut stop_reason = StopReason::Exhausted;

    let violation_limit = match options.mode {
        CheckMode::FirstViolation => 1,
        CheckMode::Completion { violation_limit } => violation_limit,
    };

    // Seed with the initial states.
    for init in &spec.init {
        let fp = fingerprint(init);
        if seen.contains_key(&fp) {
            continue;
        }
        seen.insert(
            fp,
            Entry { state: Arc::new(init.clone()), parent: None, action: "Init".to_owned(), depth: 0 },
        );
        frontier.push(fp);
        record_violations(
            spec,
            &seen,
            fp,
            options,
            &mut violations,
            &mut violation_count,
        );
    }

    if violation_count >= violation_limit {
        let stats = CheckStats {
            distinct_states: seen.len(),
            transitions,
            max_depth: max_depth_reached,
            elapsed: start.elapsed(),
        };
        return CheckOutcome {
            spec_name: spec.name.clone(),
            stats,
            stop_reason: if matches!(options.mode, CheckMode::FirstViolation) {
                StopReason::FirstViolation
            } else {
                StopReason::ViolationLimit
            },
            violations,
            violation_count,
        };
    }

    'levels: while !frontier.is_empty() {
        // Check resource budgets between levels (and periodically within a level below).
        if let Some(budget) = options.time_budget {
            if start.elapsed() >= budget {
                stop_reason = StopReason::TimeBudget;
                break;
            }
        }

        let level_depth = seen[&frontier[0]].depth;
        if let Some(max_depth) = options.max_depth {
            if level_depth >= max_depth {
                stop_reason = StopReason::DepthBound;
                break;
            }
        }

        // Expand the whole frontier, possibly in parallel.
        let expansions = expand_frontier(spec, &seen, &frontier, options.workers);

        let mut next_frontier: Vec<Fingerprint> = Vec::new();
        for (parent_fp, label, next_state) in expansions {
            transitions += 1;
            let fp = fingerprint(&next_state);
            if seen.contains_key(&fp) {
                continue;
            }
            let depth = seen[&parent_fp].depth + 1;
            max_depth_reached = max_depth_reached.max(depth);
            seen.insert(
                fp,
                Entry { state: Arc::new(next_state), parent: Some(parent_fp), action: label, depth },
            );
            next_frontier.push(fp);

            record_violations(spec, &seen, fp, options, &mut violations, &mut violation_count);
            if violation_count >= violation_limit {
                stop_reason = if matches!(options.mode, CheckMode::FirstViolation) {
                    StopReason::FirstViolation
                } else {
                    StopReason::ViolationLimit
                };
                break 'levels;
            }
            if let Some(max_states) = options.max_states {
                if seen.len() >= max_states {
                    stop_reason = StopReason::StateLimit;
                    break 'levels;
                }
            }
            if transitions % 4096 == 0 {
                if let Some(budget) = options.time_budget {
                    if start.elapsed() >= budget {
                        stop_reason = StopReason::TimeBudget;
                        break 'levels;
                    }
                }
            }
        }
        frontier = next_frontier;
    }

    let stats = CheckStats {
        distinct_states: seen.len(),
        transitions,
        max_depth: max_depth_reached,
        elapsed: start.elapsed(),
    };
    CheckOutcome { spec_name: spec.name.clone(), stats, stop_reason, violations, violation_count }
}

/// Expands every state of the frontier, returning `(parent, action label, next state)`
/// triples.  With more than one worker the frontier is split into chunks and expanded by
/// scoped threads.
fn expand_frontier<S: SpecState>(
    spec: &Spec<S>,
    seen: &HashMap<Fingerprint, Entry<S>>,
    frontier: &[Fingerprint],
    workers: usize,
) -> Vec<(Fingerprint, String, S)> {
    if workers <= 1 || frontier.len() < 64 {
        let mut out = Vec::new();
        for fp in frontier {
            let state = &seen[fp].state;
            for (label, next) in spec.successors(state) {
                out.push((*fp, label, next));
            }
        }
        return out;
    }

    let results: Mutex<Vec<(Fingerprint, String, S)>> = Mutex::new(Vec::new());
    let chunk = frontier.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for piece in frontier.chunks(chunk) {
            let results = &results;
            scope.spawn(move || {
                let mut local = Vec::new();
                for fp in piece {
                    let state = &seen[fp].state;
                    for (label, next) in spec.successors(state) {
                        local.push((*fp, label, next));
                    }
                }
                results.lock().extend(local);
            });
        }
    });
    results.into_inner()
}

/// Evaluates the spec's invariants on the newly discovered state and records violations.
fn record_violations<S: SpecState>(
    spec: &Spec<S>,
    seen: &HashMap<Fingerprint, Entry<S>>,
    fp: Fingerprint,
    options: &CheckOptions,
    violations: &mut Vec<Violation<S>>,
    violation_count: &mut usize,
) {
    let entry = &seen[&fp];
    let violated = spec.violated_invariants(&entry.state);
    if violated.is_empty() {
        return;
    }
    *violation_count += violated.len();
    for inv in violated {
        // Keep a full trace only for the first violation of each invariant, to bound
        // memory in completion mode.
        if violations.iter().any(|v| v.invariant == inv.id) {
            continue;
        }
        let trace = if options.collect_traces {
            reconstruct_trace(seen, fp)
        } else {
            Trace::default()
        };
        violations.push(Violation {
            invariant: inv.id,
            invariant_name: inv.name,
            depth: entry.depth,
            trace,
        });
    }
}

/// Reconstructs the trace from an initial state to `fp` by following parent pointers.
fn reconstruct_trace<S: SpecState>(seen: &HashMap<Fingerprint, Entry<S>>, fp: Fingerprint) -> Trace<S> {
    let mut chain: Vec<&Entry<S>> = Vec::new();
    let mut cursor = Some(fp);
    while let Some(c) = cursor {
        let entry = &seen[&c];
        chain.push(entry);
        cursor = entry.parent;
    }
    chain.reverse();
    let mut trace = Trace::default();
    for entry in chain {
        trace.push(entry.action.clone(), (*entry.state).clone());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_spec::{ActionDef, ActionInstance, Granularity, Invariant, InvariantSource, ModuleId, ModuleSpec};
    use std::collections::BTreeMap;
    use std::time::Duration;

    /// A pair of counters where `b` may only be incremented after `a`, bounded by `max`.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Pair {
        a: u32,
        b: u32,
        max: u32,
    }

    impl SpecState for Pair {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
            let mut m = BTreeMap::new();
            for v in vars {
                match *v {
                    "a" => {
                        m.insert("a".to_owned(), remix_spec::Value::from(self.a));
                    }
                    "b" => {
                        m.insert("b".to_owned(), remix_spec::Value::from(self.b));
                    }
                    _ => {}
                }
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["a", "b"]
        }
    }

    fn pair_spec(max: u32, bad_at: Option<(u32, u32)>) -> Spec<Pair> {
        let m = ModuleId("Pair");
        let inc_a = ActionDef::new("IncA", m, Granularity::Baseline, vec!["a"], vec!["a"], move |s: &Pair| {
            if s.a < s.max {
                vec![ActionInstance::new(format!("IncA({})", s.a), Pair { a: s.a + 1, ..s.clone() })]
            } else {
                vec![]
            }
        });
        let inc_b = ActionDef::new("IncB", m, Granularity::Baseline, vec!["a", "b"], vec!["b"], move |s: &Pair| {
            if s.b < s.a {
                vec![ActionInstance::new(format!("IncB({})", s.b), Pair { b: s.b + 1, ..s.clone() })]
            } else {
                vec![]
            }
        });
        let inv = Invariant::always("NO-BAD", "never reach the bad pair", InvariantSource::Protocol, move |s: &Pair| {
            match bad_at {
                Some((a, b)) => !(s.a == a && s.b == b),
                None => true,
            }
        });
        Spec::new(
            "pair",
            vec![Pair { a: 0, b: 0, max }],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![inc_a, inc_b])],
            vec![inv],
        )
    }

    #[test]
    fn explores_whole_space_when_no_violation() {
        let spec = pair_spec(3, None);
        let outcome = check_bfs(&spec, &CheckOptions::default());
        assert!(outcome.passed());
        assert_eq!(outcome.stop_reason, StopReason::Exhausted);
        // Reachable states are all pairs with b <= a <= 3: 4 + 3 + 2 + 1 = 10.
        assert_eq!(outcome.stats.distinct_states, 10);
        assert_eq!(outcome.stats.max_depth, 6);
    }

    #[test]
    fn finds_minimal_depth_counterexample() {
        let spec = pair_spec(3, Some((2, 1)));
        let outcome = check_bfs(&spec, &CheckOptions::default());
        assert!(!outcome.passed());
        assert_eq!(outcome.stop_reason, StopReason::FirstViolation);
        let v = outcome.first_violation().unwrap();
        // Reaching (2, 1) takes exactly 3 transitions; BFS must not find a longer path.
        assert_eq!(v.depth, 3);
        assert_eq!(v.trace.depth(), 3);
        assert_eq!(v.trace.last_state().unwrap(), &Pair { a: 2, b: 1, max: 3 });
    }

    #[test]
    fn completion_mode_counts_all_violations() {
        // Every state with a == max violates; there are max+1 of them (b ranges 0..=max).
        let m = ModuleId("Pair");
        let spec = {
            let mut s = pair_spec(2, None);
            s.invariants = vec![Invariant::always("A-NOT-MAX", "a below max", InvariantSource::Protocol, |p: &Pair| {
                p.a < p.max
            })];
            let _ = m;
            s
        };
        let outcome = check_bfs(&spec, &CheckOptions::completion());
        assert_eq!(outcome.stop_reason, StopReason::Exhausted);
        assert_eq!(outcome.violation_count, 3);
        // Only one trace is kept per invariant.
        assert_eq!(outcome.violations.len(), 1);
    }

    #[test]
    fn respects_state_limit_and_depth_bound() {
        let spec = pair_spec(10, None);
        let outcome = check_bfs(&spec, &CheckOptions::default().with_max_states(5));
        assert_eq!(outcome.stop_reason, StopReason::StateLimit);
        assert!(outcome.stats.distinct_states >= 5);

        let outcome = check_bfs(&spec, &CheckOptions::default().with_max_depth(2));
        assert_eq!(outcome.stop_reason, StopReason::DepthBound);
        assert!(outcome.stats.max_depth <= 2);
    }

    #[test]
    fn respects_time_budget() {
        let spec = pair_spec(60, None);
        let outcome = check_bfs(&spec, &CheckOptions::default().with_time_budget(Duration::from_millis(0)));
        assert_eq!(outcome.stop_reason, StopReason::TimeBudget);
    }

    #[test]
    fn parallel_workers_agree_with_sequential() {
        let spec = pair_spec(12, Some((9, 4)));
        let seq = check_bfs(&spec, &CheckOptions::default());
        let par = check_bfs(&spec, &CheckOptions::default().with_workers(4));
        assert_eq!(seq.first_violation().unwrap().depth, par.first_violation().unwrap().depth);
        let full_seq = check_bfs(&pair_spec(12, None), &CheckOptions::default());
        let full_par = check_bfs(&pair_spec(12, None), &CheckOptions::default().with_workers(4));
        assert_eq!(full_seq.stats.distinct_states, full_par.stats.distinct_states);
    }
}
