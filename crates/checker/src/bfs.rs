//! Breadth-first state-space exploration.
//!
//! BFS is the exploration strategy the paper uses (§4.4): it guarantees that the first
//! violation found for each invariant has minimal depth, which produces short, debuggable
//! counterexample traces.
//!
//! # Parallel engine
//!
//! Exploration is level-synchronous and scales across [`CheckOptions::workers`] threads:
//!
//! * **Sharded fingerprint set** — the set of discovered states is split into
//!   [`CheckOptions::shards`] lock-striped shards keyed by the leading bits of the state
//!   fingerprint, so concurrent inserts contend only when they hash to the same stripe.
//!   Per-shard contention (lock acquisitions that had to wait) is reported in
//!   [`CheckStats::shard_contention`].
//! * **Per-worker successor buffers** — each worker accumulates successors in local
//!   per-shard buffers and merges a buffer into its shard in one batch of
//!   [`CheckOptions::batch_size`] states (and unconditionally at the level boundary),
//!   amortising one lock acquisition over the whole batch.
//! * **Work stealing** — the frontier of each level is split into one contiguous range
//!   per worker; a worker that drains its range steals the back half of the largest
//!   remaining range, so skewed successor costs cannot leave threads idle.  Range bounds
//!   live in one packed atomic word, so a claim and a steal can never hand the same
//!   index to two workers: every state is expanded exactly once for any worker count.
//!
//! With `workers = 1` the same code runs inline on the calling thread, with no thread
//! spawns and no atomics on the hot path beyond the shard counters, so sequential runs
//! behave exactly like the pre-parallel engine.  Parallel and sequential runs discover
//! the same state space and report the same minimal violation depth (all states of a
//! level share one depth); see the `parallel_matches_sequential_*` regression tests.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use remix_spec::{Spec, SpecState, Trace};

use crate::fingerprint::{fingerprint, Fingerprint};
use crate::options::{CheckMode, CheckOptions};
use crate::outcome::{CheckOutcome, CheckStats, StopReason, Violation};

/// Bookkeeping for one discovered state.
struct Entry<S> {
    state: Arc<S>,
    parent: Option<Fingerprint>,
    action: String,
}

/// One lock stripe of the discovered-state set.
struct Shard<S> {
    map: Mutex<HashMap<Fingerprint, Entry<S>>>,
    /// Number of lock acquisitions on this stripe that found it already held.
    contention: AtomicU64,
}

/// The discovered-state set, lock-striped by fingerprint prefix.
struct ShardedSeen<S> {
    shards: Vec<Shard<S>>,
    /// `shards.len() - 1`; shard count is always a power of two.
    mask: usize,
    /// Right-shift that extracts the stripe index from the fingerprint's leading bits.
    shift: u32,
    /// Total number of states inserted across all shards.
    len: AtomicUsize,
}

impl<S> ShardedSeen<S> {
    fn new(requested_shards: usize) -> Self {
        let n = requested_shards.max(1).next_power_of_two();
        let bits = n.trailing_zeros();
        ShardedSeen {
            shards: (0..n)
                .map(|_| Shard {
                    map: Mutex::new(HashMap::new()),
                    contention: AtomicU64::new(0),
                })
                .collect(),
            mask: n - 1,
            // `% 64` keeps the single-shard case (bits = 0) well-defined; the mask then
            // collapses every index to zero anyway.
            shift: (64 - bits) % 64,
            len: AtomicUsize::new(0),
        }
    }

    fn shard_index(&self, fp: Fingerprint) -> usize {
        ((fp.0 >> self.shift) as usize) & self.mask
    }

    /// Locks one stripe, counting the acquisition as contended when it had to wait.
    fn lock_shard(&self, index: usize) -> MutexGuard<'_, HashMap<Fingerprint, Entry<S>>> {
        let shard = &self.shards[index];
        match shard.map.try_lock() {
            Ok(guard) => guard,
            Err(std::sync::TryLockError::WouldBlock) => {
                shard.contention.fetch_add(1, Ordering::Relaxed);
                shard.map.lock().unwrap_or_else(PoisonError::into_inner)
            }
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
        }
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    fn contention_counters(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.contention.load(Ordering::Relaxed))
            .collect()
    }

    /// Looks up one entry, mapping it through `f` under the stripe lock.
    fn with_entry<T>(&self, fp: Fingerprint, f: impl FnOnce(&Entry<S>) -> T) -> Option<T> {
        let guard = self.lock_shard(self.shard_index(fp));
        guard.get(&fp).map(f)
    }
}

/// Why workers were asked to stop, packed into an atomic for cross-thread signalling.
struct StopCell {
    reason: AtomicU8,
}

const STOP_NONE: u8 = 0;
const STOP_FIRST_VIOLATION: u8 = 1;
const STOP_VIOLATION_LIMIT: u8 = 2;
const STOP_TIME_BUDGET: u8 = 3;
const STOP_STATE_LIMIT: u8 = 4;

impl StopCell {
    fn new() -> Self {
        StopCell {
            reason: AtomicU8::new(STOP_NONE),
        }
    }

    /// Requests a stop; the first reason to arrive wins.
    fn request(&self, reason: u8) {
        let _ =
            self.reason
                .compare_exchange(STOP_NONE, reason, Ordering::AcqRel, Ordering::Relaxed);
    }

    fn requested(&self) -> bool {
        self.reason.load(Ordering::Acquire) != STOP_NONE
    }

    fn stop_reason(&self) -> Option<StopReason> {
        match self.reason.load(Ordering::Acquire) {
            STOP_FIRST_VIOLATION => Some(StopReason::FirstViolation),
            STOP_VIOLATION_LIMIT => Some(StopReason::ViolationLimit),
            STOP_TIME_BUDGET => Some(StopReason::TimeBudget),
            STOP_STATE_LIMIT => Some(StopReason::StateLimit),
            _ => None,
        }
    }
}

/// One worker's slice of the frontier, stealable by other workers.
///
/// `next` and `end` are packed into one 64-bit word (32 bits each) so that claims and
/// steals are single compare-exchange operations on the same atomic: an index can never
/// be handed to both its owner and a thief, which keeps transition counts — not just the
/// explored state set — identical across worker counts.  Frontier levels are bounded far
/// below `u32::MAX` by the configuration's budgets.
struct StealRange {
    packed: AtomicU64,
}

fn pack(next: usize, end: usize) -> u64 {
    debug_assert!(next <= u32::MAX as usize && end <= u32::MAX as usize);
    ((next as u64) << 32) | end as u64
}

fn unpack(word: u64) -> (usize, usize) {
    ((word >> 32) as usize, (word & 0xffff_ffff) as usize)
}

impl StealRange {
    fn new(start: usize, end: usize) -> Self {
        StealRange {
            packed: AtomicU64::new(pack(start, end)),
        }
    }

    /// Claims the next index of this range, if any remains.
    fn claim(&self) -> Option<usize> {
        let mut word = self.packed.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(word);
            if next >= end {
                return None;
            }
            match self.packed.compare_exchange_weak(
                word,
                pack(next + 1, end),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(next),
                Err(current) => word = current,
            }
        }
    }

    fn remaining(&self) -> usize {
        let (next, end) = unpack(self.packed.load(Ordering::Acquire));
        end.saturating_sub(next)
    }

    /// Tries to steal the back half of this range, returning the stolen bounds.
    fn steal_half(&self) -> Option<(usize, usize)> {
        let mut word = self.packed.load(Ordering::Acquire);
        loop {
            let (next, end) = unpack(word);
            if end.saturating_sub(next) < 2 {
                return None;
            }
            let mid = next + (end - next) / 2;
            match self.packed.compare_exchange_weak(
                word,
                pack(next, mid),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some((mid, end)),
                Err(current) => word = current,
            }
        }
    }
}

/// A violation observed by a worker, resolved into a [`Violation`] (with trace) after the
/// level completes.
struct PendingViolation {
    fp: Fingerprint,
    depth: u32,
    invariant: &'static str,
    invariant_name: &'static str,
}

/// Everything one worker produced while expanding (part of) one level.
struct WorkerLevelResult<S> {
    next_frontier: Vec<(Fingerprint, Arc<S>)>,
    transitions: u64,
    violations: Vec<PendingViolation>,
}

/// Shared, read-only context for the workers of one level.
struct LevelContext<'a, S> {
    spec: &'a Spec<S>,
    seen: &'a ShardedSeen<S>,
    frontier: &'a [(Fingerprint, Arc<S>)],
    ranges: &'a [StealRange],
    stop: &'a StopCell,
    violation_count: &'a AtomicUsize,
    violation_limit: usize,
    violation_stop: u8,
    child_depth: u32,
    batch_size: usize,
    max_states: Option<usize>,
    deadline: Option<Instant>,
}

/// Runs breadth-first model checking of `spec` under `options`.
pub fn check_bfs<S: SpecState>(spec: &Spec<S>, options: &CheckOptions) -> CheckOutcome<S> {
    let start = Instant::now();
    let workers = options.workers.max(1);
    let seen: ShardedSeen<S> = ShardedSeen::new(options.shards);
    let stop = StopCell::new();
    let violation_count = AtomicUsize::new(0);
    let mut violations: Vec<Violation<S>> = Vec::new();
    let mut per_worker_transitions = vec![0u64; workers];
    let mut max_depth_reached: u32 = 0;
    let mut stop_reason = StopReason::Exhausted;

    let (violation_limit, violation_stop) = match options.mode {
        CheckMode::FirstViolation => (1, STOP_FIRST_VIOLATION),
        CheckMode::Completion { violation_limit } => (violation_limit, STOP_VIOLATION_LIMIT),
    };
    let deadline = options.time_budget.map(|b| start + b);

    // Seed the set with the initial states (depth 0), checking invariants on each.
    let mut frontier: Vec<(Fingerprint, Arc<S>)> = Vec::new();
    let mut pending: Vec<PendingViolation> = Vec::new();
    for init in &spec.init {
        let fp = fingerprint(init);
        let state = Arc::new(init.clone());
        let mut shard = seen.lock_shard(seen.shard_index(fp));
        if shard.contains_key(&fp) {
            continue;
        }
        shard.insert(
            fp,
            Entry {
                state: Arc::clone(&state),
                parent: None,
                action: "Init".to_owned(),
            },
        );
        drop(shard);
        seen.len.fetch_add(1, Ordering::Relaxed);
        frontier.push((fp, Arc::clone(&state)));
        let violated = spec.violated_invariants(&state);
        if !violated.is_empty() {
            let total =
                violation_count.fetch_add(violated.len(), Ordering::AcqRel) + violated.len();
            for inv in violated {
                pending.push(PendingViolation {
                    fp,
                    depth: 0,
                    invariant: inv.id,
                    invariant_name: inv.name,
                });
            }
            if total >= violation_limit {
                stop.request(violation_stop);
            }
        }
    }
    resolve_violations(&seen, options, pending, &mut violations);
    if let Some(reason) = stop.stop_reason() {
        let stats = stats_from(&seen, &per_worker_transitions, max_depth_reached, start);
        return CheckOutcome {
            spec_name: spec.name.clone(),
            stats,
            stop_reason: reason,
            violations,
            violation_count: violation_count.load(Ordering::Acquire),
        };
    }

    let mut level_depth: u32 = 0;
    while !frontier.is_empty() {
        // Check resource budgets between levels (workers also check them within a level).
        if let Some(budget) = options.time_budget {
            if start.elapsed() >= budget {
                stop_reason = StopReason::TimeBudget;
                break;
            }
        }
        if let Some(max_depth) = options.max_depth {
            if level_depth >= max_depth {
                stop_reason = StopReason::DepthBound;
                break;
            }
        }

        // Small frontiers are not worth the thread spawns; expand them inline.
        let effective_workers = if frontier.len() < 64 { 1 } else { workers };
        let ranges = split_frontier(frontier.len(), effective_workers);
        let ctx = LevelContext {
            spec,
            seen: &seen,
            frontier: &frontier,
            ranges: &ranges,
            stop: &stop,
            violation_count: &violation_count,
            violation_limit,
            violation_stop,
            child_depth: level_depth + 1,
            batch_size: options.batch_size.max(1),
            max_states: options.max_states,
            deadline,
        };

        let mut results: Vec<(usize, WorkerLevelResult<S>)> = Vec::with_capacity(effective_workers);
        if effective_workers == 1 {
            results.push((0, expand_range(&ctx, 0)));
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..effective_workers)
                    .map(|w| {
                        let ctx = &ctx;
                        scope.spawn(move || expand_range(ctx, w))
                    })
                    .collect();
                for (w, handle) in handles.into_iter().enumerate() {
                    results.push((w, handle.join().expect("worker panicked")));
                }
            });
        }

        // Batch-merge the per-worker results at the level boundary.
        let mut next_frontier: Vec<(Fingerprint, Arc<S>)> = Vec::new();
        let mut pending: Vec<PendingViolation> = Vec::new();
        for (w, result) in results {
            per_worker_transitions[w] += result.transitions;
            next_frontier.extend(result.next_frontier);
            pending.extend(result.violations);
        }
        resolve_violations(&seen, options, pending, &mut violations);
        if !next_frontier.is_empty() {
            max_depth_reached = max_depth_reached.max(level_depth + 1);
        }
        if let Some(reason) = stop.stop_reason() {
            stop_reason = reason;
            break;
        }
        frontier = next_frontier;
        level_depth += 1;
    }

    let stats = stats_from(&seen, &per_worker_transitions, max_depth_reached, start);
    CheckOutcome {
        spec_name: spec.name.clone(),
        stats,
        stop_reason,
        violations,
        violation_count: violation_count.load(Ordering::Acquire),
    }
}

/// Splits `len` frontier slots into one contiguous [`StealRange`] per worker.
fn split_frontier(len: usize, workers: usize) -> Vec<StealRange> {
    let chunk = len.div_ceil(workers);
    (0..workers)
        .map(|w| {
            let start = (w * chunk).min(len);
            let end = ((w + 1) * chunk).min(len);
            StealRange::new(start, end)
        })
        .collect()
}

/// The worker loop: claims frontier indices (own range first, then stolen halves),
/// expands each state, and buffers successors per shard, flushing in batches.
fn expand_range<S: SpecState>(ctx: &LevelContext<'_, S>, worker: usize) -> WorkerLevelResult<S> {
    let mut result = WorkerLevelResult {
        next_frontier: Vec::new(),
        transitions: 0,
        violations: Vec::new(),
    };
    let shard_count = ctx.seen.shards.len();
    let mut buffers: Vec<Vec<(Fingerprint, Fingerprint, String, S)>> =
        (0..shard_count).map(|_| Vec::new()).collect();
    let mut stolen: Option<StealRange> = None;
    let mut processed: u64 = 0;

    'claim: loop {
        if ctx.stop.requested() {
            break;
        }
        // Claim from the stolen range first (it was taken to be worked on), then from the
        // worker's own range, then steal from the largest remaining range.
        let idx = loop {
            if let Some(range) = &stolen {
                if let Some(idx) = range.claim() {
                    break idx;
                }
                stolen = None;
            }
            if let Some(idx) = ctx.ranges[worker].claim() {
                break idx;
            }
            let victim = ctx
                .ranges
                .iter()
                .enumerate()
                .filter(|(v, _)| *v != worker)
                .max_by_key(|(_, r)| r.remaining())
                .filter(|(_, r)| r.remaining() >= 2);
            let Some((_, victim)) = victim else {
                // No range anywhere holds stealable work: the level is drained.
                break 'claim;
            };
            match victim.steal_half() {
                Some((start, end)) => stolen = Some(StealRange::new(start, end)),
                // Lost the race to the victim's owner (or another thief); other ranges
                // may still hold work, so rescan rather than leaving this worker idle
                // for the rest of the level.
                None => continue,
            }
        };

        let (parent_fp, state) = &ctx.frontier[idx];
        for (label, next) in ctx.spec.successors(state) {
            result.transitions += 1;
            let fp = fingerprint(&next);
            let shard = ctx.seen.shard_index(fp);
            buffers[shard].push((fp, *parent_fp, label, next));
            if buffers[shard].len() >= ctx.batch_size {
                flush_shard(ctx, shard, &mut buffers[shard], &mut result);
            }
        }

        processed += 1;
        if processed % 64 == 0 {
            if let Some(deadline) = ctx.deadline {
                if Instant::now() >= deadline {
                    ctx.stop.request(STOP_TIME_BUDGET);
                }
            }
        }
    }

    // Merge whatever is still buffered at the level boundary — unless a stop was
    // requested, in which case exploration is being aborted anyway and merging the
    // leftovers would only push `distinct_states` further past the stop condition (the
    // pre-parallel engine likewise broke out without expanding the rest of the level).
    if !ctx.stop.requested() {
        for shard in 0..shard_count {
            if !buffers[shard].is_empty() {
                flush_shard(ctx, shard, &mut buffers[shard], &mut result);
            }
        }
    }
    result
}

/// Merges one per-worker buffer into its shard under a single lock acquisition, then
/// (outside the lock) checks invariants on the states that were actually new.
fn flush_shard<S: SpecState>(
    ctx: &LevelContext<'_, S>,
    shard: usize,
    buffer: &mut Vec<(Fingerprint, Fingerprint, String, S)>,
    result: &mut WorkerLevelResult<S>,
) {
    let mut fresh: Vec<(Fingerprint, Arc<S>)> = Vec::new();
    {
        let mut map = ctx.seen.lock_shard(shard);
        for (fp, parent, action, state) in buffer.drain(..) {
            if let std::collections::hash_map::Entry::Vacant(slot) = map.entry(fp) {
                let state = Arc::new(state);
                slot.insert(Entry {
                    state: Arc::clone(&state),
                    parent: Some(parent),
                    action,
                });
                fresh.push((fp, state));
            }
        }
    }
    for (fp, state) in fresh {
        let total_states = ctx.seen.len.fetch_add(1, Ordering::AcqRel) + 1;
        if let Some(max_states) = ctx.max_states {
            if total_states >= max_states {
                ctx.stop.request(STOP_STATE_LIMIT);
            }
        }
        let violated = ctx.spec.violated_invariants(&state);
        if !violated.is_empty() {
            let total = ctx
                .violation_count
                .fetch_add(violated.len(), Ordering::AcqRel)
                + violated.len();
            for inv in violated {
                result.violations.push(PendingViolation {
                    fp,
                    depth: ctx.child_depth,
                    invariant: inv.id,
                    invariant_name: inv.name,
                });
            }
            if total >= ctx.violation_limit {
                ctx.stop.request(ctx.violation_stop);
            }
        }
        result.next_frontier.push((fp, state));
    }
}

/// Turns pending worker-side violation records into [`Violation`]s with reconstructed
/// traces, keeping (as before) only the first recorded violation of each invariant.
fn resolve_violations<S: SpecState>(
    seen: &ShardedSeen<S>,
    options: &CheckOptions,
    mut pending: Vec<PendingViolation>,
    violations: &mut Vec<Violation<S>>,
) {
    // Sort so the representative chosen for each invariant does not depend on worker
    // scheduling: lowest depth first, ties broken by fingerprint.
    pending.sort_by_key(|p| (p.depth, p.invariant, p.fp));
    for p in pending {
        if violations.iter().any(|v| v.invariant == p.invariant) {
            continue;
        }
        let trace = if options.collect_traces {
            reconstruct_trace(seen, p.fp)
        } else {
            Trace::default()
        };
        violations.push(Violation {
            invariant: p.invariant,
            invariant_name: p.invariant_name,
            depth: p.depth,
            trace,
        });
    }
}

fn stats_from<S>(
    seen: &ShardedSeen<S>,
    per_worker_transitions: &[u64],
    max_depth: u32,
    start: Instant,
) -> CheckStats {
    CheckStats {
        distinct_states: seen.len(),
        transitions: per_worker_transitions.iter().sum(),
        max_depth,
        elapsed: start.elapsed(),
        per_worker_transitions: per_worker_transitions.to_vec(),
        shard_contention: seen.contention_counters(),
    }
}

/// Reconstructs the trace from an initial state to `fp` by following parent pointers.
fn reconstruct_trace<S: SpecState>(seen: &ShardedSeen<S>, fp: Fingerprint) -> Trace<S> {
    let mut chain: Vec<(String, Arc<S>)> = Vec::new();
    let mut cursor = Some(fp);
    while let Some(c) = cursor {
        let (action, state, parent) = seen
            .with_entry(c, |e| (e.action.clone(), Arc::clone(&e.state), e.parent))
            .expect("trace parent chain is complete");
        chain.push((action, state));
        cursor = parent;
    }
    chain.reverse();
    let mut trace = Trace::default();
    for (action, state) in chain {
        trace.push(action, (*state).clone());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_spec::{
        ActionDef, ActionInstance, Granularity, Invariant, InvariantSource, ModuleId, ModuleSpec,
    };
    use std::collections::BTreeMap;
    use std::time::Duration;

    /// A pair of counters where `b` may only be incremented after `a`, bounded by `max`.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Pair {
        a: u32,
        b: u32,
        max: u32,
    }

    impl SpecState for Pair {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
            let mut m = BTreeMap::new();
            for v in vars {
                match *v {
                    "a" => {
                        m.insert("a".to_owned(), remix_spec::Value::from(self.a));
                    }
                    "b" => {
                        m.insert("b".to_owned(), remix_spec::Value::from(self.b));
                    }
                    _ => {}
                }
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["a", "b"]
        }
    }

    fn pair_spec(max: u32, bad_at: Option<(u32, u32)>) -> Spec<Pair> {
        let m = ModuleId("Pair");
        let inc_a = ActionDef::new(
            "IncA",
            m,
            Granularity::Baseline,
            vec!["a"],
            vec!["a"],
            move |s: &Pair| {
                if s.a < s.max {
                    vec![ActionInstance::new(
                        format!("IncA({})", s.a),
                        Pair {
                            a: s.a + 1,
                            ..s.clone()
                        },
                    )]
                } else {
                    vec![]
                }
            },
        );
        let inc_b = ActionDef::new(
            "IncB",
            m,
            Granularity::Baseline,
            vec!["a", "b"],
            vec!["b"],
            move |s: &Pair| {
                if s.b < s.a {
                    vec![ActionInstance::new(
                        format!("IncB({})", s.b),
                        Pair {
                            b: s.b + 1,
                            ..s.clone()
                        },
                    )]
                } else {
                    vec![]
                }
            },
        );
        let inv = Invariant::always(
            "NO-BAD",
            "never reach the bad pair",
            InvariantSource::Protocol,
            move |s: &Pair| match bad_at {
                Some((a, b)) => !(s.a == a && s.b == b),
                None => true,
            },
        );
        Spec::new(
            "pair",
            vec![Pair { a: 0, b: 0, max }],
            vec![ModuleSpec::new(
                m,
                Granularity::Baseline,
                vec![inc_a, inc_b],
            )],
            vec![inv],
        )
    }

    #[test]
    fn explores_whole_space_when_no_violation() {
        let spec = pair_spec(3, None);
        let outcome = check_bfs(&spec, &CheckOptions::default());
        assert!(outcome.passed());
        assert_eq!(outcome.stop_reason, StopReason::Exhausted);
        // Reachable states are all pairs with b <= a <= 3: 4 + 3 + 2 + 1 = 10.
        assert_eq!(outcome.stats.distinct_states, 10);
        assert_eq!(outcome.stats.max_depth, 6);
    }

    #[test]
    fn finds_minimal_depth_counterexample() {
        let spec = pair_spec(3, Some((2, 1)));
        let outcome = check_bfs(&spec, &CheckOptions::default());
        assert!(!outcome.passed());
        assert_eq!(outcome.stop_reason, StopReason::FirstViolation);
        let v = outcome.first_violation().unwrap();
        // Reaching (2, 1) takes exactly 3 transitions; BFS must not find a longer path.
        assert_eq!(v.depth, 3);
        assert_eq!(v.trace.depth(), 3);
        assert_eq!(v.trace.last_state().unwrap(), &Pair { a: 2, b: 1, max: 3 });
    }

    #[test]
    fn completion_mode_counts_all_violations() {
        // Every state with a == max violates; there are max+1 of them (b ranges 0..=max).
        let m = ModuleId("Pair");
        let spec = {
            let mut s = pair_spec(2, None);
            s.invariants = vec![Invariant::always(
                "A-NOT-MAX",
                "a below max",
                InvariantSource::Protocol,
                |p: &Pair| p.a < p.max,
            )];
            let _ = m;
            s
        };
        let outcome = check_bfs(&spec, &CheckOptions::completion());
        assert_eq!(outcome.stop_reason, StopReason::Exhausted);
        assert_eq!(outcome.violation_count, 3);
        // Only one trace is kept per invariant.
        assert_eq!(outcome.violations.len(), 1);
    }

    #[test]
    fn respects_state_limit_and_depth_bound() {
        let spec = pair_spec(10, None);
        let outcome = check_bfs(&spec, &CheckOptions::default().with_max_states(5));
        assert_eq!(outcome.stop_reason, StopReason::StateLimit);
        assert!(outcome.stats.distinct_states >= 5);

        let outcome = check_bfs(&spec, &CheckOptions::default().with_max_depth(2));
        assert_eq!(outcome.stop_reason, StopReason::DepthBound);
        assert!(outcome.stats.max_depth <= 2);
    }

    #[test]
    fn respects_time_budget() {
        let spec = pair_spec(60, None);
        let outcome = check_bfs(
            &spec,
            &CheckOptions::default().with_time_budget(Duration::from_millis(0)),
        );
        assert_eq!(outcome.stop_reason, StopReason::TimeBudget);
    }

    #[test]
    fn parallel_workers_agree_with_sequential() {
        let spec = pair_spec(12, Some((9, 4)));
        let seq = check_bfs(&spec, &CheckOptions::default());
        let par = check_bfs(&spec, &CheckOptions::default().with_workers(4));
        assert_eq!(
            seq.first_violation().unwrap().depth,
            par.first_violation().unwrap().depth
        );
        let full_seq = check_bfs(&pair_spec(12, None), &CheckOptions::default());
        let full_par = check_bfs(
            &pair_spec(12, None),
            &CheckOptions::default().with_workers(4),
        );
        assert_eq!(
            full_seq.stats.distinct_states,
            full_par.stats.distinct_states
        );
    }

    #[test]
    fn sharding_and_batching_knobs_do_not_change_the_search() {
        let spec = pair_spec(14, None);
        let baseline = check_bfs(&spec, &CheckOptions::default());
        for (shards, batch) in [(1, 1), (2, 3), (256, 4096)] {
            let outcome = check_bfs(
                &spec,
                &CheckOptions::default()
                    .with_workers(3)
                    .with_shards(shards)
                    .with_batch_size(batch),
            );
            assert_eq!(
                outcome.stats.distinct_states,
                baseline.stats.distinct_states
            );
            assert_eq!(outcome.stats.max_depth, baseline.stats.max_depth);
            assert_eq!(outcome.stop_reason, StopReason::Exhausted);
        }
    }

    #[test]
    fn per_worker_transitions_sum_to_the_total() {
        let spec = pair_spec(12, None);
        let outcome = check_bfs(&spec, &CheckOptions::default().with_workers(4));
        assert_eq!(outcome.stats.per_worker_transitions.len(), 4);
        assert_eq!(
            outcome.stats.per_worker_transitions.iter().sum::<u64>(),
            outcome.stats.transitions
        );
        assert_eq!(
            outcome.stats.shard_contention.len(),
            CheckOptions::default().shards
        );
    }
}
