//! State fingerprinting.
//!
//! TLC stores 64-bit fingerprints of states rather than the states themselves.  We keep
//! full states (needed for trace reconstruction) but index them by a 128-bit fingerprint
//! computed from two independently seeded hashers, which makes accidental collisions
//! negligible at the state counts this reproduction reaches.

use std::hash::{Hash, Hasher};

/// A 128-bit state fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

/// Computes the fingerprint of a hashable state.
pub fn fingerprint<S: Hash>(state: &S) -> Fingerprint {
    // Two fixed-key SipHash instances; `DefaultHasher::new()` is deterministic within a
    // process but we additionally perturb the second hasher so the halves are independent.
    let mut h1 = std::collections::hash_map::DefaultHasher::new();
    state.hash(&mut h1);
    let a = h1.finish();

    let mut h2 = std::collections::hash_map::DefaultHasher::new();
    0xa5a5_5a5a_dead_beefu64.hash(&mut h2);
    state.hash(&mut h2);
    let b = h2.finish();

    Fingerprint(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_states_have_equal_fingerprints() {
        let a = (1u32, vec![1, 2, 3]);
        let b = (1u32, vec![1, 2, 3]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn different_states_have_different_fingerprints() {
        // Not guaranteed in general, but these simple cases must differ.
        assert_ne!(fingerprint(&1u32), fingerprint(&2u32));
        assert_ne!(fingerprint(&vec![1, 2]), fingerprint(&vec![2, 1]));
    }

    #[test]
    fn halves_are_independent() {
        let fp = fingerprint(&42u64);
        assert_ne!(fp.0, fp.1);
    }
}
