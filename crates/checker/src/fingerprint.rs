//! State fingerprinting.
//!
//! TLC stores 64-bit fingerprints of states rather than the states themselves.  This
//! checker indexes states by a **128-bit** fingerprint so that the fingerprint-only
//! store ([`crate::store::StoreMode::FingerprintOnly`]) can drop full states without
//! making accidental collisions a practical concern at the state counts this
//! reproduction reaches.
//!
//! The 128 bits are produced by a [`PairHasher`]: two SipHash-1-3 instances keyed with
//! **genuinely distinct fixed 128-bit keys**, both fed from a *single* traversal of the
//! state's [`Hash`] implementation.  Distinct keys matter: an earlier implementation ran
//! two identically keyed hashers and merely prefixed a constant into the second, which
//! correlates the halves (both were the same permutation walked from related starting
//! points) — a collision of the first half then made a collision of the second far more
//! likely than 2^-64, silently eroding the 128-bit guarantee the store relies on.  With
//! independent keys the halves behave as two independent PRFs of the same input, and the
//! single traversal halves the hashing cost of the old double-hash scheme.

use std::hash::{Hash, Hasher};

/// A 128-bit state fingerprint: two halves from independently keyed hashers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64, pub u64);

/// One SipHash-1-3 state (the variant `DefaultHasher` uses: 1 compression round per
/// message block, 3 finalization rounds), keyed explicitly.
#[derive(Clone, Copy)]
struct Sip13 {
    v0: u64,
    v1: u64,
    v2: u64,
    v3: u64,
}

#[inline]
fn sip_round(v0: &mut u64, v1: &mut u64, v2: &mut u64, v3: &mut u64) {
    *v0 = v0.wrapping_add(*v1);
    *v1 = v1.rotate_left(13);
    *v1 ^= *v0;
    *v0 = v0.rotate_left(32);
    *v2 = v2.wrapping_add(*v3);
    *v3 = v3.rotate_left(16);
    *v3 ^= *v2;
    *v0 = v0.wrapping_add(*v3);
    *v3 = v3.rotate_left(21);
    *v3 ^= *v0;
    *v2 = v2.wrapping_add(*v1);
    *v1 = v1.rotate_left(17);
    *v1 ^= *v2;
    *v2 = v2.rotate_left(32);
}

impl Sip13 {
    #[inline]
    fn new(k0: u64, k1: u64) -> Self {
        Sip13 {
            v0: k0 ^ 0x736f_6d65_7073_6575,
            v1: k1 ^ 0x646f_7261_6e64_6f6d,
            v2: k0 ^ 0x6c79_6765_6e65_7261,
            v3: k1 ^ 0x7465_6462_7974_6573,
        }
    }

    #[inline]
    fn compress(&mut self, block: u64) {
        self.v3 ^= block;
        sip_round(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        self.v0 ^= block;
    }

    #[inline]
    fn finish(mut self, tail_block: u64) -> u64 {
        self.compress(tail_block);
        self.v2 ^= 0xff;
        for _ in 0..3 {
            sip_round(&mut self.v0, &mut self.v1, &mut self.v2, &mut self.v3);
        }
        self.v0 ^ self.v1 ^ self.v2 ^ self.v3
    }
}

/// The first hasher's fixed 128-bit key.
const KEY_A: (u64, u64) = (0x9e37_79b9_7f4a_7c15, 0xf39c_c060_5ced_c834);
/// The second hasher's fixed 128-bit key — unrelated to [`KEY_A`] (not a constant
/// offset, not a prefix perturbation of the same key).
const KEY_B: (u64, u64) = (0x1082_276b_f3a2_7251, 0x7109_88c0_bb3c_d9e2);

/// A [`Hasher`] driving two distinctly keyed SipHash-1-3 states from one input stream.
///
/// One call to `state.hash(&mut PairHasher)` — a single traversal of the state — yields
/// the full 128-bit [`Fingerprint`] via [`PairHasher::finish128`].
pub struct PairHasher {
    a: Sip13,
    b: Sip13,
    /// Pending input bytes not yet forming a full 8-byte block (little-endian, low
    /// `pending_len` bytes valid).
    pending: u64,
    pending_len: usize,
    /// Total bytes written (folded into the final block, as in SipHash proper).
    written: u64,
}

impl Default for PairHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl PairHasher {
    /// Creates the hasher pair with the module's fixed, distinct keys.
    pub fn new() -> Self {
        PairHasher {
            a: Sip13::new(KEY_A.0, KEY_A.1),
            b: Sip13::new(KEY_B.0, KEY_B.1),
            pending: 0,
            pending_len: 0,
            written: 0,
        }
    }

    #[inline]
    fn compress(&mut self, block: u64) {
        self.a.compress(block);
        self.b.compress(block);
    }

    /// Finalizes both hashers, producing the 128-bit fingerprint.
    pub fn finish128(&self) -> Fingerprint {
        // SipHash's final block: the pending tail bytes with the input length in the
        // top byte, so streams of different lengths can never share a final block.
        let tail = self.pending | (self.written << 56);
        Fingerprint(self.a.finish(tail), self.b.finish(tail))
    }
}

impl Hasher for PairHasher {
    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        self.written = self.written.wrapping_add(bytes.len() as u64);
        // Fill the pending block first.
        if self.pending_len > 0 {
            let need = 8 - self.pending_len;
            let take = need.min(bytes.len());
            for (i, &byte) in bytes[..take].iter().enumerate() {
                self.pending |= (byte as u64) << (8 * (self.pending_len + i));
            }
            self.pending_len += take;
            bytes = &bytes[take..];
            if self.pending_len == 8 {
                let block = self.pending;
                self.compress(block);
                self.pending = 0;
                self.pending_len = 0;
            } else {
                return;
            }
        }
        // Whole blocks.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let block = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.compress(block);
        }
        // Remainder becomes the new pending tail.
        for (i, &byte) in chunks.remainder().iter().enumerate() {
            self.pending |= (byte as u64) << (8 * i);
        }
        self.pending_len = chunks.remainder().len();
    }

    #[inline]
    fn write_u64(&mut self, value: u64) {
        // The common case for integer-heavy states: feed the block directly when
        // aligned, without staging through the byte buffer.
        if self.pending_len == 0 {
            self.written = self.written.wrapping_add(8);
            self.compress(value);
        } else {
            self.write(&value.to_le_bytes());
        }
    }

    #[inline]
    fn write_u8(&mut self, value: u8) {
        self.write(&[value]);
    }

    #[inline]
    fn write_u32(&mut self, value: u32) {
        self.write(&value.to_le_bytes());
    }

    #[inline]
    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// The first half of the fingerprint (the full 128 bits come from
    /// [`PairHasher::finish128`]).
    fn finish(&self) -> u64 {
        self.finish128().0
    }
}

/// Computes the 128-bit fingerprint of a hashable state in a single traversal.
pub fn fingerprint<S: Hash + ?Sized>(state: &S) -> Fingerprint {
    let mut hasher = PairHasher::new();
    state.hash(&mut hasher);
    hasher.finish128()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_states_have_equal_fingerprints() {
        let a = (1u32, vec![1, 2, 3]);
        let b = (1u32, vec![1, 2, 3]);
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn different_states_have_different_fingerprints() {
        // Not guaranteed in general, but these simple cases must differ.
        assert_ne!(fingerprint(&1u32), fingerprint(&2u32));
        assert_ne!(fingerprint(&vec![1, 2]), fingerprint(&vec![2, 1]));
    }

    #[test]
    fn halves_come_from_distinct_keys() {
        // With identically keyed hashers the halves would be equal for every input;
        // with the old prefix-perturbation scheme they were correlated.  Sanity-check
        // that the halves differ and that neither tracks the other across inputs.
        let mut xor_constant = true;
        let mut prev: Option<Fingerprint> = None;
        for i in 0..64u64 {
            let fp = fingerprint(&i);
            assert_ne!(fp.0, fp.1, "halves must not coincide (input {i})");
            if let Some(p) = prev {
                if fp.0 ^ fp.1 != p.0 ^ p.1 {
                    xor_constant = false;
                }
            }
            prev = Some(fp);
        }
        assert!(!xor_constant, "halves must not differ by a constant mask");
    }

    #[test]
    fn byte_stream_chunking_does_not_change_the_fingerprint() {
        // The same logical byte stream must fingerprint identically however `write` is
        // chunked — mixed-size writes exercise the pending-block stitching.
        let bytes: Vec<u8> = (0..37u8).collect();
        let mut one = PairHasher::new();
        one.write(&bytes);
        let mut split = PairHasher::new();
        split.write(&bytes[..3]);
        split.write(&bytes[3..20]);
        split.write(&bytes[20..21]);
        split.write(&bytes[21..]);
        assert_eq!(one.finish128(), split.finish128());
        assert_eq!(one.finish(), one.finish128().0);
    }

    #[test]
    fn length_is_part_of_the_fingerprint() {
        let mut a = PairHasher::new();
        a.write(&[0, 0]);
        let mut b = PairHasher::new();
        b.write(&[0, 0, 0]);
        assert_ne!(a.finish128(), b.finish128());
    }

    #[test]
    fn aligned_u64_fast_path_matches_the_byte_path() {
        let mut fast = PairHasher::new();
        fast.write_u64(0xdead_beef_0bad_cafe);
        let mut slow = PairHasher::new();
        slow.write(&0xdead_beef_0bad_cafeu64.to_le_bytes());
        assert_eq!(fast.finish128(), slow.finish128());
    }

    #[test]
    fn matches_pinned_reference_vectors() {
        // Hard-coded expected values, computed once from this implementation and
        // pinned for all time: any change to the sip rounds, the keys or the
        // finalization (which would silently invalidate every persisted fingerprint)
        // fails here instead of passing self-referentially.
        assert_eq!(
            fingerprint(&()),
            Fingerprint(0x237abc25925bd676, 0xaed2a90a3dde3b40),
            "zero-byte input"
        );
        assert_eq!(
            fingerprint(&42u64),
            Fingerprint(0x2ff00e6a9dd799f9, 0x6cc3af0669c3c982),
            "one aligned u64 block"
        );
    }
}
