//! Depth-first state-space exploration.
//!
//! DFS uses far less memory per level than BFS but does not produce minimal-depth
//! counterexamples.  It is provided for completeness (TLC offers both strategies); the
//! paper's experiments all use BFS.
//!
//! Discovered states live in the same [`StateStore`] arena as
//! the BFS engine's (sequential here, so a single stripe): `u32` indices, parent-by-
//! index, interned labels, and optionally no stored states at all
//! ([`StoreMode::FingerprintOnly`](crate::store::StoreMode)).
//!
//! # Depth-bounded soundness
//!
//! Depth-bounded DFS must track the *best-known* depth of every state, not the depth of
//! its first discovery.  DFS discovery depths are not minimal: a state first reached
//! through a long path may later be reached through a shorter one, and an engine that
//! freezes the first depth will refuse to (re-)expand the state even though the shorter
//! path leaves room below `max_depth` — silently dropping states that BFS finds within
//! the same bound.  This engine re-pushes a state whenever a strictly shallower path to
//! it is found while a depth bound is active (without a bound, re-expansion cannot
//! change the reachable set and is skipped); see the
//! `depth_bounded_dfs_reexpands_states_reached_shallower` regression test, which fails
//! against the previous first-discovery-depth engine.
//!
//! # Partial-order reduction
//!
//! Under [`CheckOptions::por`] (and no depth bound — sleep-set re-pushes and
//! depth-improvement re-pushes would otherwise interact) the engine prunes redundant
//! interleavings with sleep sets (see the `por` module).  DFS combines sleep sets with
//! state matching the classical way: each state records the sleep set of its first
//! discovery, and a later arrival whose incoming sleep set is *smaller* shrinks the
//! record (intersection) and re-pushes the state so the newly-awake transitions get
//! explored — without the re-push, edges pruned on the first visit could be lost for
//! good.  Sets only shrink, so the re-push loop terminates.  Incremental
//! canonicalization (`Spec::incremental_symmetry`) is applied exactly as in the BFS
//! engine: successors whose footprint bounds the touched servers reuse the parent's
//! sort keys.

use std::time::Instant;

use remix_spec::{
    canon_stats, CanonFn, Effect, IncrementalCanon, LabelId, LabelTable, Perm, Spec, SpecState,
    Trace,
};

use crate::fingerprint::{fingerprint, Fingerprint};
use crate::options::{CheckMode, CheckOptions, SymmetryMode};
use crate::outcome::{CheckOutcome, CheckStats, StopReason, Violation};
use crate::por::{self, FootprintTable, SleepSet};
use crate::store::{Insert, StateIndex, StateStore};

/// One successor buffered by the (lock-free) enumeration callback, carrying
/// everything the post-enumeration store pass needs.
struct PendingSuccessor<S> {
    label: LabelId,
    effect: Option<Effect>,
    state: S,
    perm: Option<Perm>,
    sleep: SleepSet,
    fp: Fingerprint,
}

/// Runs depth-first model checking of `spec` under `options`.
pub fn check_dfs<S: SpecState>(spec: &Spec<S>, options: &CheckOptions) -> CheckOutcome<S> {
    let start = Instant::now();
    let fallbacks_before = canon_stats::tie_cap_fallbacks();
    let labels = LabelTable::new();
    // DFS is sequential; a single stripe makes `StateIndex` values dense (0, 1, 2, …),
    // which lets the best-known depths live in a flat vector indexed by state.
    let store: StateStore<S> = StateStore::new(options.store_mode, 1);
    let mut best_depth: Vec<u32> = Vec::new();
    let mut stack: Vec<(StateIndex, S, u32)> = Vec::new();
    let mut violations: Vec<Violation<S>> = Vec::new();
    let mut violation_count = 0usize;
    let mut transitions = 0u64;
    let mut pruned = 0u64;
    let mut max_depth_reached = 0u32;
    let mut stop_reason = StopReason::Exhausted;
    // Sleep-set POR is only safe without a depth bound (see the module docs); the
    // recorded sleep set of each state lives in a flat vector parallel to `best_depth`.
    let use_por = options.por && options.max_depth.is_none();
    let mut sleeps: Vec<SleepSet> = Vec::new();
    let footprints = FootprintTable::new();

    let violation_limit = match options.mode {
        CheckMode::FirstViolation => 1,
        CheckMode::Completion { violation_limit } => violation_limit,
    };

    // Symmetry reduction is active only when both the options request it and the spec
    // carries a canonicalization function (same contract as the BFS engine).
    let canon: Option<&CanonFn<S>> = match options.symmetry {
        SymmetryMode::Canonicalize => spec.symmetry.as_ref(),
        SymmetryMode::Off => None,
    };
    let incr: Option<&IncrementalCanon<S>> = canon.and(spec.incremental_symmetry.as_ref());

    for init in &spec.init {
        let insert = match canon {
            Some(canon) => {
                let (canonical, perm) = canon(init);
                let fp = fingerprint(&canonical);
                let mut handle = store.lock_shard(store.shard_of(fp));
                handle.insert_canonical(fp, None, LabelTable::init_id(), canonical, perm)
            }
            None => {
                let fp = fingerprint(init);
                let mut handle = store.lock_shard(store.shard_of(fp));
                handle.insert(fp, None, LabelTable::init_id(), init.clone())
            }
        };
        let Insert::Fresh(index, state) = insert else {
            continue;
        };
        best_depth.push(0);
        sleeps.push(SleepSet::new());
        check_state(
            spec,
            &labels,
            &store,
            canon,
            index,
            0,
            &state,
            options,
            &mut violations,
            &mut violation_count,
        );
        stack.push((index, state, 0));
    }

    'outer: while let Some((index, state, depth)) = stack.pop() {
        if violation_count >= violation_limit {
            stop_reason = if matches!(options.mode, CheckMode::FirstViolation) {
                StopReason::FirstViolation
            } else {
                StopReason::ViolationLimit
            };
            break;
        }
        if let Some(budget) = options.time_budget {
            if start.elapsed() >= budget {
                stop_reason = StopReason::TimeBudget;
                break;
            }
        }
        // A re-pushed state may since have been improved further; expand only the
        // best-known depth (stale stack entries are skipped, not re-expanded deeper).
        if depth > best_depth[index.0 as usize] {
            continue;
        }
        if let Some(max_depth) = options.max_depth {
            if depth >= max_depth {
                stop_reason = StopReason::DepthBound;
                continue;
            }
        }
        let ndepth = depth + 1;
        let mut successors: Vec<(StateIndex, S, u32, bool)> = Vec::new();
        // POR bookkeeping for this expansion: the state's recorded sleep set (cloned —
        // the closure grows `sleeps` for fresh successors), its resolved footprints,
        // and the explored earlier siblings.
        let sleep_in: SleepSet = if use_por {
            sleeps[index.0 as usize].clone()
        } else {
            SleepSet::new()
        };
        let sleep_in_effects: Vec<(LabelId, Effect)> = if sleep_in.is_empty() {
            Vec::new()
        } else {
            footprints.resolve(&sleep_in)
        };
        let mut retained: Vec<(LabelId, Effect)> = Vec::new();
        let mut memo: Option<Box<dyn std::any::Any + Send + Sync>> = None;
        let mut pending: Vec<PendingSuccessor<S>> = Vec::new();
        // The successor callback must stay lock-free (the concurrency lint enforces
        // this workspace-wide): it prunes, canonicalizes and fingerprints, buffering
        // each survivor; the store pass below does every locked operation.
        spec.for_each_successor(&state, &labels, |label, next, effect| {
            if use_por && sleep_in.binary_search(&label).is_ok() {
                // Covered through a sibling interleaving: skip before
                // canonicalization and fingerprinting.
                pruned += 1;
                return;
            }
            transitions += 1;
            let mut sleep = SleepSet::new();
            if use_por {
                sleep = por::child_sleep(&sleep_in_effects, &retained, effect);
                if let Some(e) = effect.filter(|e| !e.is_global()) {
                    retained.push((label, e));
                }
            }
            // Under symmetry the successor is replaced by its orbit's canonical
            // representative before fingerprinting (see the BFS engine); footprinted
            // successors take the incremental path, reusing the parent's sort keys.
            let (next, perm) = match (canon, incr) {
                (Some(_canon), Some(incr)) if effect.is_some_and(|e| !e.is_global()) => {
                    let touched = effect.expect("guarded above").touched_servers();
                    let parent_memo = memo.get_or_insert_with(|| (incr.memo)(&state));
                    #[cfg(debug_assertions)]
                    let oracle = next.clone();
                    let (canonical, perm) = (incr.canon)(next, &**parent_memo, touched);
                    #[cfg(debug_assertions)]
                    debug_assert_eq!(
                        canonical,
                        _canon(&oracle).0,
                        "incremental canonicalization diverged from the full \
                         recomputation (label {label:?})"
                    );
                    (canonical, Some(perm))
                }
                (Some(_canon), Some(incr)) => {
                    // No usable footprint, but the owned full path still skips the
                    // deep rewrite when the canonical permutation is the identity.
                    let (canonical, perm) = (incr.full_owned)(next);
                    (canonical, Some(perm))
                }
                (Some(canon), None) => {
                    let (canonical, perm) = canon(&next);
                    (canonical, Some(perm))
                }
                (None, _) => (next, None),
            };
            // Sleep labels live in the parent's id frame; a relabelling edge starts
            // the child awake (always sound).
            if perm.as_ref().is_some_and(|p| !p.is_identity()) {
                sleep.clear();
            }
            let fp = fingerprint(&next);
            pending.push(PendingSuccessor {
                label,
                effect,
                state: next,
                perm,
                sleep,
                fp,
            });
        });
        // Store pass: record footprints and dedup/insert the buffered successors.
        // Footprint recording is first-writer-wins over values that are a function of
        // the label alone, so deferring it past the enumeration changes nothing.
        for rec in pending {
            let PendingSuccessor {
                label,
                effect,
                state: next,
                perm,
                sleep,
                fp: nfp,
            } = rec;
            if use_por {
                if let Some(e) = effect {
                    footprints.record(label, e);
                }
            }
            let mut handle = store.lock_shard(store.shard_of(nfp));
            let insert = match perm.clone() {
                Some(perm) => handle.insert_canonical(nfp, Some(index), label, next, perm),
                None => handle.insert(nfp, Some(index), label, next),
            };
            drop(handle);
            match insert {
                Insert::Fresh(nindex, next) => {
                    best_depth.push(ndepth);
                    if use_por {
                        sleeps.push(sleep);
                    }
                    max_depth_reached = max_depth_reached.max(ndepth);
                    successors.push((nindex, next, ndepth, true));
                }
                Insert::Existing(nindex, next) => {
                    // The depth-bound soundness fix: a strictly shallower path makes
                    // previously out-of-budget successors reachable, so the state goes
                    // back on the stack at its improved depth.  Without a bound the
                    // reachable set cannot change, so the re-expansion is skipped.
                    if options.max_depth.is_some() && ndepth < best_depth[nindex.0 as usize] {
                        best_depth[nindex.0 as usize] = ndepth;
                        // Keep the recorded chain consistent with best-known depths:
                        // traces reconstructed through this state must follow the
                        // shallower arm, or their length would exceed the reported
                        // violation depth (and the bound itself).  Under symmetry the
                        // edge's recorded permutation moves with it.
                        store.set_parent(nindex, index, label, perm.clone());
                        successors.push((nindex, next, ndepth, false));
                    } else if use_por {
                        // Sleep-set shrink: this arrival keeps fewer labels asleep
                        // than the recorded first visit, so the state must be
                        // re-expanded with the intersection or the newly-awake edges
                        // would be lost.  The re-push uses the state's *recorded*
                        // depth — a deeper `ndepth` would be skipped as stale at pop
                        // time (`use_por` implies no depth bound, so depths play no
                        // other role here).
                        let recorded = &mut sleeps[nindex.0 as usize];
                        let before = recorded.len();
                        por::intersect_sorted(recorded, &sleep);
                        if recorded.len() < before {
                            successors.push((nindex, next, best_depth[nindex.0 as usize], false));
                        }
                    }
                }
            }
        }
        for (nindex, next, ndepth, is_fresh) in successors {
            // Invariants are checked once, at first discovery (re-pushed states were
            // already checked).
            if is_fresh {
                check_state(
                    spec,
                    &labels,
                    &store,
                    canon,
                    nindex,
                    ndepth,
                    &next,
                    options,
                    &mut violations,
                    &mut violation_count,
                );
            }
            stack.push((nindex, next, ndepth));
            if violation_count >= violation_limit
                && matches!(options.mode, CheckMode::FirstViolation)
            {
                stop_reason = StopReason::FirstViolation;
                break 'outer;
            }
            if let Some(max_states) = options.max_states {
                if store.len() >= max_states {
                    stop_reason = StopReason::StateLimit;
                    break 'outer;
                }
            }
        }
    }

    let stats = CheckStats {
        distinct_states: store.len(),
        transitions,
        max_depth: max_depth_reached,
        elapsed: start.elapsed(),
        per_worker_transitions: vec![transitions],
        shard_contention: Vec::new(),
        peak_entry_bytes: store.entry_bytes(),
        entry_bytes_per_state: store.entry_bytes_per_state(),
        spill: store.spill_stats(),
        pruned_transitions: pruned,
        canon_fallbacks: canon_stats::tie_cap_fallbacks().saturating_sub(fallbacks_before),
    };
    CheckOutcome {
        spec_name: spec.name.clone(),
        stats,
        stop_reason,
        violations,
        violation_count,
    }
}

#[allow(clippy::too_many_arguments)]
fn check_state<S: SpecState>(
    spec: &Spec<S>,
    labels: &LabelTable,
    store: &StateStore<S>,
    canon: Option<&CanonFn<S>>,
    index: StateIndex,
    depth: u32,
    state: &S,
    options: &CheckOptions,
    violations: &mut Vec<Violation<S>>,
    violation_count: &mut usize,
) {
    let violated = spec.violated_invariants(state);
    if violated.is_empty() {
        return;
    }
    *violation_count += violated.len();
    for inv in violated {
        if violations.iter().any(|v| v.invariant == inv.id) {
            continue;
        }
        let trace = if options.collect_traces {
            match canon {
                Some(canon) => store.reconstruct_trace_decanonicalized(spec, labels, index, canon),
                None => store.reconstruct_trace(spec, labels, index),
            }
        } else {
            Trace::default()
        };
        violations.push(Violation {
            invariant: inv.id,
            invariant_name: inv.name,
            depth,
            trace,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreMode;
    use remix_spec::{
        ActionDef, ActionInstance, Granularity, Invariant, InvariantSource, ModuleId, ModuleSpec,
        Spec,
    };
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct N(u32);

    impl SpecState for N {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
            let mut m = BTreeMap::new();
            if vars.contains(&"n") {
                m.insert("n".to_owned(), remix_spec::Value::from(self.0));
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["n"]
        }
    }

    fn chain_spec(limit: u32, bad: Option<u32>) -> Spec<N> {
        let m = ModuleId("Chain");
        let inc = ActionDef::new(
            "Inc",
            m,
            Granularity::Baseline,
            vec!["n"],
            vec!["n"],
            move |s: &N| {
                if s.0 < limit {
                    vec![ActionInstance::new(format!("Inc({})", s.0), N(s.0 + 1))]
                } else {
                    vec![]
                }
            },
        );
        let inv = Invariant::always(
            "NOT-BAD",
            "avoid the bad value",
            InvariantSource::Protocol,
            move |s: &N| Some(s.0) != bad,
        );
        Spec::new(
            "chain",
            vec![N(0)],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![inc])],
            vec![inv],
        )
    }

    #[test]
    fn dfs_explores_all_states() {
        let outcome = check_dfs(&chain_spec(8, None), &CheckOptions::default());
        assert!(outcome.passed());
        assert_eq!(outcome.stats.distinct_states, 9);
        assert_eq!(outcome.stop_reason, StopReason::Exhausted);
    }

    #[test]
    fn dfs_finds_violation() {
        let outcome = check_dfs(&chain_spec(8, Some(5)), &CheckOptions::default());
        assert!(!outcome.passed());
        assert_eq!(
            outcome
                .first_violation()
                .unwrap()
                .trace
                .last_state()
                .unwrap(),
            &N(5)
        );
    }

    #[test]
    fn dfs_and_bfs_agree_on_reachable_state_count() {
        let spec = chain_spec(20, None);
        let d = check_dfs(&spec, &CheckOptions::default());
        let b = crate::bfs::check_bfs(&spec, &CheckOptions::default());
        assert_eq!(d.stats.distinct_states, b.stats.distinct_states);
    }

    #[test]
    fn fingerprint_only_dfs_matches_full_dfs() {
        let spec = chain_spec(12, Some(9));
        let full = check_dfs(
            &spec,
            &CheckOptions::default().with_store_mode(StoreMode::Full),
        );
        let fp_only = check_dfs(
            &spec,
            &CheckOptions::default().with_store_mode(StoreMode::FingerprintOnly),
        );
        assert_eq!(full.stats.distinct_states, fp_only.stats.distinct_states);
        assert_eq!(
            full.first_violation().unwrap().trace.action_labels(),
            fp_only.first_violation().unwrap().trace.action_labels()
        );
        assert!(fp_only.stats.peak_entry_bytes < full.stats.peak_entry_bytes);
    }

    /// A diamond joined at `X = N(1)`: the short arm `0 → B → X` and the long arm
    /// `0 → A1 → A2 → X`, with the tail `X → Y → Z` behind the join.  The long arm is
    /// enumerated *last* at the root, so the DFS stack pops it *first* and discovers `X`
    /// at depth 3 (and `Y` at depth 4, where the `max_depth = 4` bound stops expansion).
    /// When the short arm later reaches `X` at depth 2, an engine that freezes the
    /// first-discovery depth never re-expands `X`, and `Z` — which BFS finds at depth 4,
    /// inside the same bound — is silently dropped.
    fn diamond_spec() -> Spec<N> {
        let m = ModuleId("Diamond");
        let hop = ActionDef::new(
            "Hop",
            m,
            Granularity::Baseline,
            vec!["n"],
            vec!["n"],
            |s: &N| {
                let next = match s.0 {
                    0 => Some(20), // 0 → B
                    20 => Some(1), // B → X
                    1 => Some(2),  // X → Y
                    2 => Some(3),  // Y → Z
                    _ => None,
                };
                next.map(|n| vec![ActionInstance::new(format!("Hop({})", s.0), N(n))])
                    .unwrap_or_default()
            },
        );
        let detour = ActionDef::new(
            "Detour",
            m,
            Granularity::Baseline,
            vec!["n"],
            vec!["n"],
            |s: &N| {
                let next = match s.0 {
                    0 => Some(10),  // 0 → A1
                    10 => Some(11), // A1 → A2
                    11 => Some(1),  // A2 → X
                    _ => None,
                };
                next.map(|n| vec![ActionInstance::new(format!("Detour({})", s.0), N(n))])
                    .unwrap_or_default()
            },
        );
        Spec::new(
            "diamond",
            vec![N(0)],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![hop, detour])],
            vec![],
        )
    }

    #[test]
    fn depth_bounded_dfs_reexpands_states_reached_shallower() {
        let spec = diamond_spec();
        for mode in [StoreMode::Full, StoreMode::FingerprintOnly] {
            let options = CheckOptions::default()
                .with_max_depth(4)
                .with_store_mode(mode);
            let bfs = crate::bfs::check_bfs(&spec, &options);
            let dfs = check_dfs(&spec, &options);
            // All of {0, B, A1, A2, X, Y, Z} lie within 4 transitions of the initial
            // state; a DFS that freezes first-discovery depths finds only 6 of them (Z
            // is reachable within the bound only through the re-discovered shallower
            // path to X).
            assert_eq!(bfs.stats.distinct_states, 7);
            assert_eq!(
                dfs.stats.distinct_states, bfs.stats.distinct_states,
                "depth-bounded DFS must reach every state BFS reaches within the same \
                 bound (store mode {mode})"
            );
        }
    }

    #[test]
    fn reexpanded_states_report_traces_along_the_shallower_arm() {
        // Same diamond, but Z violates: Z is only reached through the re-expanded
        // shallower path to X, so its recorded chain must follow that arm — a trace
        // walking the deep first-discovery arm would be longer than the reported depth
        // (and than the bound itself).
        let mut spec = diamond_spec();
        spec.invariants = vec![Invariant::always(
            "NOT-Z",
            "never reach Z",
            InvariantSource::Protocol,
            |s: &N| s.0 != 3,
        )];
        for mode in [StoreMode::Full, StoreMode::FingerprintOnly] {
            let outcome = check_dfs(
                &spec,
                &CheckOptions::default()
                    .with_max_depth(4)
                    .with_store_mode(mode),
            );
            let v = outcome
                .first_violation()
                .unwrap_or_else(|| panic!("Z is reachable within the bound ({mode})"));
            assert_eq!(v.trace.last_state(), Some(&N(3)), "{mode}");
            assert_eq!(
                v.trace.depth() as u32,
                v.depth,
                "trace length must match the reported depth ({mode})"
            );
            assert!(v.depth <= 4, "no trace may exceed the bound ({mode})");
            assert_eq!(
                v.trace.action_labels(),
                vec!["Hop(0)", "Hop(20)", "Hop(1)", "Hop(2)"],
                "the chain follows the shallower arm ({mode})"
            );
        }
    }

    #[test]
    fn unbounded_dfs_still_terminates_on_the_diamond() {
        // Without a depth bound the re-expansion path is skipped entirely; the diamond
        // still explores to exhaustion.
        let outcome = check_dfs(&diamond_spec(), &CheckOptions::default());
        assert_eq!(outcome.stop_reason, StopReason::Exhausted);
        assert_eq!(outcome.stats.distinct_states, 7);
    }
}
