//! Depth-first state-space exploration.
//!
//! DFS uses far less memory per level than BFS but does not produce minimal-depth
//! counterexamples.  It is provided for completeness (TLC offers both strategies); the
//! paper's experiments all use BFS.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use remix_spec::{Spec, SpecState, Trace};

use crate::fingerprint::{fingerprint, Fingerprint};
use crate::options::{CheckMode, CheckOptions};
use crate::outcome::{CheckOutcome, CheckStats, StopReason, Violation};

struct Entry<S> {
    state: Arc<S>,
    parent: Option<Fingerprint>,
    action: String,
    depth: u32,
}

/// Runs depth-first model checking of `spec` under `options`.
pub fn check_dfs<S: SpecState>(spec: &Spec<S>, options: &CheckOptions) -> CheckOutcome<S> {
    let start = Instant::now();
    let mut seen: HashMap<Fingerprint, Entry<S>> = HashMap::new();
    let mut stack: Vec<Fingerprint> = Vec::new();
    let mut violations: Vec<Violation<S>> = Vec::new();
    let mut violation_count = 0usize;
    let mut transitions = 0u64;
    let mut max_depth_reached = 0u32;
    let mut stop_reason = StopReason::Exhausted;

    let violation_limit = match options.mode {
        CheckMode::FirstViolation => 1,
        CheckMode::Completion { violation_limit } => violation_limit,
    };

    for init in &spec.init {
        let fp = fingerprint(init);
        if seen.contains_key(&fp) {
            continue;
        }
        seen.insert(
            fp,
            Entry {
                state: Arc::new(init.clone()),
                parent: None,
                action: "Init".to_owned(),
                depth: 0,
            },
        );
        stack.push(fp);
        check_state(
            spec,
            &seen,
            fp,
            options,
            &mut violations,
            &mut violation_count,
        );
    }

    'outer: while let Some(fp) = stack.pop() {
        if violation_count >= violation_limit {
            stop_reason = if matches!(options.mode, CheckMode::FirstViolation) {
                StopReason::FirstViolation
            } else {
                StopReason::ViolationLimit
            };
            break;
        }
        if let Some(budget) = options.time_budget {
            if start.elapsed() >= budget {
                stop_reason = StopReason::TimeBudget;
                break;
            }
        }
        let (depth, state) = {
            let e = &seen[&fp];
            (e.depth, Arc::clone(&e.state))
        };
        if let Some(max_depth) = options.max_depth {
            if depth >= max_depth {
                stop_reason = StopReason::DepthBound;
                continue;
            }
        }
        for (label, next) in spec.successors(&state) {
            transitions += 1;
            let nfp = fingerprint(&next);
            if seen.contains_key(&nfp) {
                continue;
            }
            let ndepth = depth + 1;
            max_depth_reached = max_depth_reached.max(ndepth);
            seen.insert(
                nfp,
                Entry {
                    state: Arc::new(next),
                    parent: Some(fp),
                    action: label,
                    depth: ndepth,
                },
            );
            stack.push(nfp);
            check_state(
                spec,
                &seen,
                nfp,
                options,
                &mut violations,
                &mut violation_count,
            );
            if violation_count >= violation_limit
                && matches!(options.mode, CheckMode::FirstViolation)
            {
                stop_reason = StopReason::FirstViolation;
                break 'outer;
            }
            if let Some(max_states) = options.max_states {
                if seen.len() >= max_states {
                    stop_reason = StopReason::StateLimit;
                    break 'outer;
                }
            }
        }
    }

    let stats = CheckStats {
        distinct_states: seen.len(),
        transitions,
        max_depth: max_depth_reached,
        elapsed: start.elapsed(),
        per_worker_transitions: vec![transitions],
        shard_contention: Vec::new(),
    };
    CheckOutcome {
        spec_name: spec.name.clone(),
        stats,
        stop_reason,
        violations,
        violation_count,
    }
}

fn check_state<S: SpecState>(
    spec: &Spec<S>,
    seen: &HashMap<Fingerprint, Entry<S>>,
    fp: Fingerprint,
    options: &CheckOptions,
    violations: &mut Vec<Violation<S>>,
    violation_count: &mut usize,
) {
    let entry = &seen[&fp];
    let violated = spec.violated_invariants(&entry.state);
    if violated.is_empty() {
        return;
    }
    *violation_count += violated.len();
    for inv in violated {
        if violations.iter().any(|v| v.invariant == inv.id) {
            continue;
        }
        let trace = if options.collect_traces {
            reconstruct_trace(seen, fp)
        } else {
            Trace::default()
        };
        violations.push(Violation {
            invariant: inv.id,
            invariant_name: inv.name,
            depth: entry.depth,
            trace,
        });
    }
}

fn reconstruct_trace<S: SpecState>(
    seen: &HashMap<Fingerprint, Entry<S>>,
    fp: Fingerprint,
) -> Trace<S> {
    let mut chain = Vec::new();
    let mut cursor = Some(fp);
    while let Some(c) = cursor {
        let e = &seen[&c];
        chain.push(e);
        cursor = e.parent;
    }
    chain.reverse();
    let mut trace = Trace::default();
    for e in chain {
        trace.push(e.action.clone(), (*e.state).clone());
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_spec::{
        ActionDef, ActionInstance, Granularity, Invariant, InvariantSource, ModuleId, ModuleSpec,
    };
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct N(u32);

    impl SpecState for N {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
            let mut m = BTreeMap::new();
            if vars.contains(&"n") {
                m.insert("n".to_owned(), remix_spec::Value::from(self.0));
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["n"]
        }
    }

    fn chain_spec(limit: u32, bad: Option<u32>) -> Spec<N> {
        let m = ModuleId("Chain");
        let inc = ActionDef::new(
            "Inc",
            m,
            Granularity::Baseline,
            vec!["n"],
            vec!["n"],
            move |s: &N| {
                if s.0 < limit {
                    vec![ActionInstance::new(format!("Inc({})", s.0), N(s.0 + 1))]
                } else {
                    vec![]
                }
            },
        );
        let inv = Invariant::always(
            "NOT-BAD",
            "avoid the bad value",
            InvariantSource::Protocol,
            move |s: &N| Some(s.0) != bad,
        );
        Spec::new(
            "chain",
            vec![N(0)],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![inc])],
            vec![inv],
        )
    }

    #[test]
    fn dfs_explores_all_states() {
        let outcome = check_dfs(&chain_spec(8, None), &CheckOptions::default());
        assert!(outcome.passed());
        assert_eq!(outcome.stats.distinct_states, 9);
        assert_eq!(outcome.stop_reason, StopReason::Exhausted);
    }

    #[test]
    fn dfs_finds_violation() {
        let outcome = check_dfs(&chain_spec(8, Some(5)), &CheckOptions::default());
        assert!(!outcome.passed());
        assert_eq!(
            outcome
                .first_violation()
                .unwrap()
                .trace
                .last_state()
                .unwrap(),
            &N(5)
        );
    }

    #[test]
    fn dfs_and_bfs_agree_on_reachable_state_count() {
        let spec = chain_spec(20, None);
        let d = check_dfs(&spec, &CheckOptions::default());
        let b = crate::bfs::check_bfs(&spec, &CheckOptions::default());
        assert_eq!(d.stats.distinct_states, b.stats.distinct_states);
    }
}
