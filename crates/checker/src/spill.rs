//! The out-of-core tier: spilled fingerprint runs, bloom-guarded disk probes, and
//! the knobs that decide when the in-RAM structures give way to files.
//!
//! This is the TLC-style disk-based fingerprint set (Yu/Manolios/Lamport): when a
//! store stripe's in-RAM *delta table* reaches its share of the configured memory
//! budget, the table is sorted and written out as an **immutable run** — a sorted
//! array of fixed-width `(fingerprint, slot)` records.  Membership probes consult
//! the delta table first, then each run through a per-run in-RAM bloom filter; only
//! a bloom hit pays a disk read, which fetches one fence-indexed block and binary
//! searches it.  Runs are mutually disjoint *by construction* (a fingerprint is
//! deduplicated against every run before it may enter the delta table), so probe
//! order never affects the answer and spilling cannot change which states a run
//! discovers — only where their fingerprints live.
//!
//! The module also provides the on-disk index queue that [`crate::bfs`] round-trips
//! oversized frontiers through, and the [`SpillConfig`] / [`SpillStats`] types the
//! option and outcome structs surface.
//!
//! Everything here is `std`-only: plain files via [`std::os::unix::fs::FileExt`]
//! positioned reads (no memory mapping — the workspace denies `unsafe`).

use crate::fingerprint::Fingerprint;
use crate::sync::{AtomicU64, Ordering};
use std::fs::{self, File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};

/// Bytes of one spilled record: two 64-bit fingerprint halves plus the 32-bit local
/// slot the entry maps to.
pub(crate) const RECORD_BYTES: usize = 20;

/// Records per fence-indexed block: a probe that passes the bloom filter reads one
/// `256 × 20 = 5120`-byte block and binary searches it in memory.
const FENCE_EVERY: usize = 256;

/// Estimated resident bytes of one delta-table entry (`HashMap<Fingerprint, u32>`
/// payload plus load-factor and control overhead); used to translate the byte budget
/// into a per-stripe flush threshold.
pub(crate) const DELTA_ENTRY_BYTES: usize = 48;

/// The smallest delta table worth flushing: below this, run files would degenerate
/// into per-entry syscalls.
pub(crate) const MIN_FLUSH_ENTRIES: usize = 8;

/// Where (and whether) a run may spill its fingerprint set and frontiers to disk.
///
/// The default is fully in-RAM (`budget_bytes: None`).  [`SpillConfig::from_env`]
/// reads the `REMIX_MEM_BUDGET` (e.g. `"64m"`, `"2g"`, `"500k"`, or plain bytes) and
/// `REMIX_SPILL_DIR` environment variables, which is how CI runs the spill-path legs
/// without per-test parameters; explicit builder calls always win.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpillConfig {
    /// Memory budget in bytes for the store's fingerprint set (and, in
    /// [`crate::store::StoreMode::Full`], the BFS frontier).  `None` disables
    /// spilling entirely.
    pub budget_bytes: Option<u64>,
    /// Directory spill files are created under (a unique per-store subdirectory is
    /// created inside it and removed when the store drops).  `None` uses the system
    /// temp directory.
    pub dir: Option<PathBuf>,
}

impl SpillConfig {
    /// The configuration selected by `REMIX_MEM_BUDGET` / `REMIX_SPILL_DIR`;
    /// spilling stays off when `REMIX_MEM_BUDGET` is unset or unparseable.
    pub fn from_env() -> SpillConfig {
        SpillConfig {
            budget_bytes: std::env::var("REMIX_MEM_BUDGET")
                .ok()
                .and_then(|s| parse_mem_budget(&s)),
            dir: std::env::var_os("REMIX_SPILL_DIR").map(PathBuf::from),
        }
    }

    /// A configuration that never spills, regardless of the environment.
    pub fn in_ram() -> SpillConfig {
        SpillConfig::default()
    }

    /// Sets the memory budget in bytes.
    pub fn with_budget_bytes(mut self, bytes: u64) -> SpillConfig {
        self.budget_bytes = Some(bytes);
        self
    }

    /// Sets the directory spill files live under.
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> SpillConfig {
        self.dir = Some(dir.into());
        self
    }

    /// `true` when a budget is set, i.e. the out-of-core tier is armed.
    pub fn is_active(&self) -> bool {
        self.budget_bytes.is_some()
    }
}

/// Parses a memory budget: a plain byte count or a number with a `k`/`m`/`g` suffix
/// (powers of 1024, case-insensitive, optional trailing `b`/`ib`).
pub fn parse_mem_budget(s: &str) -> Option<u64> {
    let s = s.trim().to_ascii_lowercase();
    let digits_end = s.find(|c: char| !c.is_ascii_digit()).unwrap_or(s.len());
    let value: u64 = s[..digits_end].parse().ok()?;
    let shift = match s[digits_end..].trim_start() {
        "" | "b" => 0,
        "k" | "kb" | "kib" => 10,
        "m" | "mb" | "mib" => 20,
        "g" | "gb" | "gib" => 30,
        _ => return None,
    };
    value.checked_shl(shift)
}

/// Out-of-core activity counters of one run, surfaced in `CheckStats` and
/// `RefineStats`.  All-zero when everything fit in the budget (or no budget was set).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillStats {
    /// The configured memory budget in bytes; `0` when spilling was off.
    pub budget_bytes: u64,
    /// Immutable sorted runs written to disk.
    pub runs_spilled: u64,
    /// Fingerprint-set entries moved out of RAM into runs.
    pub entries_spilled: u64,
    /// Bytes written to run files.
    pub bytes_spilled: u64,
    /// Membership probes that passed a bloom filter and paid a disk read.
    pub disk_probes: u64,
    /// Membership probes a bloom filter answered negatively without touching disk.
    pub bloom_negatives: u64,
    /// Frontier entries round-tripped through on-disk level queues.
    pub frontier_spilled: u64,
}

impl SpillStats {
    /// `true` when the run actually exceeded its memory budget somewhere — the
    /// fingerprint set spilled runs or a BFS frontier round-tripped through disk.
    pub fn spilled(&self) -> bool {
        self.runs_spilled > 0 || self.frontier_spilled > 0
    }
}

/// Atomic counterpart of [`SpillStats`], updated concurrently by shard handles.
#[derive(Debug, Default)]
pub(crate) struct SpillCounters {
    pub runs_spilled: AtomicU64,
    pub entries_spilled: AtomicU64,
    pub bytes_spilled: AtomicU64,
    pub disk_probes: AtomicU64,
    pub bloom_negatives: AtomicU64,
    pub frontier_spilled: AtomicU64,
}

impl SpillCounters {
    pub fn snapshot(&self, budget_bytes: u64) -> SpillStats {
        // ordering: Relaxed (×6) — counters are statistics reported after the run;
        // nothing branches on them while workers are live.
        SpillStats {
            budget_bytes,
            runs_spilled: self.runs_spilled.load(Ordering::Relaxed), // ordering: see above.
            entries_spilled: self.entries_spilled.load(Ordering::Relaxed), // ordering: see above.
            bytes_spilled: self.bytes_spilled.load(Ordering::Relaxed), // ordering: see above.
            disk_probes: self.disk_probes.load(Ordering::Relaxed),   // ordering: see above.
            bloom_negatives: self.bloom_negatives.load(Ordering::Relaxed), // ordering: see above.
            frontier_spilled: self.frontier_spilled.load(Ordering::Relaxed), // ordering: see above.
        }
    }
}

/// Creates the unique per-store spill directory under `base` (or the system temp
/// directory), named by pid and a process-wide sequence number so concurrent stores
/// never collide.
pub(crate) fn create_spill_dir(base: Option<&Path>) -> io::Result<PathBuf> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let base = base
        .map(Path::to_path_buf)
        .unwrap_or_else(std::env::temp_dir);
    let dir = base.join(format!(
        "remix-spill-{}-{}",
        std::process::id(),
        // ordering: Relaxed — the RMW alone guarantees unique values; no other
        // memory is published with the sequence number.
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir)?;
    Ok(dir)
}

/// Total sort key of a fingerprint (the record order of run files).
#[inline]
fn key(fp: Fingerprint) -> u128 {
    ((fp.0 as u128) << 64) | fp.1 as u128
}

/// A blocked bloom filter over one run's fingerprints: ~10 bits and 4 probes per
/// key (≈1% false-positive rate), so a negative membership probe usually costs four
/// cache lines of RAM instead of a disk read.  The two independently keyed SipHash
/// halves of [`Fingerprint`] supply the double-hashing pair directly.
struct Bloom {
    words: Vec<u64>,
    /// `words.len() * 64 - 1`; the bit count is a power of two.
    bit_mask: u64,
}

const BLOOM_BITS_PER_KEY: usize = 10;
const BLOOM_PROBES: u64 = 4;

impl Bloom {
    fn with_capacity(keys: usize) -> Bloom {
        let bits = (keys * BLOOM_BITS_PER_KEY).next_power_of_two().max(64);
        Bloom {
            words: vec![0u64; bits / 64],
            bit_mask: bits as u64 - 1,
        }
    }

    #[inline]
    fn insert(&mut self, fp: Fingerprint) {
        for i in 0..BLOOM_PROBES {
            let bit = fp.0.wrapping_add(i.wrapping_mul(fp.1)) & self.bit_mask;
            self.words[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    #[inline]
    fn maybe_contains(&self, fp: Fingerprint) -> bool {
        (0..BLOOM_PROBES).all(|i| {
            let bit = fp.0.wrapping_add(i.wrapping_mul(fp.1)) & self.bit_mask;
            self.words[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }
}

/// One immutable sorted run of `(fingerprint, slot)` records on disk, with its
/// in-RAM bloom filter and fence index (the first key and byte offset of every
/// [`FENCE_EVERY`]-record block).
pub(crate) struct SpillRun {
    file: File,
    records: usize,
    fences: Vec<(u128, u64)>,
    bloom: Bloom,
}

impl SpillRun {
    /// Sorts `entries` and writes them as a new run at `path` (which must not exist).
    pub fn write(path: &Path, mut entries: Vec<(Fingerprint, u32)>) -> io::Result<SpillRun> {
        entries.sort_unstable_by_key(|(fp, _)| key(*fp));
        let mut bloom = Bloom::with_capacity(entries.len());
        let mut fences = Vec::with_capacity(entries.len().div_ceil(FENCE_EVERY));
        let mut buf = Vec::with_capacity(entries.len() * RECORD_BYTES);
        for (i, (fp, slot)) in entries.iter().enumerate() {
            if i % FENCE_EVERY == 0 {
                fences.push((key(*fp), (i * RECORD_BYTES) as u64));
            }
            bloom.insert(*fp);
            buf.extend_from_slice(&fp.0.to_le_bytes());
            buf.extend_from_slice(&fp.1.to_le_bytes());
            buf.extend_from_slice(&slot.to_le_bytes());
        }
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        file.write_all_at(&buf, 0)?;
        Ok(SpillRun {
            file,
            records: entries.len(),
            fences,
            bloom,
        })
    }

    /// Number of records in this run.
    pub fn len(&self) -> usize {
        self.records
    }

    /// Looks up `fp`, consulting the bloom filter before touching disk.
    ///
    /// # Panics
    ///
    /// Panics when the run file has become unreadable: silently treating a stored
    /// fingerprint as new would corrupt the exploration (duplicate slots, broken
    /// determinism), so an I/O error here is fatal by design.
    pub fn probe(&self, fp: Fingerprint, counters: &SpillCounters) -> Option<u32> {
        if !self.bloom.maybe_contains(fp) {
            // ordering: Relaxed (here and below) — probe counters are statistics only.
            counters.bloom_negatives.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        counters.disk_probes.fetch_add(1, Ordering::Relaxed); // ordering: see above.
        let k = key(fp);
        // The last fence whose first key is <= k owns the only block that can hold k.
        let block = match self.fences.partition_point(|(first, _)| *first <= k) {
            0 => return None,
            i => i - 1,
        };
        let offset = self.fences[block].1;
        let in_block = FENCE_EVERY.min(self.records - block * FENCE_EVERY);
        let mut buf = vec![0u8; in_block * RECORD_BYTES];
        self.file
            .read_exact_at(&mut buf, offset)
            .expect("spill run became unreadable; cannot continue soundly");
        // Binary search the block's fixed-width records.
        let (mut lo, mut hi) = (0usize, in_block);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let at = mid * RECORD_BYTES;
            let rec_key = {
                let hi64 = u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
                let lo64 = u64::from_le_bytes(buf[at + 8..at + 16].try_into().unwrap());
                ((hi64 as u128) << 64) | lo64 as u128
            };
            match rec_key.cmp(&k) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let at = mid * RECORD_BYTES + 16;
                    return Some(u32::from_le_bytes(buf[at..at + 4].try_into().unwrap()));
                }
            }
        }
        None
    }
}

/// A bounded on-disk FIFO of `u32` state indices: the backing of BFS levels too
/// large for their memory budget.  Writes append; reads stream sequential chunks.
pub(crate) struct IndexQueue {
    file: File,
    written: usize,
    read: usize,
}

impl IndexQueue {
    /// Creates an empty queue file at `path` (which must not exist).
    pub fn create(path: &Path) -> io::Result<IndexQueue> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path)?;
        Ok(IndexQueue {
            file,
            written: 0,
            read: 0,
        })
    }

    /// Appends a batch of indices.
    pub fn push(&mut self, indices: &[u32]) -> io::Result<()> {
        let mut buf = Vec::with_capacity(indices.len() * 4);
        for i in indices {
            buf.extend_from_slice(&i.to_le_bytes());
        }
        self.file.write_all_at(&buf, (self.written * 4) as u64)?;
        self.written += indices.len();
        Ok(())
    }

    /// Indices not yet consumed by [`IndexQueue::next_chunk`].
    pub fn remaining(&self) -> usize {
        self.written - self.read
    }

    /// Total indices ever appended.
    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.written
    }

    /// Reads up to `max` indices in FIFO order; empty when drained.
    pub fn next_chunk(&mut self, max: usize) -> io::Result<Vec<u32>> {
        let n = self.remaining().min(max);
        let mut buf = vec![0u8; n * 4];
        self.file.read_exact_at(&mut buf, (self.read * 4) as u64)?;
        self.read += n;
        Ok(buf
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_budget_suffixes() {
        assert_eq!(parse_mem_budget("1048576"), Some(1 << 20));
        assert_eq!(parse_mem_budget("64k"), Some(64 << 10));
        assert_eq!(parse_mem_budget("64K"), Some(64 << 10));
        assert_eq!(parse_mem_budget("512m"), Some(512 << 20));
        assert_eq!(parse_mem_budget("512MiB"), Some(512 << 20));
        assert_eq!(parse_mem_budget("2g"), Some(2 << 30));
        assert_eq!(parse_mem_budget("2 gb"), Some(2 << 30));
        assert_eq!(parse_mem_budget(""), None);
        assert_eq!(parse_mem_budget("lots"), None);
        assert_eq!(parse_mem_budget("64x"), None);
    }

    fn fp(i: u64) -> Fingerprint {
        // Spread keys so sort order differs from insertion order.
        Fingerprint(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), !i)
    }

    #[test]
    fn run_round_trips_every_entry_and_rejects_absent_keys() {
        let dir = create_spill_dir(None).unwrap();
        let entries: Vec<(Fingerprint, u32)> = (0..1000u64).map(|i| (fp(i), i as u32)).collect();
        let run = SpillRun::write(&dir.join("run-0.fps"), entries.clone()).unwrap();
        assert_eq!(run.len(), 1000);
        let counters = SpillCounters::default();
        for (f, slot) in &entries {
            assert_eq!(run.probe(*f, &counters), Some(*slot));
        }
        assert_eq!(counters.disk_probes.load(Ordering::Relaxed), 1000);
        let mut negatives = 0;
        for i in 1000..3000u64 {
            if run.probe(fp(i), &counters).is_none() {
                negatives += 1;
            } else {
                panic!("absent key reported present");
            }
        }
        assert_eq!(negatives, 2000);
        assert!(
            counters.bloom_negatives.load(Ordering::Relaxed) > 1500,
            "the bloom filter must answer most absent probes without disk reads: {}",
            counters.bloom_negatives.load(Ordering::Relaxed)
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_queue_streams_fifo_chunks() {
        let dir = create_spill_dir(None).unwrap();
        let mut q = IndexQueue::create(&dir.join("level-0.idx")).unwrap();
        q.push(&[1, 2, 3]).unwrap();
        q.push(&[4, 5]).unwrap();
        assert_eq!(q.len(), 5);
        assert_eq!(q.next_chunk(2).unwrap(), vec![1, 2]);
        q.push(&[6]).unwrap();
        assert_eq!(q.next_chunk(10).unwrap(), vec![3, 4, 5, 6]);
        assert_eq!(q.next_chunk(10).unwrap(), Vec::<u32>::new());
        assert_eq!(q.remaining(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
