//! A small deterministic random-number generator for trace sampling.
//!
//! The conformance checker's simulation mode (§3.5.2) only needs reproducible uniform
//! choices — which initial state to start from, which enabled action to take — so rather
//! than depending on the `rand` crate (unavailable in the offline build environment) the
//! checker ships this SplitMix64 generator.  SplitMix64 passes BigCrush, is seedable from
//! a single `u64` (matching `SimulationOptions::seed`), and its whole state is one word,
//! so cloning a generator to fork a deterministic sub-stream is free.

/// A seedable SplitMix64 pseudo-random generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckerRng {
    state: u64,
}

impl CheckerRng {
    /// Creates a generator from a seed; equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        CheckerRng { state: seed }
    }

    /// The derived seed of one trace index of a batch run: the single source of truth
    /// shared by [`CheckerRng::for_trace`] and by callers that record the value as a
    /// schedule identity (`remix-core`'s `ShrunkDivergence::schedule_seed`).
    pub fn trace_seed(seed: u64, index: u64) -> u64 {
        seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Derives the generator for one trace index of a batch run.
    ///
    /// Both the conformance checker's parallel replay and the guided explorer sample
    /// trace `index` from this sub-stream, so a batch is reproducible for a `(seed,
    /// index)` pair regardless of how many workers stripe the index space (§3.5.2's
    /// sampling loop, parallelized).
    pub fn for_trace(seed: u64, index: u64) -> Self {
        CheckerRng::seed_from_u64(Self::trace_seed(seed, index))
    }

    /// Returns the next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniform index in `[0, bound)`; `bound` must be non-zero.
    pub fn index(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "index bound must be non-zero");
        (self.next_u64() % bound as u64) as usize
    }

    /// Returns a uniformly chosen element of `slice`, or `None` when it is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.index(slice.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = CheckerRng::seed_from_u64(42);
        let mut b = CheckerRng::seed_from_u64(42);
        let mut c = CheckerRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn index_stays_in_bounds_and_covers_the_range() {
        let mut rng = CheckerRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let i = rng.index(5);
            assert!(i < 5);
            seen[i] = true;
        }
        assert!(
            seen.iter().all(|s| *s),
            "all indices should appear in 200 draws"
        );
    }

    #[test]
    fn choose_handles_empty_and_singleton() {
        let mut rng = CheckerRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        assert_eq!(rng.choose(&[9]), Some(&9));
    }
}
