//! Bounded breadth-first state corpora for analysis passes.
//!
//! The `remix-analyze` passes (effect audit, commute oracle) need a representative,
//! deterministic sample of reachable states to observe transitions on.  This module
//! provides a deliberately simple driver: a plain breadth-first walk of the
//! specification's state graph, deduplicated on full states, bounded by a state count
//! and a depth — no symmetry, no partial-order reduction, no invariant checking.  The
//! reductions are exactly what the analyses are auditing, so the corpus must be built
//! without them; for the small bounded configurations analyses run on, the naive walk
//! is cheap.

use std::collections::HashSet;

use remix_spec::{Spec, SpecState};

/// Bounds for [`corpus`]: both limits apply, whichever is hit first.
#[derive(Debug, Clone, Copy)]
pub struct CorpusOptions {
    /// Maximum number of distinct states collected (initial states included).
    pub max_states: usize,
    /// Maximum BFS depth expanded (initial states are depth 0).
    pub max_depth: usize,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            max_states: 20_000,
            max_depth: 64,
        }
    }
}

/// Collects a deterministic, deduplicated corpus of reachable states by bounded BFS.
///
/// States are returned in discovery order (level by level, enumeration order within a
/// level), so the corpus is a function of the specification and the bounds alone.
/// Reductions (symmetry, sleep sets) are intentionally not applied: analysis passes
/// audit the declarations those reductions rely on.
pub fn corpus<S: SpecState>(spec: &Spec<S>, opts: CorpusOptions) -> Vec<S> {
    let mut seen: HashSet<S> = HashSet::new();
    let mut out: Vec<S> = Vec::new();
    let mut frontier: Vec<S> = Vec::new();
    for init in &spec.init {
        if out.len() >= opts.max_states {
            break;
        }
        if seen.insert(init.clone()) {
            out.push(init.clone());
            frontier.push(init.clone());
        }
    }
    let mut depth = 0;
    while !frontier.is_empty() && depth < opts.max_depth && out.len() < opts.max_states {
        let mut next_frontier = Vec::new();
        'level: for state in &frontier {
            for (_, child) in spec.successors(state) {
                if out.len() >= opts.max_states {
                    break 'level;
                }
                if seen.insert(child.clone()) {
                    out.push(child.clone());
                    next_frontier.push(child);
                }
            }
        }
        frontier = next_frontier;
        depth += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    use remix_spec::{
        ActionDef, ActionInstance, Granularity, ModuleId, ModuleSpec, SpecState, Value,
    };

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Counter(u32);

    impl SpecState for Counter {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, Value> {
            let mut m = BTreeMap::new();
            if vars.contains(&"n") {
                m.insert("n".to_owned(), Value::from(self.0));
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["n"]
        }
    }

    fn chain_spec(max: u32) -> Spec<Counter> {
        let m = ModuleId("Chain");
        let inc = ActionDef::new(
            "Inc",
            m,
            Granularity::Baseline,
            vec!["n"],
            vec!["n"],
            move |s: &Counter| {
                if s.0 < max {
                    vec![ActionInstance::new(
                        format!("Inc({})", s.0),
                        Counter(s.0 + 1),
                    )]
                } else {
                    vec![]
                }
            },
        );
        Spec::new(
            "chain",
            vec![Counter(0)],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![inc])],
            vec![],
        )
    }

    #[test]
    fn corpus_is_deduped_and_bounded() {
        let spec = chain_spec(10);
        let all = corpus(
            &spec,
            CorpusOptions {
                max_states: 1_000,
                max_depth: 64,
            },
        );
        assert_eq!(all.len(), 11, "0..=10, each exactly once");
        let capped = corpus(
            &spec,
            CorpusOptions {
                max_states: 3,
                max_depth: 64,
            },
        );
        assert_eq!(capped.len(), 3);
        let shallow = corpus(
            &spec,
            CorpusOptions {
                max_states: 1_000,
                max_depth: 0,
            },
        );
        assert_eq!(shallow.len(), 1, "depth 0 keeps only inits");
    }

    #[test]
    fn corpus_is_deterministic() {
        let spec = chain_spec(6);
        let opts = CorpusOptions::default();
        assert_eq!(corpus(&spec, opts), corpus(&spec, opts));
    }
}
