//! Instrumented synchronization substrate for the parallel engine.
//!
//! Every lock, condvar and atomic the checker uses goes through this module — it is
//! the **only** file in the workspace allowed to name `std::sync` primitives directly
//! (the `remix-analyze` concurrency lint enforces this; `// sync-exempt:` marks the
//! two leaf exceptions in `remix-spec`, which sits below this crate).  Centralizing
//! the substrate buys three things:
//!
//! 1. **A declared lock hierarchy.**  [`OrderedMutex`]`<R>` / [`OrderedRwLock`]`<R>`
//!    carry a compile-time rank marker `R:`[`LockRank`].  The convention is
//!    *outermost-first*: a thread may acquire a lock of rank `r` only while every
//!    lock it already holds has rank strictly **greater** than `r`.  Written in the
//!    inner-to-outer direction the engine's hierarchy reads
//!    `shard < coverage < por < mailbox < refine-lsets < results < frontier-sleeps
//!    < frontier < spill < panic-slot < gate` — the store shard is the innermost
//!    lock (acquired last, with everything else already held), the pool gate the
//!    outermost (always acquired with nothing held).
//! 2. **A lock-order audit.**  Under `REMIX_SYNC_AUDIT=1` (or a programmatic
//!    [`audit::session`]) every acquisition records the per-thread held-lock stack
//!    and an acquisition edge `held-site → acquired-site` into a global lock-order
//!    graph.  Rank inversions are flagged immediately with the offending stack;
//!    cycles in the site graph are reported with the witness stacks of **both**
//!    directions ([`AuditReport::cycles`]).  `remix-analyze` turns the report into
//!    soundness findings.
//! 3. **Schedule perturbation.**  [`perturb::install`] arms a seeded PRNG that
//!    injects `yield_now`/short-sleep calls at every instrumented sync point
//!    ([`perturb_point`]), so the determinism oracle can shake out
//!    schedule-dependent results with a replayable seed.
//!
//! When neither the audit nor the fuzzer is armed, every instrumented operation
//! reduces to **one relaxed atomic load and a predictable branch** on top of the
//! raw `std::sync` operation — the zero-cost passthrough benchmarked by
//! `BENCH_table5.json` staying within runner noise of the pre-instrumentation rows.
//!
//! Poisoning policy lives here too, in exactly one place: [`lock_or_recover`] (and
//! its RwLock siblings) treat a poisoned lock as recoverable, because every
//! engine-side critical section leaves shared state consistent at every await-free
//! point and worker panics are separately caught and re-raised by the pool (see
//! `bfs::pool_worker`).  All `Ordered*` acquisition methods route through it.

// The one sanctioned raw-sync import site (see the module docs above).
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard, TryLockError};
use std::time::Duration;

// Re-exported under their std names so engine files write `sync::AtomicU64` etc.;
// plain atomics carry no lock rank (they never block), but importing them through
// this module keeps the raw-sync lint rule simple and total.
pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicU8, AtomicUsize, Ordering};

/// A compile-time lock rank: the marker type parameter of [`OrderedMutex`] /
/// [`OrderedRwLock`].
///
/// Acquisition is legal only while every held lock has a **strictly greater** rank
/// (outer locks are taken first).  `NAME` is the default site label used in audit
/// edges and findings.
pub trait LockRank {
    /// Position in the hierarchy; smaller is more deeply nested (acquired later).
    const RANK: u8;
    /// Default site label for audit edges and findings.
    const NAME: &'static str;
}

macro_rules! declare_rank {
    ($(#[$doc:meta])* $name:ident, $rank:expr, $label:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy)]
        pub struct $name;
        impl LockRank for $name {
            const RANK: u8 = $rank;
            const NAME: &'static str = $label;
        }
    };
}

declare_rank!(
    /// Innermost: one stripe of the discovered-state store.  Acquired during
    /// successor merges while frontier read locks (and, on the drain path, a
    /// mailbox guard's *contents*, already released) are held; acquires nothing
    /// nested (spill flushes inside the shard do file I/O and atomics only).
    ShardRank, 0, "store.shard"
);
declare_rank!(
    /// The action-coverage map stripe; leaf — its critical sections touch only the
    /// map behind it.
    CoverageRank, 10, "coverage.stripe"
);
declare_rank!(
    /// The POR footprint table (`label → effect`); read/written during frontier
    /// expansion while the frontier read locks are held.
    PorEffectsRank, 20, "por.footprints"
);
declare_rank!(
    /// One owner-routed successor mailbox; pushed to mid-expansion (frontier locks
    /// held), drained before the owner takes its shard locks.
    MailboxRank, 30, "bfs.mailbox"
);
declare_rank!(
    /// The refinement checker's per-state label-set map; read by expansion
    /// post-processing, written by the sequential level merge.
    RefineLsetsRank, 40, "refine.lsets"
);
declare_rank!(
    /// One worker's per-level result slot; written by the worker after its frontier
    /// guards drop, read by the coordinator between cycles.
    ResultsRank, 50, "bfs.results"
);
declare_rank!(
    /// The published frontier's index-aligned sleep sets; read-held by workers for a
    /// whole expansion cycle, written by the coordinator while workers are parked.
    FrontierSleepsRank, 60, "bfs.frontier_sleeps"
);
declare_rank!(
    /// The published frontier itself; same holding pattern as the sleep sets but
    /// acquired first (it is the outer of the two).
    FrontierRank, 70, "bfs.frontier"
);
declare_rank!(
    /// Reserved for the out-of-core tier's disk-queue coordination (the spill paths
    /// are currently atomics + thread-confined files); also the designated "outer"
    /// rank of the seeded rank-inversion regression.
    SpillRank, 80, "spill.queue"
);
declare_rank!(
    /// The pool's first-worker-panic slot; taken with nothing else held.
    PanicSlotRank, 90, "bfs.worker_panic"
);
declare_rank!(
    /// Outermost: the worker-pool gate (generation + remaining counters) that the
    /// pool condvars wait on.  Always acquired with an empty held-set.
    GateRank, 100, "bfs.gate"
);

/// The single poisoning policy: recover the guard from a poisoned mutex.
///
/// A poisoned lock means some thread panicked while holding it.  Engine critical
/// sections keep their shared structures consistent at every unwind edge, and the
/// worker pool separately catches, records and re-raises worker panics — so
/// continuing with the recovered guard is sound and keeps a single panic from
/// cascading into every other thread.  Every `Ordered*` acquisition routes through
/// this helper (or its RwLock siblings below); nothing else in the workspace may
/// match on `PoisonError`.
pub fn lock_or_recover<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`lock_or_recover`] for `RwLock` read guards — same policy, same rationale.
pub fn read_or_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// [`lock_or_recover`] for `RwLock` write guards — same policy, same rationale.
pub fn write_or_recover<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

// ---------------------------------------------------------------------------
// Audit gate: one relaxed load on the hot path, lazily initialized from the
// REMIX_SYNC_AUDIT environment variable, forced on while a session is live.
// ---------------------------------------------------------------------------

const GATE_OFF: u8 = 0;
const GATE_ON: u8 = 1;
const GATE_UNINIT: u8 = 2;

static AUDIT_GATE: AtomicU8 = AtomicU8::new(GATE_UNINIT);
static AUDIT_SESSIONS: AtomicUsize = AtomicUsize::new(0);

#[inline]
fn audit_on() -> bool {
    // ordering: Relaxed — the gate is a monotonic hint; acquisitions that race a
    // session toggle may miss (or spuriously take) the slow path, which only
    // affects what the audit observes, never engine correctness.
    match AUDIT_GATE.load(Ordering::Relaxed) {
        GATE_OFF => false,
        GATE_ON => true,
        _ => init_gate(),
    }
}

#[cold]
fn init_gate() -> bool {
    let env = matches!(
        std::env::var("REMIX_SYNC_AUDIT").as_deref(),
        Ok("1") | Ok("true") | Ok("on")
    );
    // ordering: Relaxed — see audit_on; recompute_gate below re-derives the value
    // whenever sessions begin or end, so a racy double-init is idempotent.
    let on = env || AUDIT_SESSIONS.load(Ordering::Relaxed) > 0;
    AUDIT_GATE.store(
        if on { GATE_ON } else { GATE_OFF },
        Ordering::Relaxed, // ordering: Relaxed — hint only, see audit_on.
    );
    on
}

fn recompute_gate() {
    AUDIT_GATE.store(GATE_UNINIT, Ordering::Relaxed); // ordering: Relaxed — hint only.
    init_gate();
}

// ---------------------------------------------------------------------------
// Audit state: per-thread held-lock stacks plus the global lock-order graph.
// ---------------------------------------------------------------------------

thread_local! {
    /// The thread's held locks, innermost (most recently acquired) last.  Entries
    /// carry the stack snapshot active when they were acquired so a later rank
    /// violation can show *both* acquisition contexts.
    static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
}

#[derive(Clone)]
struct HeldLock {
    rank: u8,
    site: &'static str,
    /// Site names (outer→inner) held when this lock was acquired, itself included.
    stack: Vec<&'static str>,
}

/// One observed acquisition-order edge: `from` was held while `to` was acquired.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderEdge {
    /// Site name of the already-held lock.
    pub from: String,
    /// Site name of the lock being acquired.
    pub to: String,
    /// Rank of the held lock.
    pub from_rank: u8,
    /// Rank of the acquired lock.
    pub to_rank: u8,
    /// Witness of the first observation of this edge.
    pub witness: LockWitness,
}

/// The context of one audited acquisition: which thread, holding which stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockWitness {
    /// Debug id (and name, when set) of the acquiring thread.
    pub thread: String,
    /// Held-lock site names outer→inner at the acquisition, the acquired site last.
    pub stack: Vec<String>,
}

/// A rank-order violation: a lock was acquired while a lock of equal or inner
/// (smaller-or-equal) rank was already held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankViolation {
    /// Site of the held lock that makes the acquisition illegal.
    pub held_site: String,
    /// Rank of the held lock.
    pub held_rank: u8,
    /// Stack snapshot from when the held lock itself was acquired.
    pub held_stack: Vec<String>,
    /// Site of the lock being acquired.
    pub acquired_site: String,
    /// Rank of the lock being acquired.
    pub acquired_rank: u8,
    /// The offending acquisition's context (thread + full held stack).
    pub witness: LockWitness,
}

/// A cycle in the lock-order graph, with one witness stack per edge — for the
/// canonical two-lock inversion that is exactly "both witness stacks".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderCycle {
    /// The sites along the cycle (first repeated implicitly).
    pub sites: Vec<String>,
    /// The witnesses of each edge `sites[i] → sites[(i+1) % len]`.
    pub witnesses: Vec<LockWitness>,
}

#[derive(Default)]
struct AuditCore {
    edges: BTreeMap<(&'static str, &'static str), (u8, u8, LockWitness)>,
    violations: Vec<RankViolation>,
    locks_seen: BTreeSet<&'static str>,
    acquisitions: u64,
}

static AUDIT_CORE: Mutex<AuditCore> = Mutex::new(AuditCore {
    edges: BTreeMap::new(),
    violations: Vec::new(),
    locks_seen: BTreeSet::new(),
    acquisitions: 0,
});

fn thread_label() -> String {
    let t = std::thread::current();
    match t.name() {
        Some(name) => format!("{name} ({:?})", t.id()),
        None => format!("{:?}", t.id()),
    }
}

/// Records one successful acquisition; returns `true` when it was audited (so the
/// guard knows to pop on release).
fn on_acquired(rank: u8, site: &'static str) -> bool {
    if !audit_on() {
        return false;
    }
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        let stack_now: Vec<&'static str> = held
            .iter()
            .map(|h| h.site)
            .chain(std::iter::once(site))
            .collect();
        {
            let mut core = lock_or_recover(&AUDIT_CORE);
            core.acquisitions += 1;
            core.locks_seen.insert(site);
            let witness = LockWitness {
                thread: thread_label(),
                stack: stack_now.iter().map(|s| s.to_string()).collect(),
            };
            for h in held.iter() {
                core.edges
                    .entry((h.site, site))
                    .or_insert_with(|| (h.rank, rank, witness.clone()));
            }
            // One violation per offending (held, acquired) pair: the innermost
            // held lock with rank <= the acquired rank is the decisive witness.
            if let Some(bad) = held.iter().rev().find(|h| h.rank <= rank) {
                let duplicate = core
                    .violations
                    .iter()
                    .any(|v| v.held_site == bad.site && v.acquired_site == site);
                if !duplicate {
                    let v = RankViolation {
                        held_site: bad.site.to_string(),
                        held_rank: bad.rank,
                        held_stack: bad.stack.iter().map(|s| s.to_string()).collect(),
                        acquired_site: site.to_string(),
                        acquired_rank: rank,
                        witness,
                    };
                    core.violations.push(v);
                }
            }
        }
        held.push(HeldLock {
            rank,
            site,
            stack: stack_now,
        });
    });
    true
}

/// Pops the matching held-lock entry (releases may legally be non-LIFO, so the
/// scan runs from the innermost end).
fn on_released(site: &'static str) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|h| h.site == site) {
            held.remove(pos);
        }
    });
}

/// Programmatic audit control and the audit report.
pub mod audit {
    use super::*;

    static SESSION_LOCK: Mutex<()> = Mutex::new(());

    /// An exclusive audit window: clears the global lock-order graph, enables the
    /// audit for the process, and hands the (serialized) caller a handle to read
    /// the report back out.  Concurrent sessions queue on an internal mutex, so
    /// audited tests can run under the default parallel test harness without
    /// observing each other's edges — as long as the *engine runs under audit*
    /// happen within a session.
    pub fn session() -> AuditSession {
        let guard = lock_or_recover(&SESSION_LOCK);
        *lock_or_recover(&AUDIT_CORE) = AuditCore::default();
        // ordering: Relaxed — the session mutex above already orders sessions;
        // the counter only feeds the advisory audit gate.
        AUDIT_SESSIONS.fetch_add(1, Ordering::Relaxed);
        recompute_gate();
        AuditSession { _serial: guard }
    }

    /// RAII handle of an audit [`session`]; dropping it disables the audit (unless
    /// `REMIX_SYNC_AUDIT` keeps it on) and releases the session slot.
    pub struct AuditSession {
        _serial: MutexGuard<'static, ()>,
    }

    impl AuditSession {
        /// Snapshots the lock-order graph accumulated since the session began.
        pub fn report(&self) -> AuditReport {
            let core = lock_or_recover(&AUDIT_CORE);
            AuditReport {
                acquisitions: core.acquisitions,
                locks_seen: core.locks_seen.iter().map(|s| s.to_string()).collect(),
                edges: core
                    .edges
                    .iter()
                    .map(
                        |(&(from, to), &(from_rank, to_rank, ref witness))| OrderEdge {
                            from: from.to_string(),
                            to: to.to_string(),
                            from_rank,
                            to_rank,
                            witness: witness.clone(),
                        },
                    )
                    .collect(),
                rank_violations: core.violations.clone(),
            }
        }
    }

    impl Drop for AuditSession {
        fn drop(&mut self) {
            // ordering: Relaxed — paired with the fetch_add in session; the
            // session mutex provides the actual ordering.
            AUDIT_SESSIONS.fetch_sub(1, Ordering::Relaxed);
            recompute_gate();
        }
    }
}

/// Everything one audit window observed: the acquisition census, the lock-order
/// graph, rank violations, and (derived) cycles.
#[derive(Debug, Clone, Default)]
pub struct AuditReport {
    /// Total audited acquisitions in the window.
    pub acquisitions: u64,
    /// Every distinct lock site observed.
    pub locks_seen: Vec<String>,
    /// The acquisition-order edges (held → acquired), first witness each.
    pub edges: Vec<OrderEdge>,
    /// Rank-order violations, at most one per (held, acquired) site pair.
    pub rank_violations: Vec<RankViolation>,
}

impl AuditReport {
    /// `true` when the window saw no rank violations and no order cycles.
    pub fn is_clean(&self) -> bool {
        self.rank_violations.is_empty() && self.cycles().is_empty()
    }

    /// Cycles in the site-level lock-order graph, each with the witness stack of
    /// every edge along it.  Cycles are deduplicated by their site *set*, so the
    /// two directions of a two-lock inversion report as one cycle carrying both
    /// witness stacks.
    pub fn cycles(&self) -> Vec<OrderCycle> {
        let mut adjacency: BTreeMap<&str, Vec<&OrderEdge>> = BTreeMap::new();
        for edge in &self.edges {
            adjacency.entry(edge.from.as_str()).or_default().push(edge);
        }
        let mut seen_keys: BTreeSet<Vec<String>> = BTreeSet::new();
        let mut cycles = Vec::new();
        // For each edge a→b, a path b→…→a closes a cycle.  The graphs here are a
        // handful of sites, so a per-edge DFS is plenty.
        for edge in &self.edges {
            if let Some(path) = self.path(&adjacency, &edge.to, &edge.from) {
                let mut sites: Vec<String> = vec![edge.from.clone()];
                let mut witnesses: Vec<LockWitness> = vec![edge.witness.clone()];
                for e in &path {
                    sites.push(e.from.clone());
                    witnesses.push(e.witness.clone());
                }
                // Rotate so the path-edge list aligns: sites[i] → sites[i+1] is
                // witnessed by witnesses[i]; the final edge closes back to sites[0].
                let mut key: Vec<String> = sites.clone();
                key.sort();
                if seen_keys.insert(key) {
                    cycles.push(OrderCycle { sites, witnesses });
                }
            }
        }
        cycles
    }

    fn path<'a>(
        &'a self,
        adjacency: &BTreeMap<&str, Vec<&'a OrderEdge>>,
        from: &str,
        to: &str,
    ) -> Option<Vec<&'a OrderEdge>> {
        // Iterative DFS returning the edge path from → … → to (inclusive).
        let mut stack: Vec<(&str, Vec<&'a OrderEdge>)> = vec![(from, Vec::new())];
        let mut visited: BTreeSet<&str> = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path);
            }
            if !visited.insert(node) {
                continue;
            }
            for edge in adjacency.get(node).into_iter().flatten() {
                let mut next = path.clone();
                next.push(edge);
                stack.push((edge.to.as_str(), next));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Schedule perturbation: a seeded PRNG injecting yields/sleeps at sync points.
// ---------------------------------------------------------------------------

/// Seeded schedule perturbation for the determinism oracle.
pub mod perturb {
    use super::*;

    static SEED: AtomicU64 = AtomicU64::new(0);
    static EPOCH: AtomicU64 = AtomicU64::new(0);
    static THREAD_SALT: AtomicU64 = AtomicU64::new(0);
    static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    thread_local! {
        /// (epoch, splitmix64 state); reseeded when the installed epoch moves.
        static RNG: RefCell<(u64, u64)> = const { RefCell::new((0, 0)) };
        static SALT: RefCell<Option<u64>> = const { RefCell::new(None) };
    }

    /// Arms schedule perturbation with `seed` for the lifetime of the returned
    /// guard.  Guards serialize on an internal mutex so overlapping fuzz runs
    /// cannot smear each other's seeds; a zero seed is treated as 1 (zero means
    /// "off" internally).
    pub fn install(seed: u64) -> PerturbGuard {
        let guard = lock_or_recover(&INSTALL_LOCK);
        // ordering: Relaxed — perturbation is timing-only; threads may observe the
        // new seed a beat late without affecting any engine result.
        EPOCH.fetch_add(1, Ordering::Relaxed);
        SEED.store(seed.max(1), Ordering::Relaxed); // ordering: Relaxed — as above.
        PerturbGuard { _serial: guard }
    }

    /// RAII handle of [`install`]; dropping it disarms perturbation.
    pub struct PerturbGuard {
        _serial: MutexGuard<'static, ()>,
    }

    impl Drop for PerturbGuard {
        fn drop(&mut self) {
            SEED.store(0, Ordering::Relaxed); // ordering: Relaxed — timing-only.
            EPOCH.fetch_add(1, Ordering::Relaxed); // ordering: Relaxed — timing-only.
        }
    }

    #[inline]
    pub(super) fn armed() -> bool {
        // ordering: Relaxed — a stale read only delays/extends perturbation.
        SEED.load(Ordering::Relaxed) != 0
    }

    #[cold]
    pub(super) fn hit() {
        let seed = SEED.load(Ordering::Relaxed); // ordering: Relaxed — timing-only.
        if seed == 0 {
            return;
        }
        let epoch = EPOCH.load(Ordering::Relaxed); // ordering: Relaxed — timing-only.
        let salt = SALT.with(|s| {
            *s.borrow_mut().get_or_insert_with(|| {
                // ordering: Relaxed — the counter only needs uniqueness, which the
                // atomic RMW guarantees regardless of ordering.
                THREAD_SALT.fetch_add(1, Ordering::Relaxed)
            })
        });
        let draw = RNG.with(|rng| {
            let mut rng = rng.borrow_mut();
            if rng.0 != epoch {
                *rng = (epoch, splitmix64_seed(seed, salt));
            }
            let (next, draw) = splitmix64(rng.1);
            rng.1 = next;
            draw
        });
        // Mostly cheap yields, occasionally a real (short) sleep: enough to move
        // park/steal/merge interleavings around without stalling the suite.
        match draw % 64 {
            0 => std::thread::sleep(Duration::from_micros(200)),
            1..=31 => std::thread::yield_now(),
            _ => {}
        }
    }

    fn splitmix64_seed(seed: u64, salt: u64) -> u64 {
        seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    fn splitmix64(state: u64) -> (u64, u64) {
        let next = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = next;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (next, z ^ (z >> 31))
    }
}

/// A schedule-perturbation point: when a fuzz seed is installed, maybe yield or
/// sleep here.  Every instrumented lock/condvar operation calls this; engine code
/// may add explicit points at logically interesting races (e.g. stop-flag
/// publication).  One relaxed load when disarmed.
#[inline]
pub fn perturb_point() {
    if perturb::armed() {
        perturb::hit();
    }
}

// ---------------------------------------------------------------------------
// The ordered primitives.
// ---------------------------------------------------------------------------

/// A [`Mutex`] with a declared [`LockRank`] and audited acquisitions.
///
/// `lock` recovers from poisoning via [`lock_or_recover`]; `lock_counting`
/// reproduces the store's contention-counting pattern (try first, count a miss,
/// then block) under the same audit.
pub struct OrderedMutex<R: LockRank, T> {
    site: &'static str,
    inner: Mutex<T>,
    _rank: PhantomData<R>,
}

impl<R: LockRank, T> OrderedMutex<R, T> {
    /// A new mutex labelled with the rank's default site name.
    pub fn new(value: T) -> Self {
        Self::with_site(R::NAME, value)
    }

    /// A new mutex with an explicit audit site label (e.g. seeded fixtures).
    pub fn with_site(site: &'static str, value: T) -> Self {
        OrderedMutex {
            site,
            inner: Mutex::new(value),
            _rank: PhantomData,
        }
    }

    /// Acquires the lock (poison-recovering), recording the acquisition when the
    /// audit is armed.
    pub fn lock(&self) -> OrderedMutexGuard<'_, R, T> {
        perturb_point();
        let guard = lock_or_recover(&self.inner);
        self.wrap(guard)
    }

    /// The contention-counting acquisition: try first; on `WouldBlock` bump
    /// `contended` (observability only) and block.  Used by the store shards and
    /// the coverage stripes so `CheckStats::shard_contention` keeps its meaning.
    pub fn lock_counting(&self, contended: &AtomicU64) -> OrderedMutexGuard<'_, R, T> {
        perturb_point();
        let guard = match self.inner.try_lock() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                // ordering: Relaxed — a statistics counter; nothing reads it for
                // control flow, and the final report reads it after joins.
                contended.fetch_add(1, Ordering::Relaxed);
                lock_or_recover(&self.inner)
            }
            Err(TryLockError::Poisoned(poisoned)) => poisoned.into_inner(),
        };
        self.wrap(guard)
    }

    fn wrap<'a>(&'a self, guard: MutexGuard<'a, T>) -> OrderedMutexGuard<'a, R, T> {
        let audited = on_acquired(R::RANK, self.site);
        OrderedMutexGuard {
            guard: Some(guard),
            site: self.site,
            audited,
            _rank: PhantomData,
        }
    }
}

impl<R: LockRank, T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<R, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("site", &self.site)
            .field("rank", &R::RANK)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard of an [`OrderedMutex`]; pops the audit held-stack on drop.
pub struct OrderedMutexGuard<'a, R: LockRank, T> {
    guard: Option<MutexGuard<'a, T>>,
    site: &'static str,
    audited: bool,
    _rank: PhantomData<R>,
}

impl<R: LockRank, T> Deref for OrderedMutexGuard<'_, R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<R: LockRank, T> DerefMut for OrderedMutexGuard<'_, R, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

impl<R: LockRank, T> Drop for OrderedMutexGuard<'_, R, T> {
    fn drop(&mut self) {
        if self.guard.is_some() {
            if self.audited {
                on_released(self.site);
            }
            perturb_point();
        }
    }
}

/// A [`Condvar`] paired with [`OrderedMutex`] guards: waiting releases the guard's
/// audit entry and re-records it on wake, so held-stack bookkeeping stays exact
/// across parks.
pub struct OrderedCondvar {
    inner: Condvar,
}

impl Default for OrderedCondvar {
    fn default() -> Self {
        Self::new()
    }
}

impl OrderedCondvar {
    /// A new condition variable.
    pub fn new() -> Self {
        OrderedCondvar {
            inner: Condvar::new(),
        }
    }

    /// Blocks until notified, releasing and re-acquiring the ordered guard.
    pub fn wait<'a, R: LockRank, T>(
        &self,
        mut guard: OrderedMutexGuard<'a, R, T>,
    ) -> OrderedMutexGuard<'a, R, T> {
        let site = guard.site;
        if guard.audited {
            on_released(site);
        }
        let inner = guard.guard.take().expect("wait on a live guard");
        perturb_point();
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(inner);
        guard.audited = on_acquired(R::RANK, site);
        guard
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        perturb_point();
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        perturb_point();
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for OrderedCondvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OrderedCondvar")
    }
}

/// An [`RwLock`] with a declared [`LockRank`] and audited acquisitions (reads and
/// writes both count: read-side deadlocks through a writer in between are real).
pub struct OrderedRwLock<R: LockRank, T> {
    site: &'static str,
    inner: RwLock<T>,
    _rank: PhantomData<R>,
}

impl<R: LockRank, T> OrderedRwLock<R, T> {
    /// A new rwlock labelled with the rank's default site name.
    pub fn new(value: T) -> Self {
        Self::with_site(R::NAME, value)
    }

    /// A new rwlock with an explicit audit site label.
    pub fn with_site(site: &'static str, value: T) -> Self {
        OrderedRwLock {
            site,
            inner: RwLock::new(value),
            _rank: PhantomData,
        }
    }

    /// Acquires a shared read guard (poison-recovering, audited).
    pub fn read(&self) -> OrderedReadGuard<'_, R, T> {
        perturb_point();
        let guard = read_or_recover(&self.inner);
        let audited = on_acquired(R::RANK, self.site);
        OrderedReadGuard {
            guard,
            site: self.site,
            audited,
            _rank: PhantomData,
        }
    }

    /// Acquires the exclusive write guard (poison-recovering, audited).
    pub fn write(&self) -> OrderedWriteGuard<'_, R, T> {
        perturb_point();
        let guard = write_or_recover(&self.inner);
        let audited = on_acquired(R::RANK, self.site);
        OrderedWriteGuard {
            guard,
            site: self.site,
            audited,
            _rank: PhantomData,
        }
    }
}

impl<R: LockRank, T: std::fmt::Debug> std::fmt::Debug for OrderedRwLock<R, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("site", &self.site)
            .field("rank", &R::RANK)
            .field("inner", &self.inner)
            .finish()
    }
}

/// Read guard of an [`OrderedRwLock`].
pub struct OrderedReadGuard<'a, R: LockRank, T> {
    guard: RwLockReadGuard<'a, T>,
    site: &'static str,
    audited: bool,
    _rank: PhantomData<R>,
}

impl<R: LockRank, T> Deref for OrderedReadGuard<'_, R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R: LockRank, T> Drop for OrderedReadGuard<'_, R, T> {
    fn drop(&mut self) {
        if self.audited {
            on_released(self.site);
        }
        perturb_point();
    }
}

/// Write guard of an [`OrderedRwLock`].
pub struct OrderedWriteGuard<'a, R: LockRank, T> {
    guard: RwLockWriteGuard<'a, T>,
    site: &'static str,
    audited: bool,
    _rank: PhantomData<R>,
}

impl<R: LockRank, T> Deref for OrderedWriteGuard<'_, R, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<R: LockRank, T> DerefMut for OrderedWriteGuard<'_, R, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<R: LockRank, T> Drop for OrderedWriteGuard<'_, R, T> {
    fn drop(&mut self) {
        if self.audited {
            on_released(self.site);
        }
        perturb_point();
    }
}

// ---------------------------------------------------------------------------
// The seeded rank-inversion regression.
// ---------------------------------------------------------------------------

/// The CI seeded regression: two threads acquire a `SpillRank`/`ShardRank` lock
/// pair in opposite orders inside one audit session and return the report, which
/// must contain the rank violation *and* the two-site cycle with both witness
/// stacks.  `remix-bench`'s concurrency artefact writes these findings with
/// `"seeded": true`; CI requires them.
pub fn seeded_rank_inversion() -> AuditReport {
    let session = audit::session();
    let outer: OrderedMutex<SpillRank, u32> = OrderedMutex::with_site("seeded.outer", 0);
    let inner: OrderedMutex<ShardRank, u32> = OrderedMutex::with_site("seeded.inner", 0);
    std::thread::scope(|scope| {
        // Thread one respects the hierarchy: outer (rank 80) before inner (rank 0).
        scope
            .spawn(|| {
                let _o = outer.lock();
                let _i = inner.lock();
            })
            .join()
            .expect("ordered thread");
        // Thread two inverts it: inner held while acquiring outer — the violation.
        scope
            .spawn(|| {
                let _i = inner.lock();
                let _o = outer.lock();
            })
            .join()
            .expect("inverted thread");
    });
    session.report()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guards_balance_the_held_stack() {
        // Whether or not a concurrent test's audit session has the gate on, every
        // drop pops exactly what its acquisition pushed: the thread-local held
        // stack is empty once the guards are gone.
        let m: OrderedMutex<ShardRank, i32> = OrderedMutex::new(7);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 8);
        HELD.with(|h| assert!(h.borrow().is_empty()));
    }

    #[test]
    fn ordered_acquisitions_audit_clean() {
        let session = audit::session();
        let gate: OrderedMutex<GateRank, ()> = OrderedMutex::new(());
        let frontier: OrderedRwLock<FrontierRank, Vec<u8>> = OrderedRwLock::new(vec![1]);
        let shard: OrderedMutex<ShardRank, ()> = OrderedMutex::new(());
        {
            let _g = gate.lock();
        }
        {
            let _f = frontier.read();
            let _s = shard.lock();
        }
        let report = session.report();
        // Other tests in this binary may interleave rank-correct acquisitions into
        // the session, so the assertions are existential, not exact-count.
        assert!(report.is_clean(), "rank-respecting orders must audit clean");
        assert!(report.acquisitions >= 3);
        assert!(report
            .edges
            .iter()
            .any(|e| e.from == "bfs.frontier" && e.to == "store.shard"));
    }

    #[test]
    fn rank_inversion_is_flagged_with_both_stacks() {
        let report = seeded_rank_inversion();
        assert_eq!(report.rank_violations.len(), 1);
        let v = &report.rank_violations[0];
        assert_eq!(v.held_site, "seeded.inner");
        assert_eq!(v.acquired_site, "seeded.outer");
        assert_eq!(
            v.witness.stack,
            vec!["seeded.inner".to_string(), "seeded.outer".to_string()]
        );
        let cycles = report.cycles();
        assert_eq!(cycles.len(), 1, "the two-site inversion closes one cycle");
        assert_eq!(cycles[0].witnesses.len(), 2, "both directions witnessed");
        assert!(!report.is_clean());
    }

    #[test]
    fn condvar_wait_keeps_held_stack_exact() {
        let session = audit::session();
        let gate: std::sync::Arc<OrderedMutex<GateRank, bool>> =
            std::sync::Arc::new(OrderedMutex::new(false));
        let cv: std::sync::Arc<OrderedCondvar> = std::sync::Arc::new(OrderedCondvar::new());
        let waiter = {
            let gate = std::sync::Arc::clone(&gate);
            let cv = std::sync::Arc::clone(&cv);
            std::thread::spawn(move || {
                let mut g = gate.lock();
                while !*g {
                    g = cv.wait(g);
                }
                HELD.with(|h| h.borrow().len())
            })
        };
        loop {
            let mut g = gate.lock();
            *g = true;
            cv.notify_all();
            drop(g);
            if waiter.is_finished() {
                break;
            }
            std::thread::yield_now();
        }
        assert_eq!(waiter.join().expect("waiter"), 1, "exactly the gate held");
        assert!(session.report().is_clean());
    }

    #[test]
    fn perturbation_is_seed_deterministic_per_thread() {
        // Two installs of the same seed step the same thread-local stream; the
        // test only asserts it runs and disarms — timing effects are the point,
        // determinism of *results* is the oracle's job.
        {
            let _g = perturb::install(42);
            for _ in 0..256 {
                perturb_point();
            }
        }
        assert!(!perturb::armed());
    }

    #[test]
    fn counting_lock_counts_contention_not_correctness() {
        let m: std::sync::Arc<OrderedMutex<CoverageRank, u64>> =
            std::sync::Arc::new(OrderedMutex::new(0));
        let contended = std::sync::Arc::new(AtomicU64::new(0));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let m = std::sync::Arc::clone(&m);
                let c = std::sync::Arc::clone(&contended);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        *m.lock_counting(&c) += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("worker");
        }
        assert_eq!(*m.lock(), 2000);
    }
}
