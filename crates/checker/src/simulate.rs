//! Bounded random simulation of a specification.
//!
//! The conformance checker (§3.5.2 of the paper) samples model-level traces by randomly
//! exploring the state space under a time budget and then replays them against the
//! implementation.  [`simulate`] produces such samples; every trace is a legal execution
//! of the specification (each step applies one enabled action).

use std::time::Instant;

use remix_spec::{Spec, SpecState, Trace};

use crate::options::SimulationOptions;
use crate::rng::CheckerRng;

/// Generates one random trace of at most `max_depth` transitions starting from a random
/// initial state.
///
/// Degenerate inputs are handled without panicking: a specification with no initial
/// states yields an empty trace, and `max_depth == 0` yields a trace holding the chosen
/// initial state alone (depth 0).
pub fn simulate_one<S: SpecState>(
    spec: &Spec<S>,
    max_depth: u32,
    rng: &mut CheckerRng,
) -> Trace<S> {
    if spec.init.is_empty() {
        return Trace::default();
    }
    let init = spec.init[rng.index(spec.init.len())].clone();
    let mut trace = Trace::from_init(init.clone());
    let mut current = init;
    for _ in 0..max_depth {
        let successors = spec.successors(&current);
        if successors.is_empty() {
            break;
        }
        let (label, next) = rng
            .choose(&successors)
            .expect("non-empty successors")
            .clone();
        trace.push(label, next.clone());
        current = next;
    }
    trace
}

/// Generates a batch of random traces under the given options.
///
/// Trace `i` of the batch is sampled from its own sub-stream
/// ([`CheckerRng::for_trace`]`(options.seed, i)`), and `options.workers` threads sample
/// disjoint stripes of the index space concurrently, merging in index order — so absent
/// a binding time budget the batch is byte-identical for every worker count (the same
/// parallelization contract as the conformance checker's replay, §3.5.2).  A binding
/// budget cuts each worker's stripe off at a scheduling-dependent index; at least one
/// trace (index 0) is always produced.
pub fn simulate<S: SpecState>(spec: &Spec<S>, options: &SimulationOptions) -> Vec<Trace<S>> {
    let start = Instant::now();
    let total = options.traces.max(1);
    let workers = options.workers.max(1).min(total);

    let run_stripe = |worker: usize| -> Vec<(usize, Trace<S>)> {
        let mut out = Vec::new();
        let mut index = worker;
        while index < total {
            if index > 0 {
                if let Some(budget) = options.time_budget {
                    if start.elapsed() >= budget {
                        break;
                    }
                }
            }
            let mut rng = CheckerRng::for_trace(options.seed, index as u64);
            out.push((index, simulate_one(spec, options.max_depth, &mut rng)));
            index += workers;
        }
        out
    };

    let mut indexed: Vec<(usize, Trace<S>)> = if workers == 1 {
        run_stripe(0)
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| scope.spawn(move || run_stripe(w)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("simulation worker panicked"))
                .collect()
        })
    };
    indexed.sort_by_key(|(index, _)| *index);
    indexed.into_iter().map(|(_, trace)| trace).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_spec::{ActionDef, ActionInstance, Granularity, ModuleId, ModuleSpec};
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct N(u32);

    impl SpecState for N {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
            let mut m = BTreeMap::new();
            if vars.contains(&"n") {
                m.insert("n".to_owned(), remix_spec::Value::from(self.0));
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["n"]
        }
    }

    fn branching_spec() -> Spec<N> {
        let m = ModuleId("Branch");
        let step = ActionDef::new(
            "Step",
            m,
            Granularity::Baseline,
            vec!["n"],
            vec!["n"],
            |s: &N| {
                if s.0 >= 64 {
                    return vec![];
                }
                vec![
                    ActionInstance::new(format!("Double({})", s.0), N(s.0 * 2 + 1)),
                    ActionInstance::new(format!("Inc({})", s.0), N(s.0 + 1)),
                ]
            },
        );
        Spec::new(
            "branch",
            vec![N(0)],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![step])],
            vec![],
        )
    }

    #[test]
    fn traces_are_legal_executions() {
        let spec = branching_spec();
        let mut rng = CheckerRng::seed_from_u64(7);
        let trace = simulate_one(&spec, 10, &mut rng);
        assert!(trace.depth() <= 10);
        // Every consecutive pair must be connected by some enabled action.
        for w in trace.steps.windows(2) {
            let successors = spec.successors(&w[0].state);
            assert!(successors.iter().any(|(_, s)| s == &w[1].state));
        }
    }

    #[test]
    fn simulation_is_deterministic_for_a_seed() {
        let spec = branching_spec();
        let opts = SimulationOptions {
            traces: 5,
            max_depth: 12,
            time_budget: None,
            seed: 99,
            workers: 1,
        };
        let a = simulate(&spec, &opts);
        let b = simulate(&spec, &opts);
        assert_eq!(a.len(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = branching_spec();
        let a = simulate(
            &spec,
            &SimulationOptions {
                traces: 3,
                max_depth: 12,
                time_budget: None,
                seed: 1,
                workers: 1,
            },
        );
        let b = simulate(
            &spec,
            &SimulationOptions {
                traces: 3,
                max_depth: 12,
                time_budget: None,
                seed: 2,
                workers: 1,
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn empty_init_yields_an_empty_trace() {
        let spec: Spec<N> = Spec::new("empty", vec![], vec![], vec![]);
        let mut rng = CheckerRng::seed_from_u64(1);
        let trace = simulate_one(&spec, 10, &mut rng);
        assert!(trace.is_empty());
        assert_eq!(trace.depth(), 0);
        // Batch sampling over the empty spec also terminates without panicking.
        let traces = simulate(&spec, &SimulationOptions::default());
        assert!(traces.iter().all(|t| t.is_empty()));
    }

    #[test]
    fn zero_max_depth_yields_the_initial_state_alone() {
        let spec = branching_spec();
        let mut rng = CheckerRng::seed_from_u64(2);
        let trace = simulate_one(&spec, 0, &mut rng);
        assert_eq!(trace.depth(), 0);
        assert_eq!(trace.steps.len(), 1);
        assert_eq!(trace.steps[0].action, "Init");
    }

    #[test]
    fn batches_are_identical_across_worker_counts() {
        let spec = branching_spec();
        let base = SimulationOptions {
            traces: 9,
            max_depth: 16,
            time_budget: None,
            seed: 0xFEED,
            workers: 1,
        };
        let one = simulate(&spec, &base);
        for workers in [2, 3, 8] {
            let many = simulate(
                &spec,
                &SimulationOptions {
                    workers,
                    ..base.clone()
                },
            );
            assert_eq!(one, many, "workers={workers}");
        }
    }

    #[test]
    fn terminal_states_end_traces() {
        let spec = branching_spec();
        let mut rng = CheckerRng::seed_from_u64(3);
        let trace = simulate_one(&spec, 1000, &mut rng);
        let last = trace.last_state().unwrap();
        assert!(last.0 >= 64 || trace.depth() == 1000);
    }
}
