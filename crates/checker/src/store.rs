//! The discovered-state store: the memory layer under every exploration engine.
//!
//! Earlier engines kept one `HashMap<Fingerprint, Entry>` per run whose entries held an
//! `Arc<S>` clone of the state, the *parent's fingerprint* (16 bytes, plus a second map
//! lookup per trace step) and a freshly allocated `String` action label — three heap
//! allocations and ~70 bytes of bookkeeping per discovered state before counting the
//! state itself.  This module replaces that layer with a [`StateStore`]: a lock-striped
//! **arena** of entries addressed by dense `u32` [`StateIndex`]es, with
//!
//! * the parent stored as an *index* instead of a fingerprint (4 bytes; parent-chain
//!   walks are array reads, not hash lookups),
//! * the action label stored as an interned [`LabelId`] (4 bytes; the label string is
//!   allocated once per *distinct* label per run, see [`remix_spec::LabelTable`]), and
//! * the state stored inline in the arena (no per-state `Arc`), or — in
//!   [`StoreMode::FingerprintOnly`] — not at all.
//!
//! # Backends
//!
//! [`StoreMode::Full`] (the compact full-state store) keeps every discovered state in
//! the arena, so counterexample traces are reconstructed by walking parent indices and
//! cloning states out — O(depth) with no successor re-evaluation.
//!
//! [`StoreMode::FingerprintOnly`] is the TLC-style memory-bounded backend: only the
//! 128-bit fingerprint, parent index and label id are kept (24 bytes of payload per
//! state, independent of the state type).  Traces are reconstructed on demand by
//! **bounded re-exploration**: the recorded `(parent index, label)` chain is replayed
//! forward through [`Spec::successors`], matching each step by label and fingerprint —
//! O(depth × branching) successor evaluations, paid only when a violation is actually
//! reported.  This is the backend for exhaustive runs whose state count, not state
//! size, is the binding constraint.
//!
//! Both backends are safe for concurrent insertion from many workers: the arena is
//! striped into power-of-two lock shards routed by the fingerprint's leading bits, and
//! a [`StateIndex`] packs `(local slot, shard)` so indices stay valid forever without
//! any cross-shard coordination.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::sync::{AtomicU64, AtomicUsize, OrderedMutex, OrderedMutexGuard, Ordering, ShardRank};

use remix_spec::{CanonFn, LabelId, LabelTable, Perm, Spec, SpecState, Trace, INIT_LABEL};

use crate::fingerprint::{fingerprint, Fingerprint};
use crate::spill::{self, SpillConfig, SpillCounters, SpillRun, SpillStats};

/// Which backend a run stores discovered states in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StoreMode {
    /// The compact full-state store: states live inline in the arena, traces are
    /// reconstructed by parent-index walks.  The default.
    #[default]
    Full,
    /// The TLC-style fingerprint-only store: full states are dropped after expansion;
    /// traces are reconstructed by bounded re-exploration along the recorded
    /// `(parent index, label)` chain.  Use for memory-bounded exhaustive runs.
    FingerprintOnly,
}

impl fmt::Display for StoreMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StoreMode::Full => "full",
            StoreMode::FingerprintOnly => "fingerprint-only",
        })
    }
}

impl StoreMode {
    /// The backend selected by the `REMIX_STORE_MODE` environment variable
    /// (`"fingerprint-only"` / `"fingerprint_only"` / `"full"`), defaulting to
    /// [`StoreMode::Full`] when unset or unrecognised.
    ///
    /// `CheckOptions::default()` and `RefineOptions::default()` start from this value,
    /// which is how CI runs the release-gated refinement and exploration suites once
    /// per backend without a per-test parameter.  Explicit `with_store_mode(..)` calls
    /// always win.
    pub fn from_env() -> StoreMode {
        match std::env::var("REMIX_STORE_MODE").as_deref() {
            Ok("fingerprint-only") | Ok("fingerprint_only") => StoreMode::FingerprintOnly,
            _ => StoreMode::Full,
        }
    }
}

/// Dense identifier of a discovered state: `(local slot << shard bits) | shard`.
///
/// `u32::MAX` is reserved as the no-parent sentinel, capping a run at just under 2^32
/// discovered states — far beyond what fits in memory at 24+ bytes per entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateIndex(pub u32);

/// The reserved parent marker of initial states.
const NO_PARENT: u32 = u32::MAX;

/// Fixed per-entry metadata: 24 bytes regardless of the state type.
struct SlotMeta {
    fp: Fingerprint,
    /// Packed [`StateIndex`] of the parent, or [`NO_PARENT`] for initial states.
    parent: u32,
    /// Interned label of the action that first discovered this state.
    label: LabelId,
}

/// One lock stripe of the arena.
struct StoreShard<S> {
    /// Fingerprint → local slot index (dedup map; values index `meta`/`states`).
    ///
    /// Under a memory budget this is the stripe's *delta table*: once it reaches its
    /// share of the budget it is flushed to an immutable sorted run in `runs` and
    /// restarted empty, so its resident size stays bounded while `len` keeps growing.
    map: HashMap<Fingerprint, u32>,
    /// Spilled portions of the dedup map: immutable sorted `(fingerprint, slot)` runs
    /// on disk, mutually disjoint with each other and with `map` by construction (a
    /// fingerprint is probed against every run before it may enter the delta table).
    /// Empty when no memory budget is configured.
    runs: Vec<SpillRun>,
    meta: Vec<SlotMeta>,
    /// Parallel to `meta` in [`StoreMode::Full`]; stays empty in
    /// [`StoreMode::FingerprintOnly`].
    states: Vec<S>,
    /// Parallel to `meta` under symmetry reduction (every insert then records the
    /// permutation that canonicalized the inserted state); stays empty otherwise.
    /// Mixing permuted and unpermuted inserts in one store is a caller bug.
    perms: Vec<Perm>,
}

struct ShardCell<S> {
    inner: OrderedMutex<ShardRank, StoreShard<S>>,
    /// Lock acquisitions on this stripe that found it already held.
    contention: AtomicU64,
}

/// The out-of-core plan of a budgeted store: where spill files go and when each
/// stripe's delta table gives way to a sorted run.
struct StoreSpill {
    /// Unique per-store directory holding every run (and frontier queue) file;
    /// removed when the store drops.
    dir: PathBuf,
    /// Delta-table entries per stripe before it is flushed to a run.
    flush_entries: usize,
    /// The configured budget, echoed into [`SpillStats`].
    budget_bytes: u64,
    counters: SpillCounters,
}

/// The lock-striped discovered-state arena.  See the module docs for the memory model.
pub struct StateStore<S> {
    shards: Vec<ShardCell<S>>,
    mode: StoreMode,
    /// `log2(shards.len())`.
    shard_bits: u32,
    /// `shards.len() - 1`.
    mask: usize,
    /// Right-shift extracting the stripe from the fingerprint's leading bits.
    shift: u32,
    len: AtomicUsize,
    /// The out-of-core tier; `None` when no memory budget is configured (the store
    /// then behaves exactly as before the spill tier existed).
    spill: Option<StoreSpill>,
}

impl<S> Drop for StateStore<S> {
    fn drop(&mut self) {
        if let Some(spill) = &self.spill {
            let _ = std::fs::remove_dir_all(&spill.dir);
        }
    }
}

/// The result of an insertion attempt.  Both arms hand a state back to the caller, so
/// an insert never swallows the moved-in value.
pub enum Insert<S> {
    /// The fingerprint was already present; the existing entry's index is returned
    /// along with the (unconsumed) moved-in state.
    Existing(StateIndex, S),
    /// A fresh entry was created.  The returned state is for the caller's frontier: the
    /// moved-in state in [`StoreMode::FingerprintOnly`] (the store keeps nothing), or a
    /// clone in [`StoreMode::Full`] (the store keeps the original inline).
    Fresh(StateIndex, S),
}

/// A locked stripe, ready for a batch of insertions under one lock acquisition.
pub struct ShardHandle<'a, S> {
    guard: OrderedMutexGuard<'a, ShardRank, StoreShard<S>>,
    shard: u32,
    shard_bits: u32,
    mode: StoreMode,
    len: &'a AtomicUsize,
    spill: Option<&'a StoreSpill>,
}

impl<S: SpecState> ShardHandle<'_, S> {
    /// Inserts one state discovered by `label` from `parent` (or an initial state when
    /// `parent` is `None`).  Deduplicates by fingerprint.
    pub fn insert(
        &mut self,
        fp: Fingerprint,
        parent: Option<StateIndex>,
        label: LabelId,
        state: S,
    ) -> Insert<S> {
        self.insert_impl(fp, parent, label, state, None)
    }

    /// Like [`ShardHandle::insert`], but for symmetry-reduced runs: `state` must be
    /// the *canonical* representative and `perm` the permutation that produced it
    /// from the concrete successor (see `remix_spec::Canonicalize`).  The permutation
    /// is recorded alongside the discovery edge so
    /// [`StateStore::reconstruct_trace_decanonicalized`] can later rebuild a witness
    /// in the original id frame.
    ///
    /// A store must be fed exclusively through this method or exclusively through
    /// [`ShardHandle::insert`]; mixing the two within one run is a caller bug.
    pub fn insert_canonical(
        &mut self,
        fp: Fingerprint,
        parent: Option<StateIndex>,
        label: LabelId,
        state: S,
        perm: Perm,
    ) -> Insert<S> {
        self.insert_impl(fp, parent, label, state, Some(perm))
    }

    fn insert_impl(
        &mut self,
        fp: Fingerprint,
        parent: Option<StateIndex>,
        label: LabelId,
        state: S,
        perm: Option<Perm>,
    ) -> Insert<S> {
        let inner = &mut *self.guard;
        // Dedup: the in-RAM delta table first, then (budgeted stores only) every
        // spilled run, bloom filters first.  Runs and delta table are disjoint, so
        // the probe order never affects the answer — only which tier pays for it.
        if let Some(&local) = inner.map.get(&fp) {
            return Insert::Existing(pack(local, self.shard, self.shard_bits), state);
        }
        if let Some(spill) = self.spill {
            for run in &inner.runs {
                if let Some(local) = run.probe(fp, &spill.counters) {
                    return Insert::Existing(pack(local, self.shard, self.shard_bits), state);
                }
            }
        }
        let local = inner.meta.len() as u32;
        // The packed index must round-trip: `local` may not spill into the
        // shard bits, and `NO_PARENT` (u32::MAX) stays reserved.
        assert!(
            (self.shard_bits == 0 && local < u32::MAX)
                || (self.shard_bits > 0 && local < 1 << (32 - self.shard_bits)),
            "state-store stripe is full ({local} slots at {} shard bits)",
            self.shard_bits
        );
        let index = pack(local, self.shard, self.shard_bits);
        assert_ne!(index.0, NO_PARENT, "state store is full (2^32 entries)");
        inner.map.insert(fp, local);
        inner.meta.push(SlotMeta {
            fp,
            parent: parent.map_or(NO_PARENT, |p| p.0),
            label,
        });
        if let Some(perm) = perm {
            debug_assert_eq!(
                inner.perms.len() + 1,
                inner.meta.len(),
                "stores mixing canonical and plain inserts cannot de-canonicalize"
            );
            inner.perms.push(perm);
        }
        let for_caller = match self.mode {
            StoreMode::Full => {
                let clone = state.clone();
                inner.states.push(state);
                clone
            }
            StoreMode::FingerprintOnly => state,
        };
        // ordering: AcqRel — the global length feeds the max_states stop decision on
        // other workers, so it must publish with the insert and join prior counts.
        self.len.fetch_add(1, Ordering::AcqRel);
        if let Some(spill) = self.spill {
            if inner.map.len() >= spill.flush_entries {
                flush_delta_table(inner, spill, self.shard);
            }
        }
        Insert::Fresh(index, for_caller)
    }
}

/// Flushes a stripe's delta table to a new immutable sorted run.  Slot assignments
/// are untouched — the entries only change *where* they live, so spilling can never
/// alter which states a run discovers or which indices they get.
fn flush_delta_table<S>(inner: &mut StoreShard<S>, spill: &StoreSpill, shard: u32) {
    let entries: Vec<(Fingerprint, u32)> = inner.map.drain().collect();
    let path = spill
        .dir
        .join(format!("shard{:04}-run{:04}.fps", shard, inner.runs.len()));
    let run = SpillRun::write(&path, entries).expect("writing a fingerprint spill run");
    // ordering: Relaxed (×3) — spill counters are observability only, read for the
    // stats snapshot after the run; no control decision consumes them.
    spill.counters.runs_spilled.fetch_add(1, Ordering::Relaxed);
    spill
        .counters
        .entries_spilled
        .fetch_add(run.len() as u64, Ordering::Relaxed); // ordering: see above.
    spill
        .counters
        .bytes_spilled
        .fetch_add((run.len() * spill::RECORD_BYTES) as u64, Ordering::Relaxed); // ordering: see above.
    inner.runs.push(run);
}

#[inline]
fn pack(local: u32, shard: u32, shard_bits: u32) -> StateIndex {
    StateIndex((local << shard_bits) | shard)
}

#[inline]
fn unpack(index: StateIndex, shard_bits: u32) -> (u32, u32) {
    (index.0 >> shard_bits, index.0 & ((1 << shard_bits) - 1))
}

impl<S: SpecState> StateStore<S> {
    /// Creates a fully in-RAM store with `shards` lock stripes (rounded up to a power
    /// of two).  Equivalent to [`StateStore::with_spill`] with an inactive config.
    pub fn new(mode: StoreMode, shards: usize) -> Self {
        Self::with_spill(mode, shards, &SpillConfig::in_ram())
    }

    /// Creates a store with `shards` lock stripes (rounded up to a power of two),
    /// armed with the out-of-core tier when `config` carries a memory budget.
    ///
    /// Under a budget, each stripe's dedup map becomes a bounded *delta table*: when
    /// it reaches its share of the budget (`budget / 48 bytes-per-entry / stripes`,
    /// floored at a small minimum) it is sorted and flushed to an immutable run file
    /// under the spill directory.  Lookups then probe the delta table, then each
    /// run's bloom filter, and only pay a positioned disk read on a bloom hit.
    /// Spilling never changes slot assignment, so a budgeted run discovers exactly
    /// the states — with exactly the indices — the in-RAM run would.
    ///
    /// # Panics
    ///
    /// Panics when the spill directory cannot be created: silently continuing
    /// unbudgeted would defeat the point of asking for a budget.
    pub fn with_spill(mode: StoreMode, shards: usize, config: &SpillConfig) -> Self {
        let n = shards.max(1).next_power_of_two();
        let bits = n.trailing_zeros();
        let spill = config.budget_bytes.map(|budget| {
            let dir = spill::create_spill_dir(config.dir.as_deref())
                .expect("creating the spill directory for a memory-budgeted store");
            StoreSpill {
                dir,
                flush_entries: (budget as usize / spill::DELTA_ENTRY_BYTES / n)
                    .max(spill::MIN_FLUSH_ENTRIES),
                budget_bytes: budget,
                counters: SpillCounters::default(),
            }
        });
        StateStore {
            shards: (0..n)
                .map(|_| ShardCell {
                    inner: OrderedMutex::new(StoreShard {
                        map: HashMap::new(),
                        runs: Vec::new(),
                        meta: Vec::new(),
                        states: Vec::new(),
                        perms: Vec::new(),
                    }),
                    contention: AtomicU64::new(0),
                })
                .collect(),
            mode,
            shard_bits: bits,
            mask: n - 1,
            // `% 64` keeps the single-shard case (bits = 0) well-defined; the mask then
            // collapses every stripe index to zero anyway.
            shift: (64 - bits) % 64,
            len: AtomicUsize::new(0),
            spill,
        }
    }

    /// Out-of-core activity so far: all-zero when no budget is set or nothing has
    /// spilled yet.
    pub fn spill_stats(&self) -> SpillStats {
        match &self.spill {
            Some(spill) => spill.counters.snapshot(spill.budget_bytes),
            None => SpillStats::default(),
        }
    }

    /// The store's spill directory, when the out-of-core tier is armed.  BFS borrows
    /// it for frontier-level queue files so everything is cleaned up together.
    pub(crate) fn spill_dir(&self) -> Option<&Path> {
        self.spill.as_ref().map(|s| s.dir.as_path())
    }

    /// Records `n` frontier entries round-tripped through an on-disk level queue.
    pub(crate) fn note_frontier_spilled(&self, n: u64) {
        if let Some(spill) = &self.spill {
            spill
                .counters
                .frontier_spilled
                // ordering: Relaxed — observability counter, see flush_delta_table.
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The backend this store runs.
    pub fn mode(&self) -> StoreMode {
        self.mode
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The stripe owning a fingerprint (routed by its leading bits).
    pub fn shard_of(&self, fp: Fingerprint) -> usize {
        ((fp.0 >> self.shift) as usize) & self.mask
    }

    /// Locks one stripe for a batch of insertions, counting the acquisition as
    /// contended when it had to wait (the try-then-count-then-block pattern lives in
    /// [`OrderedMutex::lock_counting`], poison policy in `sync::lock_or_recover`).
    pub fn lock_shard(&self, shard: usize) -> ShardHandle<'_, S> {
        let cell = &self.shards[shard];
        ShardHandle {
            guard: cell.inner.lock_counting(&cell.contention),
            shard: shard as u32,
            shard_bits: self.shard_bits,
            mode: self.mode,
            len: &self.len,
            spill: self.spill.as_ref(),
        }
    }

    /// Total number of entries across all stripes.
    pub fn len(&self) -> usize {
        // ordering: Acquire — pairs with the AcqRel fetch_add in insert_impl; the
        // reader uses this total for the max_states stop decision.
        self.len.load(Ordering::Acquire)
    }

    /// `true` when nothing has been inserted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-stripe contended-lock-acquisition counters.
    pub fn contention_counters(&self) -> Vec<u64> {
        self.shards
            .iter()
            // ordering: Relaxed — contention counts are observability only.
            .map(|s| s.contention.load(Ordering::Relaxed))
            .collect()
    }

    /// Looks up the index of a fingerprint, if present (in the delta table or any
    /// spilled run).
    pub fn find(&self, fp: Fingerprint) -> Option<StateIndex> {
        let shard = self.shard_of(fp);
        let guard = self.shards[shard].inner.lock();
        if let Some(&local) = guard.map.get(&fp) {
            return Some(pack(local, shard as u32, self.shard_bits));
        }
        let spill = self.spill.as_ref()?;
        guard
            .runs
            .iter()
            .find_map(|run| run.probe(fp, &spill.counters))
            .map(|local| pack(local, shard as u32, self.shard_bits))
    }

    /// The `(fingerprint, parent, label)` metadata of an entry.
    pub fn meta(&self, index: StateIndex) -> (Fingerprint, Option<StateIndex>, LabelId) {
        let (local, shard) = unpack(index, self.shard_bits);
        let guard = self.shards[shard as usize].inner.lock();
        let meta = &guard.meta[local as usize];
        let parent = (meta.parent != NO_PARENT).then_some(StateIndex(meta.parent));
        (meta.fp, parent, meta.label)
    }

    /// Rewrites an entry's discovery edge to `(parent, label)` (and, in a
    /// symmetry-reduced store, its recorded permutation).
    ///
    /// Used by depth-bounded DFS when a strictly shallower path to an already-stored
    /// state is found: the recorded chain must follow best-known depths, or traces
    /// reconstructed through the re-discovered state would walk the old, deeper arm
    /// and disagree with the reported violation depth (and the depth bound).  Parent
    /// depths are strictly decreasing along any chain, so the rewrite cannot create a
    /// cycle.
    pub fn set_parent(
        &self,
        index: StateIndex,
        parent: StateIndex,
        label: LabelId,
        perm: Option<Perm>,
    ) {
        let (local, shard) = unpack(index, self.shard_bits);
        let mut guard = self.shards[shard as usize].inner.lock();
        let meta = &mut guard.meta[local as usize];
        meta.parent = parent.0;
        meta.label = label;
        if let Some(perm) = perm {
            guard.perms[local as usize] = perm;
        }
    }

    /// The permutation recorded for an entry's discovery edge (the one that
    /// canonicalized the inserted state), or `None` when the store was filled without
    /// symmetry reduction.
    pub fn perm_of(&self, index: StateIndex) -> Option<Perm> {
        let (local, shard) = unpack(index, self.shard_bits);
        let guard = self.shards[shard as usize].inner.lock();
        guard.perms.get(local as usize).cloned()
    }

    /// Maps an entry's stored state through `f`.  Returns `None` in
    /// [`StoreMode::FingerprintOnly`] (the state was dropped after expansion).
    pub fn with_state<T>(&self, index: StateIndex, f: impl FnOnce(&S) -> T) -> Option<T> {
        let (local, shard) = unpack(index, self.shard_bits);
        let guard = self.shards[shard as usize].inner.lock();
        guard.states.get(local as usize).map(f)
    }

    /// Fixed resident bytes the store pays per entry: the 24-byte metadata slot, the
    /// dedup-map entry (fingerprint key + `u32` slot), and — in [`StoreMode::Full`] —
    /// the inline state.
    ///
    /// This is the *per-entry payload* accounting the bench artefact reports: it
    /// excludes hash-map load-factor overhead and any heap owned by the state itself,
    /// both of which only widen the gap in favour of [`StoreMode::FingerprintOnly`].
    pub fn entry_bytes_per_state(&self) -> usize {
        let fixed = std::mem::size_of::<SlotMeta>()
            + std::mem::size_of::<Fingerprint>()
            + std::mem::size_of::<u32>();
        match self.mode {
            StoreMode::Full => fixed + std::mem::size_of::<S>(),
            StoreMode::FingerprintOnly => fixed,
        }
    }

    /// Resident entry-payload bytes of the whole store.  The store is append-only, so
    /// this is also the run's peak.
    pub fn entry_bytes(&self) -> usize {
        self.len() * self.entry_bytes_per_state()
    }

    /// Reconstructs the trace from an initial state to `index`.
    ///
    /// In [`StoreMode::Full`] this walks parent indices and clones the stored states —
    /// no successor evaluation.  In [`StoreMode::FingerprintOnly`] the stored states
    /// are gone, so the recorded `(parent, label)` chain is replayed forward through
    /// [`Spec::successors`]: at each step the successor whose interned label matches
    /// the recorded [`LabelId`] *and* whose fingerprint matches the recorded entry is
    /// taken.  The replay is bounded by the chain's length; each step evaluates the
    /// successors of exactly one state.
    ///
    /// # Panics
    ///
    /// Panics when the chain is not replayable against `spec` — i.e. the store was
    /// filled from a different specification or label table than the one passed here.
    pub fn reconstruct_trace(
        &self,
        spec: &Spec<S>,
        labels: &LabelTable,
        index: StateIndex,
    ) -> Trace<S> {
        // Collect the chain root-first (one parent walk covers both backends).
        let mut chain: Vec<(StateIndex, Fingerprint, LabelId)> = Vec::new();
        let mut cursor = Some(index);
        while let Some(c) = cursor {
            let (fp, parent, label) = self.meta(c);
            chain.push((c, fp, label));
            cursor = parent;
        }
        chain.reverse();

        if self.mode == StoreMode::Full {
            // States are in the arena: clone them out along the collected chain.
            let mut trace = Trace::default();
            for (idx, _, label) in &chain {
                let state = self
                    .with_state(*idx, S::clone)
                    .expect("full store keeps every state");
                trace.push(labels.resolve(*label), state);
            }
            return trace;
        }

        // Fingerprint-only: bounded re-exploration along the recorded chain.
        let (_, root_fp, root_label) = chain[0];
        debug_assert_eq!(labels.resolve(root_label), INIT_LABEL);
        let mut current = spec
            .init
            .iter()
            .find(|s| fingerprint(*s) == root_fp)
            .cloned()
            .expect("chain root is an initial state of the replayed spec");
        let mut trace = Trace::from_init(current.clone());
        for (_, fp, label) in &chain[1..] {
            let label_str = labels.resolve(*label);
            let next = spec
                .successors(&current)
                .into_iter()
                .find(|(l, s)| l == &label_str && fingerprint(s) == *fp)
                .map(|(_, s)| s)
                .expect("recorded (parent, label) chain replays through the spec");
            trace.push(label_str, next.clone());
            current = next;
        }
        trace
    }

    /// Reconstructs a trace to `index` in the **original** (un-canonicalized) id frame
    /// of a symmetry-reduced run.
    ///
    /// Under symmetry reduction the arena holds canonical representatives: every entry
    /// was canonicalized on insertion and the applied permutation recorded with its
    /// discovery edge.  A trace cloned straight out of the arena would therefore be a
    /// sequence of canonical states that is *not* an execution of the original
    /// specification (consecutive canonical forms are generally not successors of each
    /// other).  This method instead replays the recorded chain forward through
    /// [`Spec::successors`] in the original frame:
    ///
    /// 1. the root is the original initial state whose canonical fingerprint matches
    ///    the recorded root entry;
    /// 2. at each step, the successors of the current original-frame state are
    ///    enumerated and filtered to those whose *canonical* fingerprint matches the
    ///    recorded child entry — by orbit invariance these are exactly the concrete
    ///    moves the canonical edge stands for;
    /// 3. among the matches, the one whose canonicalization permutation equals the
    ///    **composition** `π_edge ∘ σ` of the edge's stored permutation with the
    ///    running original→canonical frame map `σ` is preferred — that candidate is
    ///    the very execution the checker discovered, not merely an isomorphic sibling
    ///    (any match would still be a valid witness, and is used as a fallback).
    ///
    /// Works identically for both store backends — the stored canonical states (when
    /// present) are never cloned into the result — at the same O(depth × branching)
    /// successor-evaluation cost the fingerprint-only backend already pays, incurred
    /// only when a violation is actually reported.
    ///
    /// # Non-equivariant chains
    ///
    /// If the specification is not equivariant along this chain (see the symmetry
    /// section of `ARCHITECTURE.md`), a step of the recorded chain may have no
    /// matching successor in the original frame.  Rather than losing the violation
    /// that is being reported, [`StoreMode::Full`] then falls back to the stored
    /// *canonical-frame* chain (a sequence of representatives that may not replay
    /// step-by-step, but whose endpoint still exhibits the violation up to renaming).
    ///
    /// # Panics
    ///
    /// Panics when the chain cannot be replayed **and** no fallback exists
    /// ([`StoreMode::FingerprintOnly`] keeps no states): the store was filled from a
    /// different specification or canonicalization function, or the spec is
    /// non-equivariant along the chain.
    pub fn reconstruct_trace_decanonicalized(
        &self,
        spec: &Spec<S>,
        labels: &LabelTable,
        index: StateIndex,
        canon: &CanonFn<S>,
    ) -> Trace<S> {
        // Collect the chain root-first, each edge with its recorded permutation.
        let mut chain: Vec<(Fingerprint, LabelId, Option<Perm>)> = Vec::new();
        let mut cursor = Some(index);
        while let Some(c) = cursor {
            let (fp, parent, label) = self.meta(c);
            chain.push((fp, label, self.perm_of(c)));
            cursor = parent;
        }
        chain.reverse();

        let (root_fp, root_label, _) = &chain[0];
        debug_assert_eq!(labels.resolve(*root_label), INIT_LABEL);
        let mut current = spec
            .init
            .iter()
            .find(|s| fingerprint(&canon(s).0) == *root_fp)
            .cloned()
            .expect("chain root is the canonical form of an initial state");
        // σ: the permutation mapping the current original-frame state onto its
        // canonical representative (the frame the chain is recorded in).
        let mut sigma = canon(&current).1;
        let mut trace = Trace::from_init(current.clone());
        for (fp, _, edge_perm) in &chain[1..] {
            // The exact discovered execution satisfies canon(next).1 == π_edge ∘ σ.
            let expected = edge_perm.as_ref().map(|p| p.compose(&sigma));
            let mut fallback: Option<(String, S, Perm)> = None;
            let mut exact: Option<(String, S, Perm)> = None;
            for (l, s) in spec.successors(&current) {
                let (c, p) = canon(&s);
                if fingerprint(&c) != *fp {
                    continue;
                }
                if expected.as_ref() == Some(&p) {
                    exact = Some((l, s, p));
                    break;
                }
                if fallback.is_none() {
                    fallback = Some((l, s, p));
                }
            }
            let Some((label, next, perm)) = exact.or(fallback) else {
                // Non-equivariant step: the canonical edge has no counterpart from
                // this original-frame state.  Keep the report alive with the stored
                // canonical chain when the backend still has it.
                if self.mode == StoreMode::Full {
                    return self.reconstruct_trace(spec, labels, index);
                }
                panic!(
                    "recorded canonical chain does not replay through the original \
                     specification (non-equivariant spec or mismatched \
                     canonicalization) and the fingerprint-only store kept no states \
                     to fall back to"
                );
            };
            sigma = perm;
            trace.push(label, next.clone());
            current = next;
        }
        trace
    }
}

impl<S> fmt::Debug for StateStore<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StateStore")
            .field("mode", &self.mode)
            .field("shards", &self.shards.len())
            // ordering: Relaxed — debug snapshot, no synchronization implied.
            .field("len", &self.len.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_spec::{ActionDef, ActionInstance, Granularity, ModuleId, ModuleSpec};
    use std::collections::BTreeMap;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct N(u32);

    impl SpecState for N {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
            let mut m = BTreeMap::new();
            if vars.contains(&"n") {
                m.insert("n".to_owned(), remix_spec::Value::from(self.0));
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["n"]
        }
    }

    fn chain_spec(limit: u32) -> Spec<N> {
        let m = ModuleId("Chain");
        let inc = ActionDef::new(
            "Inc",
            m,
            Granularity::Baseline,
            vec!["n"],
            vec!["n"],
            move |s: &N| {
                if s.0 < limit {
                    vec![ActionInstance::new(format!("Inc({})", s.0), N(s.0 + 1))]
                } else {
                    vec![]
                }
            },
        );
        Spec::new(
            "chain",
            vec![N(0)],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![inc])],
            vec![],
        )
    }

    /// Fills a store with the chain 0..=limit, returning the final index.
    fn fill(store: &StateStore<N>, labels: &LabelTable, limit: u32) -> StateIndex {
        let fp0 = fingerprint(&N(0));
        let mut handle = store.lock_shard(store.shard_of(fp0));
        let Insert::Fresh(mut prev, _) = handle.insert(fp0, None, LabelTable::init_id(), N(0))
        else {
            panic!("fresh insert");
        };
        drop(handle);
        for i in 0..limit {
            let next = N(i + 1);
            let fp = fingerprint(&next);
            let label = labels.intern(&format!("Inc({i})"));
            let mut handle = store.lock_shard(store.shard_of(fp));
            match handle.insert(fp, Some(prev), label, next) {
                Insert::Fresh(idx, _) => prev = idx,
                Insert::Existing(..) => panic!("chain states are distinct"),
            }
        }
        prev
    }

    #[test]
    fn insert_deduplicates_and_counts() {
        for mode in [StoreMode::Full, StoreMode::FingerprintOnly] {
            let store: StateStore<N> = StateStore::new(mode, 4);
            let fp = fingerprint(&N(7));
            let mut handle = store.lock_shard(store.shard_of(fp));
            let Insert::Fresh(idx, returned) = handle.insert(fp, None, LabelTable::init_id(), N(7))
            else {
                panic!("first insert is fresh");
            };
            assert_eq!(returned, N(7), "caller gets the state back in both modes");
            let Insert::Existing(existing, back) =
                handle.insert(fp, None, LabelTable::init_id(), N(7))
            else {
                panic!("second insert is a duplicate");
            };
            assert_eq!(existing, idx);
            assert_eq!(back, N(7), "duplicates hand the moved-in state back");
            drop(handle);
            assert_eq!(store.len(), 1);
            assert_eq!(store.find(fp), Some(idx));
            assert_eq!(store.find(fingerprint(&N(8))), None);
            let kept = store.with_state(idx, |s| s.clone());
            match mode {
                StoreMode::Full => assert_eq!(kept, Some(N(7))),
                StoreMode::FingerprintOnly => assert_eq!(kept, None),
            }
        }
    }

    #[test]
    fn fingerprint_only_entries_are_strictly_smaller() {
        let full: StateStore<N> = StateStore::new(StoreMode::Full, 1);
        let fp_only: StateStore<N> = StateStore::new(StoreMode::FingerprintOnly, 1);
        assert!(fp_only.entry_bytes_per_state() < full.entry_bytes_per_state());
        assert_eq!(
            full.entry_bytes_per_state() - fp_only.entry_bytes_per_state(),
            std::mem::size_of::<N>()
        );
    }

    #[test]
    fn full_store_reconstructs_by_parent_walk() {
        let spec = chain_spec(5);
        let labels = LabelTable::new();
        let store: StateStore<N> = StateStore::new(StoreMode::Full, 8);
        let last = fill(&store, &labels, 5);
        let trace = store.reconstruct_trace(&spec, &labels, last);
        assert_eq!(trace.depth(), 5);
        assert_eq!(trace.last_state(), Some(&N(5)));
        assert_eq!(trace.steps[0].action, INIT_LABEL);
        assert_eq!(trace.action_labels()[0], "Inc(0)");
    }

    #[test]
    fn fingerprint_only_store_reconstructs_by_replay() {
        let spec = chain_spec(5);
        let labels = LabelTable::new();
        let store: StateStore<N> = StateStore::new(StoreMode::FingerprintOnly, 8);
        let last = fill(&store, &labels, 5);
        // No states are kept...
        assert_eq!(store.with_state(last, |s| s.clone()), None);
        // ...yet the trace replays to the same execution the full store records.
        let trace = store.reconstruct_trace(&spec, &labels, last);
        assert_eq!(trace.depth(), 5);
        assert_eq!(trace.last_state(), Some(&N(5)));
        assert_eq!(
            trace.action_labels(),
            vec!["Inc(0)", "Inc(1)", "Inc(2)", "Inc(3)", "Inc(4)"]
        );
        assert_eq!(store.entry_bytes(), 6 * store.entry_bytes_per_state());
    }

    #[test]
    fn indices_pack_shard_and_slot() {
        let store: StateStore<N> = StateStore::new(StoreMode::Full, 8);
        let labels = LabelTable::new();
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u32 {
            let fp = fingerprint(&N(i));
            let mut handle = store.lock_shard(store.shard_of(fp));
            let Insert::Fresh(idx, _) = handle.insert(fp, None, LabelTable::init_id(), N(i)) else {
                panic!("distinct states");
            };
            drop(handle);
            assert!(seen.insert(idx), "indices are unique across shards");
            let (meta_fp, parent, label) = store.meta(idx);
            assert_eq!(meta_fp, fp);
            assert_eq!(parent, None);
            assert_eq!(label, LabelTable::init_id());
        }
        let _ = labels;
        assert_eq!(store.len(), 64);
        assert_eq!(store.contention_counters().len(), 8);
    }
}
