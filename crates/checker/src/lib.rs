//! Explicit-state model checker for specifications written with `remix-spec`.
//!
//! This crate plays the role of TLC in the paper: it exhaustively explores the state
//! space of a [`Spec`](remix_spec::Spec) using breadth-first search (so counterexamples
//! have minimal depth, §4.4), checks every registered invariant on every reachable state,
//! and reconstructs violation traces.  It also provides depth-first search, bounded
//! random simulation (used by the conformance checker to sample model-level traces,
//! §3.5.2), coverage-guided schedule exploration ([`mod@explore`]: sampling biased toward
//! rarely visited state regions), delta-debugging counterexample shrinking
//! ([`shrink`]), refinement checking between compositions of different granularities
//! ([`refine`]: parallel dual exploration proving a coarse composition simulates a fine
//! one under a granularity projection), and the statistics reported in Tables 4-6
//! (time, depth, distinct states, number of violations).

#![warn(missing_docs)]

pub mod bfs;
pub mod corpus;
pub mod coverage;
pub mod dfs;
pub mod explore;
pub mod fingerprint;
pub mod options;
pub mod outcome;
pub(crate) mod por;
pub mod refine;
pub mod rng;
pub mod shrink;
pub mod simulate;
pub mod spill;
pub mod stop;
pub mod store;
pub mod sync;

pub use bfs::check_bfs;
pub use corpus::{corpus, CorpusOptions};
pub use coverage::{CoverageMap, CoverageSnapshot};
pub use dfs::check_dfs;
pub use explore::{explore, explore_one, ExploreOptions, ExploreOutcome, ExploreStats, Guidance};
pub use fingerprint::fingerprint;
pub use options::{CheckMode, CheckOptions, SimulationOptions, SymmetryMode};
pub use outcome::{CheckOutcome, CheckStats, StopReason, Violation};
pub use refine::{
    check_refinement, DivergenceKind, RefineDivergence, RefineMode, RefineOptions, RefineOutcome,
    RefineStats, RefineVerdict,
};
pub use rng::CheckerRng;
pub use shrink::{replay_labels, shrink_trace, shrink_violation, ShrinkOutcome};
pub use simulate::{simulate, simulate_one};
pub use spill::{SpillConfig, SpillStats};
pub use stop::StopCell;
pub use store::{StateIndex, StateStore, StoreMode};
pub use sync::{AuditReport, LockRank, OrderedCondvar, OrderedMutex, OrderedRwLock};
