//! Explicit-state model checker for specifications written with `remix-spec`.
//!
//! This crate plays the role of TLC in the paper: it exhaustively explores the state
//! space of a [`Spec`](remix_spec::Spec) using breadth-first search (so counterexamples
//! have minimal depth, §4.4), checks every registered invariant on every reachable state,
//! and reconstructs violation traces.  It also provides depth-first search, bounded
//! random simulation (used by the conformance checker to sample model-level traces,
//! §3.5.2), and the statistics reported in Tables 4-6 (time, depth, distinct states,
//! number of violations).

#![warn(missing_docs)]

pub mod bfs;
pub mod dfs;
pub mod fingerprint;
pub mod options;
pub mod outcome;
pub mod rng;
pub mod simulate;

pub use bfs::check_bfs;
pub use dfs::check_dfs;
pub use fingerprint::fingerprint;
pub use options::{CheckMode, CheckOptions, SimulationOptions};
pub use outcome::{CheckOutcome, CheckStats, StopReason, Violation};
pub use rng::CheckerRng;
pub use simulate::{simulate, simulate_one};
