//! Counterexample shrinking: delta-debugging violating traces down to local minima.
//!
//! Random sampling (and DFS) hands users counterexamples that are hundreds of steps of
//! mostly irrelevant churn; the paper's BFS engine sidesteps this by construction
//! (minimal-depth counterexamples, §4.4), but simulation traces, DFS traces and
//! conformance-divergence traces (§3.5.2) have no such guarantee.  [`shrink_trace`]
//! applies ddmin-style delta debugging to the *action sequence* of a trace: it
//! repeatedly removes chunks of actions, replays the remaining labels from the initial
//! state to check the candidate is still a **legal execution** of the specification
//! (each label must name an enabled action in its predecessor state), and keeps the
//! candidate when the caller's oracle still accepts it.  The result is 1-minimal: no
//! single remaining action can be removed without either breaking legality or losing
//! the property the oracle checks.
//!
//! The oracle is a plain closure over the candidate trace, so the same machinery
//! minimizes invariant violations (oracle: the final state still violates, see
//! [`shrink_violation`]), conformance divergences (oracle: replaying the candidate
//! against the implementation still produces a discrepancy — wired up in
//! `remix-core`), or anything else a caller can phrase as a predicate.

use remix_spec::{Spec, SpecState, Trace};

/// The result of shrinking one trace.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome<S> {
    /// The shrunk trace — a legal execution accepted by the oracle, 1-minimal under
    /// action removal (equal to the input when nothing could be removed, or when the
    /// oracle rejected the input itself).
    pub trace: Trace<S>,
    /// Transition count of the input trace.
    pub original_depth: usize,
    /// Number of candidate action sequences generated (including illegal ones).
    pub candidates: usize,
    /// Number of times the oracle ran (only legal candidates reach it).
    pub oracle_calls: usize,
}

impl<S> ShrinkOutcome<S> {
    /// Transition count of the shrunk trace.
    pub fn shrunk_depth(&self) -> usize {
        self.trace.depth()
    }

    /// `true` when shrinking removed at least one action.
    pub fn reduced(&self) -> bool {
        self.shrunk_depth() < self.original_depth
    }
}

/// Replays a sequence of action labels from `init`, returning the resulting trace when
/// every label names an enabled action along the way (i.e. the sequence is a legal
/// execution of `spec`), and `None` otherwise.
///
/// Labels are fully instantiated (e.g. `NodeCrash(2)`), so replay is deterministic as
/// long as labels are unique per state; if a state offers several successors under the
/// same label, the first is taken.
pub fn replay_labels<S: SpecState>(
    spec: &Spec<S>,
    init: &S,
    labels: &[String],
) -> Option<Trace<S>> {
    let mut trace = Trace::from_init(init.clone());
    let mut current = init.clone();
    for label in labels {
        let (taken, next) = spec
            .successors(&current)
            .into_iter()
            .find(|(l, _)| l == label)?;
        trace.push(taken, next.clone());
        current = next;
    }
    Some(trace)
}

/// Delta-debugs `trace` down to a locally minimal legal execution still accepted by
/// `oracle`.
///
/// The oracle must accept the input trace; when it does not (or the trace has no
/// transitions), the input is returned unchanged.  Candidates are produced by removing
/// contiguous chunks of actions, halving the chunk size ddmin-style, and every
/// candidate is re-validated against the spec before the oracle sees it, so the
/// result is always a legal execution.
///
/// Degenerate witnesses are already minimal and short-circuit without touching the
/// oracle: an empty trace, an init-only trace and a single-action trace all come back
/// unchanged with `oracle_calls == 0`.  (Callers such as the refinement checker hand
/// ddmin whatever witness exploration produced, including depth-0 witnesses of a
/// diverging *initial* state and depth-1 witnesses of a diverging first step — the
/// only removal a depth-1 witness admits is the empty execution, which cannot witness
/// anything, so there is nothing to search.)
pub fn shrink_trace<S: SpecState>(
    spec: &Spec<S>,
    trace: &Trace<S>,
    oracle: impl Fn(&Trace<S>) -> bool,
) -> ShrinkOutcome<S> {
    let original_depth = trace.depth();
    let mut outcome = ShrinkOutcome {
        trace: trace.clone(),
        original_depth,
        candidates: 0,
        oracle_calls: 0,
    };
    let Some(first) = trace.steps.first() else {
        return outcome; // Empty witness: nothing to remove.
    };
    if original_depth <= 1 {
        // Init-only or single-action witness: already 1-minimal, return unchanged.
        return outcome;
    }
    outcome.oracle_calls += 1;
    if !oracle(trace) {
        // Nothing to minimize: the property does not even hold on the input.
        return outcome;
    }
    let init = first.state.clone();
    let mut labels: Vec<String> = trace
        .steps
        .iter()
        .skip(1)
        .map(|s| s.action.clone())
        .collect();
    let mut best = trace.clone();

    let mut chunk = (labels.len() / 2).max(1);
    loop {
        let mut removed_any = false;
        let mut i = 0;
        while i < labels.len() {
            let end = (i + chunk).min(labels.len());
            let candidate_labels: Vec<String> = labels[..i]
                .iter()
                .chain(labels[end..].iter())
                .cloned()
                .collect();
            outcome.candidates += 1;
            let accepted = match replay_labels(spec, &init, &candidate_labels) {
                Some(candidate) => {
                    outcome.oracle_calls += 1;
                    if oracle(&candidate) {
                        best = candidate;
                        true
                    } else {
                        false
                    }
                }
                None => false,
            };
            if accepted {
                labels = candidate_labels;
                removed_any = true;
                // Re-test from the same offset: the chunk now holds different actions.
            } else {
                i = end;
            }
        }
        if chunk == 1 {
            if !removed_any {
                break; // 1-minimal: no single action can be removed.
            }
        } else {
            chunk = (chunk / 2).max(1);
        }
        if labels.is_empty() {
            break;
        }
    }

    outcome.trace = best;
    outcome
}

/// Shrinks an invariant-violation counterexample: the oracle accepts a candidate when
/// its final state still violates the invariant identified by `invariant_id`.
///
/// Useful for violations found by simulation ([`mod@crate::explore`]) or DFS; BFS
/// counterexamples are already depth-minimal (§4.4) and typically come back unchanged.
pub fn shrink_violation<S: SpecState>(
    spec: &Spec<S>,
    trace: &Trace<S>,
    invariant_id: &str,
) -> ShrinkOutcome<S> {
    shrink_trace(spec, trace, |candidate| {
        candidate.last_state().is_some_and(|state| {
            spec.violated_invariants(state)
                .iter()
                .any(|inv| inv.id == invariant_id)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::SimulationOptions;
    use crate::rng::CheckerRng;
    use crate::simulate::simulate_one;
    use remix_spec::{
        ActionDef, ActionInstance, Granularity, Invariant, InvariantSource, ModuleId, ModuleSpec,
    };
    use std::collections::BTreeMap;

    /// Counter with an irrelevant toggle: `Inc` raises `n`, `Toggle` flips `t`, the
    /// violation only depends on `n`, so a minimal counterexample is all-`Inc`.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct TState {
        n: u32,
        t: bool,
    }

    impl SpecState for TState {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
            let mut m = BTreeMap::new();
            if vars.contains(&"n") {
                m.insert("n".to_owned(), remix_spec::Value::from(self.n));
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["n", "t"]
        }
    }

    fn toggle_spec(limit: u32) -> Spec<TState> {
        let m = ModuleId("T");
        let inc = ActionDef::new(
            "Inc",
            m,
            Granularity::Baseline,
            vec!["n"],
            vec!["n"],
            move |s: &TState| {
                if s.n < limit {
                    vec![ActionInstance::new(
                        format!("Inc({})", s.n),
                        TState {
                            n: s.n + 1,
                            ..s.clone()
                        },
                    )]
                } else {
                    vec![]
                }
            },
        );
        let toggle = ActionDef::new(
            "Toggle",
            m,
            Granularity::Baseline,
            vec!["t"],
            vec!["t"],
            |s: &TState| {
                vec![ActionInstance::new(
                    format!("Toggle({})", s.t),
                    TState {
                        t: !s.t,
                        ..s.clone()
                    },
                )]
            },
        );
        let inv = Invariant::always(
            "N-BOUND",
            "n stays below 4",
            InvariantSource::Protocol,
            |s: &TState| s.n < 4,
        );
        Spec::new(
            "toggle",
            vec![TState { n: 0, t: false }],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![inc, toggle])],
            vec![inv],
        )
    }

    #[test]
    fn replay_rejects_illegal_sequences() {
        let spec = toggle_spec(10);
        let init = TState { n: 0, t: false };
        assert!(replay_labels(&spec, &init, &["Inc(0)".to_owned()]).is_some());
        // Inc(1) is not enabled at n=0.
        assert!(replay_labels(&spec, &init, &["Inc(1)".to_owned()]).is_none());
        let t = replay_labels(
            &spec,
            &init,
            &["Toggle(false)".to_owned(), "Toggle(true)".to_owned()],
        )
        .unwrap();
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn shrinks_to_the_minimal_inc_chain() {
        let spec = toggle_spec(10);
        // A long random walk that eventually reaches n == 4.
        let mut rng = CheckerRng::seed_from_u64(3);
        let mut trace = simulate_one(&spec, 200, &mut rng);
        while trace
            .last_state()
            .map(|s| spec.violated_invariants(s).is_empty())
            .unwrap_or(true)
        {
            trace = simulate_one(&spec, 200, &mut rng);
        }
        assert!(trace.depth() > 4, "the sampled walk should be wasteful");

        let outcome = shrink_violation(&spec, &trace, "N-BOUND");
        // The minimal violating execution is Inc(0) Inc(1) Inc(2) Inc(3): n == 4.
        assert_eq!(outcome.shrunk_depth(), 4, "{}", outcome.trace);
        assert!(outcome.reduced());
        assert_eq!(
            outcome.trace.action_labels(),
            vec!["Inc(0)", "Inc(1)", "Inc(2)", "Inc(3)"]
        );
        // The shrunk trace is a legal execution that still violates.
        assert!(!spec
            .violated_invariants(outcome.trace.last_state().unwrap())
            .is_empty());
        assert!(outcome.candidates >= outcome.oracle_calls - 1);

        // Local minimality: removing any single remaining action breaks the candidate.
        let labels: Vec<String> = outcome
            .trace
            .steps
            .iter()
            .skip(1)
            .map(|s| s.action.clone())
            .collect();
        let init = &outcome.trace.steps[0].state;
        for skip in 0..labels.len() {
            let candidate: Vec<String> = labels
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, l)| l.clone())
                .collect();
            let still_violates = replay_labels(&spec, init, &candidate)
                .and_then(|t| t.last_state().cloned())
                .map(|s| !spec.violated_invariants(&s).is_empty())
                .unwrap_or(false);
            assert!(
                !still_violates,
                "removing action {skip} should not be possible"
            );
        }
    }

    #[test]
    fn oracle_rejecting_the_input_returns_it_unchanged() {
        let spec = toggle_spec(10);
        let mut rng = CheckerRng::seed_from_u64(1);
        let trace = simulate_one(&spec, 6, &mut rng);
        let outcome = shrink_trace(&spec, &trace, |_| false);
        assert_eq!(outcome.trace, trace);
        assert!(!outcome.reduced());
        assert_eq!(outcome.oracle_calls, 1);
    }

    #[test]
    fn empty_and_init_only_traces_are_returned_unchanged() {
        let spec = toggle_spec(10);
        let empty: Trace<TState> = Trace::default();
        assert_eq!(shrink_trace(&spec, &empty, |_| true).trace, empty);
        let init_only = Trace::from_init(TState { n: 0, t: false });
        let outcome = shrink_trace(&spec, &init_only, |_| true);
        assert_eq!(outcome.trace, init_only);
        assert_eq!(outcome.oracle_calls, 0);
    }

    #[test]
    fn single_action_witness_is_returned_unchanged() {
        // ddmin over a single-action witness must terminate and return the input
        // unchanged — the only removable candidate is the empty execution, which cannot
        // witness anything — regardless of what the oracle would say about it.
        let spec = toggle_spec(10);
        let mut one = Trace::from_init(TState { n: 0, t: false });
        one.push("Inc(0)", TState { n: 1, t: false });
        for oracle in [true, false] {
            let outcome = shrink_trace(&spec, &one, |_| oracle);
            assert_eq!(outcome.trace, one, "oracle = {oracle}");
            assert_eq!(outcome.shrunk_depth(), 1);
            assert!(!outcome.reduced());
            assert_eq!(
                outcome.oracle_calls, 0,
                "degenerate witnesses skip the oracle"
            );
            assert_eq!(outcome.candidates, 0);
        }
    }

    #[test]
    fn two_action_witness_still_shrinks_normally() {
        // The depth-1 guard must not swallow the first genuinely shrinkable size.
        let spec = toggle_spec(10);
        let mut two = Trace::from_init(TState { n: 0, t: false });
        two.push("Toggle(false)", TState { n: 0, t: true });
        two.push("Inc(0)", TState { n: 1, t: true }); // n is what the oracle watches
        let outcome = shrink_trace(&spec, &two, |t| t.last_state().is_some_and(|s| s.n == 1));
        assert_eq!(outcome.trace.action_labels(), vec!["Inc(0)"]);
        assert!(outcome.reduced());
    }

    #[test]
    fn simulate_options_are_compatible_with_shrinking() {
        // A batch sampled by `simulate` can be shrunk trace by trace.
        let spec = toggle_spec(6);
        let traces = crate::simulate::simulate(
            &spec,
            &SimulationOptions {
                traces: 8,
                max_depth: 60,
                ..Default::default()
            },
        );
        for trace in &traces {
            if let Some(last) = trace.last_state() {
                if !spec.violated_invariants(last).is_empty() {
                    let outcome = shrink_violation(&spec, trace, "N-BOUND");
                    assert!(outcome.shrunk_depth() <= trace.depth());
                    assert_eq!(outcome.shrunk_depth(), 4);
                }
            }
        }
    }
}
