//! Deterministic stop-request accumulation for the parallel engine.
//!
//! Several stop conditions can trip within one BFS level (a violation on one
//! worker, the state limit on another, the wall clock on a third).  Requests
//! accumulate in one atomic bitmask and are resolved under a fixed precedence —
//! violation stops over [`StopReason::StateLimit`] over [`StopReason::TimeBudget`]
//! — so the reported reason is a function of *which conditions fired*, never of
//! which worker fired first.  The cell lives in its own module (rather than inside
//! `bfs`) so the precedence contract is directly testable under the sync layer's
//! schedule perturbation; see `tests/stop_precedence.rs`.

use crate::outcome::StopReason;
use crate::sync::{perturb_point, AtomicU8, Ordering};

/// Request bit: a first-violation stop ([`StopReason::FirstViolation`]).
pub const STOP_FIRST_VIOLATION: u8 = 1 << 0;
/// Request bit: the violation limit of a completion run ([`StopReason::ViolationLimit`]).
pub const STOP_VIOLATION_LIMIT: u8 = 1 << 1;
/// Request bit: the distinct-state limit ([`StopReason::StateLimit`]).
pub const STOP_STATE_LIMIT: u8 = 1 << 2;
/// Request bit: the wall-clock budget ([`StopReason::TimeBudget`]).
pub const STOP_TIME_BUDGET: u8 = 1 << 3;

/// Accumulated stop requests, resolved under a fixed precedence at level boundaries.
#[derive(Debug, Default)]
pub struct StopCell {
    bits: AtomicU8,
}

impl StopCell {
    /// An empty cell (no stop requested).
    pub fn new() -> Self {
        StopCell {
            bits: AtomicU8::new(0),
        }
    }

    /// Records a stop request; requests accumulate rather than race.
    pub fn request(&self, reason: u8) {
        // A perturbation point on each side of the publication: the determinism
        // oracle shakes the request/observe interleaving specifically.
        perturb_point();
        // ordering: AcqRel — the RMW both publishes this worker's writes that led
        // to the stop (Release) and joins the bits other workers accumulated
        // (Acquire), so a later requested()/stop_reason() sees the union.
        self.bits.fetch_or(reason, Ordering::AcqRel);
        perturb_point();
    }

    /// `true` once any stop has been requested.
    pub fn requested(&self) -> bool {
        // ordering: Acquire — pairs with the AcqRel fetch_or in request; a worker
        // observing a stop must also observe the state that justified it.
        self.bits.load(Ordering::Acquire) != 0
    }

    /// Resolves the accumulated requests under the documented precedence: violation
    /// stops (which carry a counterexample) outrank the state limit (a deterministic
    /// function of the exploration), which outranks the wall-clock budget (the only
    /// scheduling-dependent condition).  The result is therefore identical for every
    /// worker count and interleaving that trips the same set of conditions.
    pub fn stop_reason(&self) -> Option<StopReason> {
        perturb_point();
        // ordering: Acquire — pairs with request's AcqRel; resolution must see
        // every accumulated bit (the coordinator resolves after workers joined,
        // but the contract should not depend on the join).
        let bits = self.bits.load(Ordering::Acquire);
        if bits & STOP_FIRST_VIOLATION != 0 {
            Some(StopReason::FirstViolation)
        } else if bits & STOP_VIOLATION_LIMIT != 0 {
            Some(StopReason::ViolationLimit)
        } else if bits & STOP_STATE_LIMIT != 0 {
            Some(StopReason::StateLimit)
        } else if bits & STOP_TIME_BUDGET != 0 {
            Some(StopReason::TimeBudget)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precedence_is_order_independent() {
        let all = [
            (STOP_FIRST_VIOLATION, StopReason::FirstViolation),
            (STOP_VIOLATION_LIMIT, StopReason::ViolationLimit),
            (STOP_STATE_LIMIT, StopReason::StateLimit),
            (STOP_TIME_BUDGET, StopReason::TimeBudget),
        ];
        // Every subset, requested in every rotation, resolves to the subset's
        // highest-precedence member (precedence = position in `all`).
        for mask in 1u8..16 {
            let fired: Vec<_> = all
                .iter()
                .filter(|(bit, _)| mask & bit != 0)
                .copied()
                .collect();
            for rotation in 0..fired.len() {
                let cell = StopCell::new();
                for i in 0..fired.len() {
                    cell.request(fired[(rotation + i) % fired.len()].0);
                }
                assert_eq!(cell.stop_reason(), Some(fired[0].1), "mask {mask:#06b}");
            }
        }
        assert_eq!(StopCell::new().stop_reason(), None);
    }
}
