//! Results of a model-checking run: statistics, violations and counterexample traces.

use std::collections::BTreeSet;
use std::fmt;
use std::time::Duration;

use remix_spec::Trace;

/// Why exploration stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// The full reachable state space (within the depth bound) was explored.
    Exhausted,
    /// A violation was found and the mode was stop-at-first-violation.
    FirstViolation,
    /// The violation limit of the run-to-completion mode was reached.
    ViolationLimit,
    /// The wall-clock budget expired.
    TimeBudget,
    /// The distinct-state limit was reached.
    StateLimit,
    /// The depth bound was reached on every frontier path.
    DepthBound,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StopReason::Exhausted => "state space exhausted",
            StopReason::FirstViolation => "stopped at first violation",
            StopReason::ViolationLimit => "violation limit reached",
            StopReason::TimeBudget => "time budget exhausted",
            StopReason::StateLimit => "state limit reached",
            StopReason::DepthBound => "depth bound reached",
        };
        f.write_str(s)
    }
}

/// Aggregate statistics of a checking run (the columns of Tables 4-6).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckStats {
    /// Number of distinct states explored.
    pub distinct_states: usize,
    /// Number of state transitions generated (successor evaluations).
    pub transitions: u64,
    /// Maximum depth (number of transitions from an initial state) reached.
    pub max_depth: u32,
    /// Wall-clock time of the run.
    pub elapsed: Duration,
}

/// An invariant violation together with its minimal-depth counterexample trace.
#[derive(Debug, Clone)]
pub struct Violation<S> {
    /// The identifier of the violated invariant (e.g. `"I-8"`).
    pub invariant: &'static str,
    /// The invariant's human-readable name.
    pub invariant_name: &'static str,
    /// Depth (number of transitions) at which the violation was found.
    pub depth: u32,
    /// The counterexample trace from an initial state to the violating state.  Empty when
    /// trace collection was disabled.
    pub trace: Trace<S>,
}

/// The outcome of a model-checking run.
#[derive(Debug, Clone)]
pub struct CheckOutcome<S> {
    /// The name of the checked specification.
    pub spec_name: String,
    /// Exploration statistics.
    pub stats: CheckStats,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Recorded violations (at most one in first-violation mode).
    pub violations: Vec<Violation<S>>,
    /// Total number of violating states encountered (may exceed `violations.len()` in
    /// completion mode, where traces are only kept for the first violation of each
    /// invariant).
    pub violation_count: usize,
}

impl<S> CheckOutcome<S> {
    /// Returns `true` when no invariant violation was found.
    pub fn passed(&self) -> bool {
        self.violation_count == 0
    }

    /// The distinct identifiers of violated invariants, in order of identifier.
    pub fn violated_invariants(&self) -> Vec<&'static str> {
        let set: BTreeSet<&'static str> = self.violations.iter().map(|v| v.invariant).collect();
        set.into_iter().collect()
    }

    /// The first (minimal-depth) violation, if any.
    pub fn first_violation(&self) -> Option<&Violation<S>> {
        self.violations.iter().min_by_key(|v| v.depth)
    }
}

impl<S> fmt::Display for CheckOutcome<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "spec:            {}", self.spec_name)?;
        writeln!(f, "distinct states: {}", self.stats.distinct_states)?;
        writeln!(f, "transitions:     {}", self.stats.transitions)?;
        writeln!(f, "max depth:       {}", self.stats.max_depth)?;
        writeln!(f, "elapsed:         {:.2?}", self.stats.elapsed)?;
        writeln!(f, "stop reason:     {}", self.stop_reason)?;
        writeln!(f, "violations:      {}", self.violation_count)?;
        for v in &self.violations {
            writeln!(f, "  {} ({}) at depth {}", v.invariant, v.invariant_name, v.depth)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_helpers() {
        let outcome: CheckOutcome<u32> = CheckOutcome {
            spec_name: "toy".to_owned(),
            stats: CheckStats::default(),
            stop_reason: StopReason::Exhausted,
            violations: vec![
                Violation {
                    invariant: "I-10",
                    invariant_name: "History consistency",
                    depth: 13,
                    trace: Trace::default(),
                },
                Violation {
                    invariant: "I-8",
                    invariant_name: "Initial history integrity",
                    depth: 21,
                    trace: Trace::default(),
                },
            ],
            violation_count: 2,
        };
        assert!(!outcome.passed());
        assert_eq!(outcome.violated_invariants(), vec!["I-10", "I-8"]);
        assert_eq!(outcome.first_violation().unwrap().invariant, "I-10");
        let text = outcome.to_string();
        assert!(text.contains("I-8"));
        assert!(text.contains("stopped") || text.contains("exhausted"));
    }

    #[test]
    fn stop_reason_display() {
        assert_eq!(StopReason::TimeBudget.to_string(), "time budget exhausted");
        assert_eq!(StopReason::FirstViolation.to_string(), "stopped at first violation");
    }
}
