//! Model-checking and simulation options.

use std::time::Duration;

/// Whether checking stops at the first invariant violation or runs to completion.
///
/// These are the two modes of Table 5: "(a) stopping at the first violation" and
/// "(b) running to completion (till the limit)".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Stop as soon as any invariant violation is found.
    FirstViolation,
    /// Keep exploring; record up to `violation_limit` violating states.
    Completion {
        /// Maximum number of violations recorded before stopping (the paper uses 10,000).
        violation_limit: usize,
    },
}

impl Default for CheckMode {
    fn default() -> Self {
        CheckMode::FirstViolation
    }
}

/// Options controlling an exhaustive model-checking run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Stop-at-first-violation or run-to-completion.
    pub mode: CheckMode,
    /// Maximum exploration depth (state transitions); `None` means unbounded.
    pub max_depth: Option<u32>,
    /// Wall-clock budget; `None` means unbounded (the paper uses 24 hours).
    pub time_budget: Option<Duration>,
    /// Maximum number of distinct states to explore; `None` means unbounded.
    pub max_states: Option<usize>,
    /// Number of worker threads used to expand each BFS frontier.
    pub workers: usize,
    /// Whether to keep full predecessor information for violation-trace reconstruction.
    pub collect_traces: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            mode: CheckMode::FirstViolation,
            max_depth: None,
            time_budget: None,
            max_states: None,
            workers: 1,
            collect_traces: true,
        }
    }
}

impl CheckOptions {
    /// Options for a run-to-completion check with the paper's violation limit of 10,000.
    pub fn completion() -> Self {
        CheckOptions { mode: CheckMode::Completion { violation_limit: 10_000 }, ..Default::default() }
    }

    /// Sets the wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the maximum depth.
    pub fn with_max_depth(mut self, depth: u32) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Sets the maximum number of distinct states.
    pub fn with_max_states(mut self, states: usize) -> Self {
        self.max_states = Some(states);
        self
    }

    /// Sets the number of worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Options controlling random simulation (used by conformance checking, §3.5.2).
#[derive(Debug, Clone)]
pub struct SimulationOptions {
    /// Number of traces to generate.
    pub traces: usize,
    /// Maximum length (in transitions) of each trace.
    pub max_depth: u32,
    /// Wall-clock budget for the whole sampling run (the paper uses e.g. 30 minutes).
    pub time_budget: Option<Duration>,
    /// Random seed for reproducibility.
    pub seed: u64,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions { traces: 32, max_depth: 40, time_budget: None, seed: 0xC0FFEE }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let o = CheckOptions::default();
        assert_eq!(o.mode, CheckMode::FirstViolation);
        assert_eq!(o.workers, 1);
        assert!(o.collect_traces);
        let c = CheckOptions::completion();
        assert_eq!(c.mode, CheckMode::Completion { violation_limit: 10_000 });
    }

    #[test]
    fn builders_apply() {
        let o = CheckOptions::default()
            .with_max_depth(5)
            .with_max_states(100)
            .with_workers(0)
            .with_time_budget(Duration::from_secs(1));
        assert_eq!(o.max_depth, Some(5));
        assert_eq!(o.max_states, Some(100));
        assert_eq!(o.workers, 1, "worker count is clamped to at least one");
        assert_eq!(o.time_budget, Some(Duration::from_secs(1)));
    }
}
