//! Model-checking and simulation options.

use std::fmt;
use std::time::Duration;

use crate::spill::SpillConfig;
use crate::store::StoreMode;

/// Whether exploration keys its dedup maps, fingerprints and coverage counters on
/// canonical representatives under the specification's symmetry group.
///
/// With `n` symmetric servers every reachable `ZabState` has up to `n!` siblings that
/// differ only by a renaming of server ids; canonicalization explores one representative
/// per orbit, cutting `distinct_states` (and the memory/throughput axis of Table 5)
/// accordingly.  Violation traces are *de-canonicalized* before they are reported, so
/// witnesses still replay step-by-step on the original specification — see
/// [`crate::store::StateStore::reconstruct_trace_decanonicalized`].
///
/// The mode is a no-op for specifications without an attached symmetry group
/// (`Spec::symmetry` is `None`), which keeps the `REMIX_SYMMETRY` CI matrix safe for
/// state types that implement no `Canonicalize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SymmetryMode {
    /// Explore every concrete state (no symmetry reduction).  The default.
    #[default]
    Off,
    /// Key dedup, fingerprints and coverage on canonical representatives
    /// (`Spec::symmetry`), storing the per-edge permutations so violation traces can
    /// be de-canonicalized back into the original id frame.
    Canonicalize,
}

impl fmt::Display for SymmetryMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SymmetryMode::Off => "off",
            SymmetryMode::Canonicalize => "canonicalize",
        })
    }
}

impl SymmetryMode {
    /// The mode selected by the `REMIX_SYMMETRY` environment variable
    /// (`"canonicalize"` / `"on"` → [`SymmetryMode::Canonicalize`]), defaulting to
    /// [`SymmetryMode::Off`] when unset or unrecognised.
    ///
    /// Like [`StoreMode::from_env`], this is the hook CI uses to run the release-gated
    /// suites once per symmetry mode without a per-test parameter; explicit
    /// `with_symmetry(..)` calls always win.
    pub fn from_env() -> SymmetryMode {
        match std::env::var("REMIX_SYMMETRY").as_deref() {
            Ok("canonicalize") | Ok("canonical") | Ok("on") => SymmetryMode::Canonicalize,
            _ => SymmetryMode::Off,
        }
    }
}

/// Whether checking stops at the first invariant violation or runs to completion.
///
/// These are the two modes of Table 5: "(a) stopping at the first violation" and
/// "(b) running to completion (till the limit)".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckMode {
    /// Stop as soon as any invariant violation is found (Table 5, mode (a)).
    #[default]
    FirstViolation,
    /// Keep exploring; record up to `violation_limit` violating states (Table 5, mode (b)).
    Completion {
        /// Maximum number of violations recorded before stopping (the paper uses 10,000).
        violation_limit: usize,
    },
}

/// Options controlling an exhaustive model-checking run.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Stop-at-first-violation or run-to-completion — the two measurement modes of
    /// Table 5 ((a) and (b) respectively).
    pub mode: CheckMode,
    /// Maximum exploration depth in state transitions; `None` means unbounded.  Depth
    /// bounding is not used for the paper's tables (BFS levels are bounded by the
    /// configuration's fault and transaction budgets instead, §4.4) but supports quick
    /// sanity checks.
    pub max_depth: Option<u32>,
    /// Wall-clock budget; `None` means unbounded.  The paper's Table 5 runs use a
    /// 24-hour budget; the scaled-down reproduction defaults to minutes.
    pub time_budget: Option<Duration>,
    /// Maximum number of distinct states to explore; `None` means unbounded.  Used to
    /// bound the deep Table 4 bugs (ZK-4643/4646/4712) in bench loops.  In parallel runs
    /// the limit is checked as workers merge their successor batches, so the final count
    /// may overshoot by up to one in-flight batch (`batch_size`) per worker.
    pub max_states: Option<usize>,
    /// Number of worker threads expanding each BFS frontier, like TLC's `-workers` flag
    /// (§4.4: the paper's runs use a 40-core machine).  `1` runs inline on the calling
    /// thread with no thread spawns.
    pub workers: usize,
    /// Number of lock stripes of the discovered-state set (rounded up to a power of
    /// two).  Successor inserts only contend when two workers hit the same stripe, so
    /// this should comfortably exceed `workers`; the default of 64 keeps contention
    /// (reported in `CheckStats::shard_contention`) negligible for any realistic core
    /// count.
    pub shards: usize,
    /// Number of successors a worker buffers per stripe before merging them into the
    /// discovered-state set under one lock acquisition.  Remaining buffers are always
    /// merged at the BFS level boundary, preserving level-synchronous semantics.
    pub batch_size: usize,
    /// Whether to keep full predecessor information for violation-trace reconstruction
    /// (the counterexample traces of §3.5.3 / Table 4).
    pub collect_traces: bool,
    /// Which backend discovered states are kept in: the compact full-state arena
    /// ([`StoreMode::Full`], the default), or the TLC-style memory-bounded
    /// [`StoreMode::FingerprintOnly`] store that drops full states and reconstructs
    /// violation traces by bounded re-exploration of the recorded `(parent, label)`
    /// chains.  Defaults to [`StoreMode::from_env`] (the `REMIX_STORE_MODE` CI matrix
    /// hook); see [`crate::store`] for the memory model.
    pub store_mode: StoreMode,
    /// Whether dedup, fingerprints and violation bookkeeping key on canonical
    /// representatives under the specification's symmetry group (see [`SymmetryMode`]).
    /// Defaults to [`SymmetryMode::from_env`] (the `REMIX_SYMMETRY` CI matrix hook);
    /// a no-op for specifications without `Spec::symmetry`.
    pub symmetry: SymmetryMode,
    /// The out-of-core tier: when a memory budget is set, the store spills its
    /// fingerprint set to sorted disk runs and — in [`StoreMode::Full`] — BFS
    /// round-trips oversized frontiers through on-disk queues, so runs whose state
    /// count exceeds RAM still finish (with the same results; spilling never changes
    /// what is explored).  Defaults to [`SpillConfig::from_env`] (the
    /// `REMIX_MEM_BUDGET` / `REMIX_SPILL_DIR` hooks); inactive when no budget is set.
    pub spill: SpillConfig,
    /// Routes each successor batch to the worker *owning* its fingerprint's stripe
    /// (shard `% workers`) instead of letting the discovering worker insert it: every
    /// BFS level becomes an expand phase followed by an exchange-and-drain phase, so
    /// each stripe has a single writer — the communication pattern of a
    /// multi-process distributed checker, runnable in-process.  Off by default;
    /// results are unchanged (see `bfs` tests), only insert scheduling differs.
    /// Also enabled by `REMIX_ROUTE_BY_OWNER=1`.
    pub route_by_owner: bool,
    /// Dynamic partial-order reduction via sleep sets: transitions whose declared
    /// read/write footprints ([`remix_spec::Effect`]) prove them independent of an
    /// already-explored sibling are pruned, reported in
    /// `CheckStats::pruned_transitions`.  Sound for safety properties: every reachable
    /// state is still reached (at its minimal depth in BFS), only redundant
    /// interleavings between two reached states are skipped, so verdicts, distinct
    /// state counts and minimal violation depths are unchanged — see the partial-order
    /// reduction section of `ARCHITECTURE.md`.  A no-op for actions without declared
    /// effects.  Off by default; also enabled by `REMIX_POR=1`.
    pub por: bool,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            mode: CheckMode::FirstViolation,
            max_depth: None,
            time_budget: None,
            max_states: None,
            workers: 1,
            shards: 64,
            batch_size: 128,
            collect_traces: true,
            store_mode: StoreMode::from_env(),
            symmetry: SymmetryMode::from_env(),
            spill: SpillConfig::from_env(),
            route_by_owner: matches!(
                std::env::var("REMIX_ROUTE_BY_OWNER").as_deref(),
                Ok("1") | Ok("true") | Ok("on") | Ok("owner")
            ),
            por: matches!(
                std::env::var("REMIX_POR").as_deref(),
                Ok("1") | Ok("true") | Ok("on")
            ),
        }
    }
}

impl CheckOptions {
    /// Options for a run-to-completion check with the paper's violation limit of 10,000.
    pub fn completion() -> Self {
        CheckOptions {
            mode: CheckMode::Completion {
                violation_limit: 10_000,
            },
            ..Default::default()
        }
    }

    /// Sets the wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Sets the maximum depth.
    pub fn with_max_depth(mut self, depth: u32) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Sets the maximum number of distinct states.
    pub fn with_max_states(mut self, states: usize) -> Self {
        self.max_states = Some(states);
        self
    }

    /// Sets the number of worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the number of lock stripes of the discovered-state set.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Sets the per-stripe successor batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size.max(1);
        self
    }

    /// Selects the discovered-state store backend.
    pub fn with_store_mode(mut self, mode: StoreMode) -> Self {
        self.store_mode = mode;
        self
    }

    /// Selects the symmetry-reduction mode.
    pub fn with_symmetry(mut self, mode: SymmetryMode) -> Self {
        self.symmetry = mode;
        self
    }

    /// Sets the out-of-core configuration (memory budget + spill directory).
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.spill = spill;
        self
    }

    /// Arms the out-of-core tier with a memory budget in bytes (shorthand for
    /// [`CheckOptions::with_spill`] on the current config).
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.spill.budget_bytes = Some(bytes);
        self
    }

    /// Enables or disables owner-routed insertion (see the field docs).
    pub fn with_owner_routing(mut self, on: bool) -> Self {
        self.route_by_owner = on;
        self
    }

    /// Enables or disables sleep-set partial-order reduction (see the field docs).
    pub fn with_por(mut self, on: bool) -> Self {
        self.por = on;
        self
    }
}

/// Options controlling random simulation (used by conformance checking, §3.5.2).
#[derive(Debug, Clone)]
pub struct SimulationOptions {
    /// Number of traces to generate (§3.5.2 samples model-level traces to replay against
    /// the implementation).
    pub traces: usize,
    /// Maximum length (in transitions) of each trace.
    pub max_depth: u32,
    /// Wall-clock budget for the whole sampling run (the paper uses e.g. 30 minutes).
    /// When it binds, how many trace indices complete before the cut-off depends on
    /// scheduling, so budget-limited batches are not comparable across worker counts.
    pub time_budget: Option<Duration>,
    /// Random seed for reproducibility: trace `i` samples from the sub-stream
    /// `CheckerRng::for_trace(seed, i)`, so equal seeds yield identical trace batches
    /// for any `workers` value (absent a binding time budget).
    pub seed: u64,
    /// Worker threads sampling disjoint stripes of the trace-index space concurrently
    /// (the parallelization contract of the conformance checker's replay, §3.5.2).
    /// `1` runs inline on the calling thread.
    pub workers: usize,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            traces: 32,
            max_depth: 40,
            time_budget: None,
            seed: 0xC0FFEE,
            workers: 1,
        }
    }
}

impl SimulationOptions {
    /// Sets the number of traces to sample.
    pub fn with_traces(mut self, traces: usize) -> Self {
        self.traces = traces;
        self
    }

    /// Sets the per-trace depth bound.
    pub fn with_max_depth(mut self, depth: u32) -> Self {
        self.max_depth = depth;
        self
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of sampling worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let o = CheckOptions::default();
        assert_eq!(o.mode, CheckMode::FirstViolation);
        assert_eq!(o.workers, 1);
        // The defaults follow the REMIX_STORE_MODE / REMIX_SYMMETRY env hooks, so
        // assert against them rather than literals — the test then holds in CI's
        // (store mode × symmetry mode) matrix too.
        assert_eq!(o.store_mode, StoreMode::from_env());
        assert_eq!(o.symmetry, SymmetryMode::from_env());
        assert_eq!(
            o.por,
            matches!(
                std::env::var("REMIX_POR").as_deref(),
                Ok("1") | Ok("true") | Ok("on")
            ),
            "POR defaults follow the REMIX_POR env hook"
        );
        assert!(o.collect_traces);
        assert!(o.shards >= 1 && o.batch_size >= 1);
        let c = CheckOptions::completion();
        assert_eq!(
            c.mode,
            CheckMode::Completion {
                violation_limit: 10_000
            }
        );
    }

    #[test]
    fn builders_apply() {
        let o = CheckOptions::default()
            .with_max_depth(5)
            .with_max_states(100)
            .with_workers(0)
            .with_shards(0)
            .with_batch_size(0)
            .with_store_mode(StoreMode::FingerprintOnly)
            .with_symmetry(SymmetryMode::Canonicalize)
            .with_mem_budget(1 << 20)
            .with_owner_routing(true)
            .with_por(true)
            .with_time_budget(Duration::from_secs(1));
        assert_eq!(o.store_mode, StoreMode::FingerprintOnly);
        assert_eq!(o.symmetry, SymmetryMode::Canonicalize);
        assert_eq!(o.spill.budget_bytes, Some(1 << 20));
        assert!(o.route_by_owner);
        assert!(o.por);
        assert_eq!(o.max_depth, Some(5));
        assert_eq!(o.max_states, Some(100));
        assert_eq!(o.workers, 1, "worker count is clamped to at least one");
        assert_eq!(o.shards, 1, "shard count is clamped to at least one");
        assert_eq!(o.batch_size, 1, "batch size is clamped to at least one");
        assert_eq!(o.time_budget, Some(Duration::from_secs(1)));
    }
}
