//! Refinement checking: does a coarse composition simulate a finer one?
//!
//! The composer's interaction-preservation check (§3.2) is *syntactic* — it compares
//! declared variable footprints.  This module is the semantic counterpart: it explores
//! the state spaces of a fine and a coarse composition in parallel (reusing the
//! lock-striped fingerprint-shard design of [`crate::bfs`]) and verifies that, under a
//! [`TraceProjection`], the coarse specification admits exactly the externally visible
//! behaviours of the fine one:
//!
//! * every *stable* reachable projection of the fine composition is a reachable
//!   projection of the coarse composition (the coarsening loses no interactions), and
//!   vice versa (the coarsening invents none);
//! * in [`RefineMode::Simulation`], additionally every fine *stabilization step* — a
//!   transition between consecutive stable projections, possibly through a stretch of
//!   unstable states that a coarse action executes atomically — is matched by a path in
//!   the coarse projected quotient graph (weak simulation up to stuttering).
//!
//! On divergence the checker reconstructs a concrete witness trace of the offending
//! side via BFS parent pointers and delta-debugs it down to a locally minimal trace
//! that still exhibits the divergence ([`crate::shrink`]).
//!
//! The projections-only comparison is deliberately performed on quotient classes (all
//! concrete states with the same projection are merged), which over-approximates the
//! coarse side's matching power: the check can miss refinement violations that only
//! distinguish states below the projection, but it never reports a false divergence
//! for that reason.

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

use remix_spec::{
    CanonFn, LabelId, LabelTable, Perm, Spec, SpecState, Trace, TraceProjection, Value,
};

use crate::fingerprint::{fingerprint, Fingerprint};
use crate::options::SymmetryMode;
use crate::shrink::{shrink_trace, ShrinkOutcome};
use crate::store::{Insert, StateIndex, StateStore, StoreMode};
use crate::sync::{OrderedRwLock, RefineLsetsRank};

/// What the refinement checker verifies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefineMode {
    /// Two-sided inclusion of the reachable stable projections plus matching of every
    /// fine stabilization step by a coarse path (weak simulation on the projected
    /// quotient).  The default and the strongest check.
    #[default]
    Simulation,
    /// Two-sided inclusion of the reachable stable projections only (every condensed
    /// stable snapshot of one side is reachable on the other).  Cheaper; skips the
    /// per-step matching.
    TraceInclusion,
}

impl fmt::Display for RefineMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RefineMode::Simulation => "simulation",
            RefineMode::TraceInclusion => "trace-inclusion",
        })
    }
}

/// Options of a refinement check.
#[derive(Debug, Clone)]
pub struct RefineOptions {
    /// What to verify.
    pub mode: RefineMode,
    /// Worker threads expanding each exploration frontier (both sides).
    pub workers: usize,
    /// Lock stripes of each side's discovered-state set (rounded up to a power of two).
    pub shards: usize,
    /// Maximum exploration depth per side; `None` = unbounded.
    pub max_depth: Option<u32>,
    /// Maximum distinct states per side; `None` = unbounded.  A side that hits the limit
    /// is marked incomplete and inclusion checks *against* it are skipped (a missing
    /// projection cannot be distinguished from a not-yet-explored one).
    pub max_states: Option<usize>,
    /// Wall-clock budget for the whole check; `None` = unbounded.
    pub time_budget: Option<Duration>,
    /// Delta-debug the divergence witness down to a locally minimal trace that still
    /// diverges (via [`crate::shrink`]).
    pub shrink_witness: bool,
    /// Which backend each side keeps its discovered states in.  With
    /// [`StoreMode::FingerprintOnly`] the concrete states are dropped after expansion
    /// and divergence witnesses are reconstructed by bounded re-exploration of the
    /// recorded `(parent index, label)` chains — the memory-bounded configuration for
    /// large refinement pairs.
    pub store_mode: StoreMode,
    /// Whether each side's dedup map, fingerprints and projections key on canonical
    /// representatives under its specification's symmetry group (see
    /// [`SymmetryMode`]).  Sound only when the projection is *equivariant* — it must
    /// map an orbit of concrete states to one orbit of projected states, which holds
    /// for projections over permutation-invariant summaries but **not** for
    /// projections exposing per-server-indexed values (two sides may then pick
    /// different representatives of the same projected class and report a spurious
    /// divergence).  The checker therefore applies this mode only when the projection
    /// declares `TraceProjection::assume_equivariant` (and the spec carries
    /// `Spec::symmetry`); otherwise the knob is ignored, which keeps the
    /// `REMIX_SYMMETRY` CI matrix sound for the per-server Zab projections.
    /// Divergence witnesses are de-canonicalized before shrinking, so they replay on
    /// the original specification.  Defaults to [`SymmetryMode::from_env`].
    pub symmetry: SymmetryMode,
    /// Extra BFS levels explored after a state or depth budget trips, expanding only
    /// *unstable* states (stable successors are recorded but not re-expanded).
    ///
    /// A hard stop mid-stabilization is what made capped runs collect almost no
    /// stable projections (the 5-server mSpec-1 row: 1 fine projection against
    /// 16,355 coarse ones — the stability predicate was never sampled under the
    /// cap): the cap lands while every path is still inside a coarse action's
    /// atomic stretch.  Draining finishes the stabilizations already in progress,
    /// which is sound — every projection recorded is genuinely reachable — and
    /// bounded, because only the unstable closure of the final frontier is
    /// expanded, for at most this many levels.  `0` restores the hard stop.
    pub stabilization_grace: u32,
    /// Memory budget and spill directory for each side's discovered-state store
    /// (see [`crate::spill::SpillConfig`]); defaults to the `REMIX_MEM_BUDGET` /
    /// `REMIX_SPILL_DIR` environment hooks.
    pub spill: crate::spill::SpillConfig,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            mode: RefineMode::Simulation,
            workers: 1,
            shards: 64,
            max_depth: None,
            max_states: None,
            time_budget: None,
            shrink_witness: true,
            store_mode: StoreMode::from_env(),
            symmetry: SymmetryMode::from_env(),
            stabilization_grace: 16,
            spill: crate::spill::SpillConfig::from_env(),
        }
    }
}

impl RefineOptions {
    /// Sets the number of worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the check mode.
    pub fn with_mode(mut self, mode: RefineMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the per-side distinct-state cap.
    pub fn with_max_states(mut self, states: usize) -> Self {
        self.max_states = Some(states);
        self
    }

    /// Sets the per-side depth bound.
    pub fn with_max_depth(mut self, depth: u32) -> Self {
        self.max_depth = Some(depth);
        self
    }

    /// Sets the wall-clock budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = Some(budget);
        self
    }

    /// Disables witness shrinking.
    pub fn without_shrinking(mut self) -> Self {
        self.shrink_witness = false;
        self
    }

    /// Selects the discovered-state store backend for both sides.
    pub fn with_store_mode(mut self, mode: StoreMode) -> Self {
        self.store_mode = mode;
        self
    }

    /// Selects the symmetry-reduction mode for both sides (see the field docs for the
    /// equivariance requirement on the projection).
    pub fn with_symmetry(mut self, mode: SymmetryMode) -> Self {
        self.symmetry = mode;
        self
    }

    /// Sets the number of unstable-only BFS levels drained after a budget trips.
    pub fn with_stabilization_grace(mut self, levels: u32) -> Self {
        self.stabilization_grace = levels;
        self
    }

    /// Sets the store memory budget and spill directory for both sides.
    pub fn with_spill(mut self, spill: crate::spill::SpillConfig) -> Self {
        self.spill = spill;
        self
    }
}

/// How the fine and the coarse composition diverged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// The fine composition reaches a stable projection the coarse one cannot: the
    /// coarsening *loses* externally visible behaviour (e.g. a dropped update).
    MissingInCoarse,
    /// The coarse composition reaches a stable projection the fine one cannot: the
    /// coarsening *invents* behaviour (e.g. electing a leader fast leader election
    /// would never elect).
    ExtraInCoarse,
    /// A fine stabilization step has no matching path in the coarse projected quotient
    /// (both endpoints are coarse-reachable, but not from each other).
    UnmatchedStep,
}

impl fmt::Display for DivergenceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DivergenceKind::MissingInCoarse => "projection missing in the coarse composition",
            DivergenceKind::ExtraInCoarse => "projection only reachable in the coarse composition",
            DivergenceKind::UnmatchedStep => {
                "fine stabilization step unmatched by the coarse composition"
            }
        })
    }
}

/// A refinement divergence: the kind, the offending projection, and a concrete witness.
#[derive(Debug, Clone)]
pub struct RefineDivergence<S> {
    /// What went wrong.
    pub kind: DivergenceKind,
    /// Name of the specification the witness is an execution of (the fine side for
    /// [`DivergenceKind::MissingInCoarse`] / [`DivergenceKind::UnmatchedStep`], the
    /// coarse side for [`DivergenceKind::ExtraInCoarse`]).
    pub witness_spec: String,
    /// The offending projected state, rendered variable by variable.
    pub projection: String,
    /// A concrete execution of `witness_spec` reaching the divergence; shrunk to a
    /// locally minimal diverging trace when [`RefineOptions::shrink_witness`] is set.
    ///
    /// For [`DivergenceKind::UnmatchedStep`] the trace ends in the concrete state that
    /// completed the unmatched edge.  When the same state is reachable through several
    /// stable contexts, the recorded BFS path may stabilize from a *different* (and
    /// possibly matched) source class than the reported edge; in that case ddmin
    /// leaves the trace unshrunk rather than minimizing away the divergence.
    pub witness: Trace<S>,
    /// Transition count of the witness before shrinking.
    pub original_depth: usize,
}

/// Exploration statistics of one refinement check.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RefineStats {
    /// Distinct concrete states explored on the fine side.
    pub fine_states: usize,
    /// Distinct concrete states explored on the coarse side.
    pub coarse_states: usize,
    /// Distinct stable projections reached by the fine side.
    pub fine_projections: usize,
    /// Distinct stable projections reached by the coarse side.
    pub coarse_projections: usize,
    /// Fine stabilization edges checked against the coarse quotient (Simulation mode).
    pub edges_checked: usize,
    /// Whether the fine side was explored to exhaustion within the budgets.
    pub fine_complete: bool,
    /// Whether the coarse side was explored to exhaustion within the budgets.
    pub coarse_complete: bool,
    /// Out-of-core activity of the fine side's store (zeroed when everything fit in
    /// the memory budget).
    pub fine_spill: crate::spill::SpillStats,
    /// Out-of-core activity of the coarse side's store.
    pub coarse_spill: crate::spill::SpillStats,
    /// Wall-clock time of the whole check.
    pub elapsed: Duration,
}

/// Three-valued verdict of a refinement check.
///
/// A bounded exploration that found nothing is *not* evidence of refinement: a
/// truncated side may simply have stopped short of the divergence.  The verdict is
/// therefore definite only when a concrete witness exists ([`Diverges`]) or when both
/// sides were explored to exhaustion ([`Refines`]); everything else is
/// [`Inconclusive`].
///
/// [`Diverges`]: RefineVerdict::Diverges
/// [`Refines`]: RefineVerdict::Refines
/// [`Inconclusive`]: RefineVerdict::Inconclusive
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefineVerdict {
    /// Both sides exhausted, no divergence: the coarse composition simulates the fine
    /// one over the *entire* reachable state space.
    Refines,
    /// A concrete divergence witness was found (definite regardless of truncation).
    Diverges,
    /// No divergence in the explored prefix, but at least one side was truncated by a
    /// state/depth/time budget — the check proves nothing about the full space.
    Inconclusive,
}

impl RefineVerdict {
    /// Stable lower-case serialization used in JSON rows (`refines` / `diverges` /
    /// `inconclusive`).
    pub fn as_str(&self) -> &'static str {
        match self {
            RefineVerdict::Refines => "refines",
            RefineVerdict::Diverges => "diverges",
            RefineVerdict::Inconclusive => "inconclusive",
        }
    }
}

impl fmt::Display for RefineVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The outcome of a refinement check.
#[derive(Debug, Clone)]
pub struct RefineOutcome<S> {
    /// Name of the fine (concrete) specification.
    pub fine_spec: String,
    /// Name of the coarse (abstract) specification.
    pub coarse_spec: String,
    /// Name of the projection the comparison ran under.
    pub projection: String,
    /// The mode the check ran in.
    pub mode: RefineMode,
    /// Exploration statistics.
    pub stats: RefineStats,
    /// The first divergence found, if any.
    pub divergence: Option<RefineDivergence<S>>,
}

impl<S> RefineOutcome<S> {
    /// The three-valued verdict.  [`RefineVerdict::Refines`] and
    /// [`RefineVerdict::Diverges`] are definite; [`RefineVerdict::Inconclusive`] means
    /// a budget truncated the exploration before anything was proved.
    pub fn verdict(&self) -> RefineVerdict {
        if self.divergence.is_some() {
            RefineVerdict::Diverges
        } else if self.stats.fine_complete && self.stats.coarse_complete {
            RefineVerdict::Refines
        } else {
            RefineVerdict::Inconclusive
        }
    }

    /// `Some(true)` when refinement was *proved* (both sides exhausted, no
    /// divergence), `Some(false)` when a concrete divergence witness exists, and
    /// `None` when the exploration was truncated before either could be established.
    ///
    /// The `Option` return is deliberate: an earlier version returned a bare `bool`
    /// that was `true` for truncated, nothing-checked runs, and downstream reports
    /// rendered those as passing verdicts.  Use [`verdict`](Self::verdict) for the
    /// symbolic form and [`divergence`](Self::divergence) to inspect a witness.
    pub fn refines(&self) -> Option<bool> {
        match self.verdict() {
            RefineVerdict::Refines => Some(true),
            RefineVerdict::Diverges => Some(false),
            RefineVerdict::Inconclusive => None,
        }
    }

    /// `true` when the verdict is definite: either a divergence was found (a concrete
    /// witness exists regardless of how much was explored), or both sides were
    /// explored to exhaustion so [`refines`](Self::refines) is a statement about the
    /// whole reachable state space rather than a bounded prefix.
    pub fn conclusive(&self) -> bool {
        self.verdict() != RefineVerdict::Inconclusive
    }
}

impl<S: fmt::Debug> fmt::Display for RefineOutcome<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "refinement {} ⊑ {} under {} ({} mode)",
            self.fine_spec, self.coarse_spec, self.projection, self.mode
        )?;
        writeln!(
            f,
            "fine:   {} states, {} stable projections{}",
            self.stats.fine_states,
            self.stats.fine_projections,
            if self.stats.fine_complete {
                ""
            } else {
                " (truncated)"
            }
        )?;
        writeln!(
            f,
            "coarse: {} states, {} stable projections{}",
            self.stats.coarse_states,
            self.stats.coarse_projections,
            if self.stats.coarse_complete {
                ""
            } else {
                " (truncated)"
            }
        )?;
        match &self.divergence {
            None => match self.verdict() {
                RefineVerdict::Refines => writeln!(f, "verdict: refines"),
                _ => writeln!(
                    f,
                    "verdict: inconclusive (no divergence in the explored prefix; \
                     a truncated side proves nothing about the full space)"
                ),
            },
            Some(d) => {
                writeln!(
                    f,
                    "verdict: {} — witness ({} steps):",
                    d.kind,
                    d.witness.depth()
                )?;
                write!(f, "{}", d.witness)
            }
        }
    }
}

/// Fingerprint of a projected state (64 bits suffice: projections are compared, not
/// stored, and any collision would only *mask* a divergence on quotient classes that
/// already over-approximate).
fn projection_key(projected: &BTreeMap<String, Value>) -> u64 {
    let mut h = DefaultHasher::new();
    projected.hash(&mut h);
    h.finish()
}

/// Renders a projected state for divergence reports.
fn render_projection(projected: &BTreeMap<String, Value>) -> String {
    let fields: Vec<String> = projected
        .iter()
        .map(|(k, v)| format!("{k} = {v}"))
        .collect();
    format!("[{}]", fields.join(", "))
}

/// One side's exploration summary.
///
/// Concrete states, parent indices and interned action labels live in the shared
/// [`StateStore`] arena (in [`StoreMode::FingerprintOnly`] the states are dropped after
/// expansion); the refinement-specific *lset* annotation — the stable projections a
/// state can be "inside of": its own projection when stable, otherwise the stable
/// projections last seen on some path leading here — lives in a side table keyed by
/// [`StateIndex`].
struct SideSummary<S: SpecState> {
    /// Stable projections → representative state index and discovery depth.
    projs: HashMap<u64, (StateIndex, u32)>,
    /// Stabilization edges of the projected quotient: `from → {to}` with `from ≠ to`.
    edges: HashMap<u64, BTreeSet<u64>>,
    /// Per-edge representative: the concrete state that first completed the edge (its
    /// BFS parent chain need not stabilize from `from`, but it ends in the edge's
    /// target and is the best concrete anchor available without per-context parents).
    edge_reps: HashMap<(u64, u64), StateIndex>,
    /// All discovered concrete states (dedup map, parent chains, optional states).
    seen: StateStore<S>,
    /// The run's interned action labels.
    labels: LabelTable,
    /// Per-state lsets.  Written only by the sequential level merge; read concurrently
    /// by the expansion workers' dedup scout.
    lsets: OrderedRwLock<RefineLsetsRank, HashMap<StateIndex, BTreeSet<u64>>>,
    /// The active canonicalization function when this side explored canonical
    /// representatives (symmetry reduction); `None` otherwise.
    canon: Option<CanonFn<S>>,
    /// Whether exploration ran to exhaustion within the budgets.
    complete: bool,
    /// Stabilization edges checked incrementally against the other side's quotient
    /// (fine side in [`RefineMode::Simulation`] with a complete coarse side only).
    edges_checked: usize,
    /// The first stabilization edge with no matching coarse path, by discovery level
    /// then key order (recorded during exploration; turned into a divergence by the
    /// caller once the cheaper projection-inclusion checks come up clean).
    unmatched_edge: Option<(u64, u64)>,
}

impl<S: SpecState> SideSummary<S> {
    /// Returns the set of projections reachable from `from` in the quotient graph
    /// (including `from` itself), memoized by the caller.
    fn reachable_from(&self, from: u64) -> HashSet<u64> {
        let mut out: HashSet<u64> = HashSet::new();
        let mut frontier = vec![from];
        out.insert(from);
        while let Some(p) = frontier.pop() {
            if let Some(succs) = self.edges.get(&p) {
                for &q in succs {
                    if out.insert(q) {
                        frontier.push(q);
                    }
                }
            }
        }
        out
    }

    /// Reconstructs the concrete trace to `index` (a parent-index walk in the full
    /// store, a bounded label-chain replay in the fingerprint-only store; a
    /// de-canonicalizing replay under symmetry reduction, so the witness is an
    /// execution of the original specification).
    fn witness(&self, spec: &Spec<S>, index: StateIndex) -> Trace<S> {
        match &self.canon {
            Some(canon) => {
                self.seen
                    .reconstruct_trace_decanonicalized(spec, &self.labels, index, canon)
            }
            None => self.seen.reconstruct_trace(spec, &self.labels, index),
        }
    }

    /// The state at `index`: the stored (canonical, under symmetry) state when
    /// available, else the last state of the replayed chain.  Symmetry is only active
    /// under a declared-equivariant projection, whose values agree across a state and
    /// its renamings, so the original-frame replay result projects identically.
    fn state_of(&self, spec: &Spec<S>, index: StateIndex) -> S {
        self.seen.with_state(index, S::clone).unwrap_or_else(|| {
            self.witness(spec, index)
                .last_state()
                .expect("a stored chain is never empty")
                .clone()
        })
    }

    /// The projection key of a stable state.  No canonicalization is needed even
    /// under symmetry reduction: the mode is gated on
    /// `TraceProjection::assume_equivariant`, under which projection and stability
    /// agree on every member of an orbit — so projecting the raw state yields the
    /// same key the exploration recorded for its canonical representative.
    fn project_key_of(&self, projection: &TraceProjection<S>, state: &S) -> Option<u64> {
        projection
            .is_stable(state)
            .then(|| projection_key(&projection.project_state(state)))
    }
}

/// One successor produced by a worker, to be merged into the side summary.
struct SuccessorRecord<S> {
    fp: Fingerprint,
    parent: StateIndex,
    label: LabelId,
    state: S,
    /// The permutation that canonicalized `state`, under symmetry reduction.
    perm: Option<Perm>,
    /// Projection key when the successor is stable.
    stable_key: Option<u64>,
    /// The parent's `lset` at expansion time (stable parents carry their own key);
    /// shared with the frontier entry — read-only until the merge.
    parent_lset: Arc<BTreeSet<u64>>,
}

/// Explores one side of the refinement pair, recording stable projections and the
/// stabilization edges of the projected quotient graph.
///
/// When `stop_when_missing_from` is set (the fully explored coarse projection set),
/// exploration stops at the end of the first BFS level that discovers a stable
/// projection absent from that set: deeper levels cannot contain a shallower
/// divergence, so the minimal-depth divergence choice is unaffected while diverging
/// checks skip the rest of the (often much larger) fine state space.
///
/// When `simulate_against` is set (the fine side of a [`RefineMode::Simulation`]
/// check, after the coarse side completed), every stabilization edge is checked
/// against the coarse quotient as soon as the level discovering it finishes, so a run
/// truncated by a budget still reports how many edges it actually verified instead of
/// `edges_checked: 0`.
fn explore_side<S: SpecState>(
    spec: &Spec<S>,
    projection: &TraceProjection<S>,
    options: &RefineOptions,
    deadline: Option<Instant>,
    stop_when_missing_from: Option<&HashMap<u64, (StateIndex, u32)>>,
    simulate_against: Option<&SideSummary<S>>,
) -> SideSummary<S> {
    // Symmetry reduction in a refinement comparison additionally requires the
    // projection to be equivariant (orbits of concrete states must project to one
    // class), declared via `TraceProjection::assume_equivariant` — without it the two
    // sides could pick different representatives of the same projected class and
    // report a spurious divergence, so the knob is ignored rather than unsound.
    let canon: Option<CanonFn<S>> = match options.symmetry {
        SymmetryMode::Canonicalize if projection.is_equivariant() => spec.symmetry.clone(),
        _ => None,
    };
    let mut summary = SideSummary {
        projs: HashMap::new(),
        edges: HashMap::new(),
        edge_reps: HashMap::new(),
        seen: StateStore::with_spill(options.store_mode, options.shards, &options.spill),
        labels: LabelTable::new(),
        lsets: OrderedRwLock::new(HashMap::new()),
        canon,
        complete: true,
        edges_checked: 0,
        unmatched_edge: None,
    };

    // Frontier entries carry the lset snapshot their successors inherit.  Under
    // symmetry reduction the frontier, the store, the stable-projection set and the
    // quotient edges all live in canonical space.
    let mut frontier: Vec<(StateIndex, S, Arc<BTreeSet<u64>>)> = Vec::new();
    for init in &spec.init {
        let (seed, perm) = match &summary.canon {
            Some(canon) => {
                let (c, p) = canon(init);
                (c, Some(p))
            }
            None => (init.clone(), None),
        };
        let fp = fingerprint(&seed);
        let mut handle = summary.seen.lock_shard(summary.seen.shard_of(fp));
        let insert = match perm {
            Some(p) => handle.insert_canonical(fp, None, LabelTable::init_id(), seed, p),
            None => handle.insert(fp, None, LabelTable::init_id(), seed),
        };
        let Insert::Fresh(index, state) = insert else {
            continue;
        };
        drop(handle);
        let mut lset = BTreeSet::new();
        if projection.is_stable(&state) {
            let projected = projection.project_state(&state);
            let key = projection_key(&projected);
            lset.insert(key);
            summary.projs.entry(key).or_insert((index, 0));
        }
        summary.lsets.write().insert(index, lset.clone());
        frontier.push((index, state, Arc::new(lset)));
    }

    let workers = options.workers.max(1);
    let mut depth: u32 = 0;
    // Coarse-quotient reachability, memoized across levels for the incremental edge
    // check (Simulation mode, complete coarse side).
    let mut reach_memo: HashMap<u64, HashSet<u64>> = HashMap::new();
    // `Some(levels_drained)` once a state/depth budget has tripped: the run is
    // incomplete, but stabilizations already in progress are finished (unstable
    // states only) for up to `stabilization_grace` extra levels, so the projection
    // and edge sets are populated instead of frozen mid-atomic-stretch.
    let mut draining: Option<u32> = None;
    while !frontier.is_empty() {
        if let Some(deadline) = deadline {
            if Instant::now() >= deadline {
                summary.complete = false;
                break;
            }
        }
        if draining.is_none() {
            let depth_hit = options.max_depth.is_some_and(|max| depth >= max);
            let states_hit = options
                .max_states
                .is_some_and(|max| summary.seen.len() >= max);
            if depth_hit || states_hit {
                summary.complete = false;
                if options.stabilization_grace == 0 {
                    break;
                }
                draining = Some(0);
            }
        }
        if let Some(drained) = draining {
            if drained >= options.stabilization_grace {
                break;
            }
            draining = Some(drained + 1);
        }

        // Expand the frontier: successor enumeration, fingerprinting and projection run
        // in parallel; workers share the store's dedup map and the lset table read-only.
        let effective = if frontier.len() < 64 { 1 } else { workers };
        let chunk = frontier.len().div_ceil(effective);
        let mut batches: Vec<Vec<SuccessorRecord<S>>> = Vec::with_capacity(effective);
        if effective == 1 {
            batches.push(expand_chunk(spec, projection, &summary, &frontier));
        } else {
            std::thread::scope(|scope| {
                let summary = &summary;
                let handles: Vec<_> = frontier
                    .chunks(chunk)
                    .map(|slice| {
                        scope.spawn(move || expand_chunk(spec, projection, summary, slice))
                    })
                    .collect();
                for h in handles {
                    batches.push(h.join().expect("refine worker panicked"));
                }
            });
        }

        // Merge sequentially at the level boundary: dedup against the store, record
        // stable projections and stabilization edges, and build the next frontier.
        // States whose lset grew are re-enqueued so their successors learn the new
        // contexts.
        let child_depth = depth + 1;
        let mut next: Vec<(StateIndex, S, Arc<BTreeSet<u64>>)> = Vec::new();
        let mut new_edges: Vec<(u64, u64)> = Vec::new();
        for batch in batches {
            for rec in batch {
                let child_lset: BTreeSet<u64> = match rec.stable_key {
                    Some(key) => std::iter::once(key).collect(),
                    None => (*rec.parent_lset).clone(),
                };
                let mut handle = summary.seen.lock_shard(summary.seen.shard_of(rec.fp));
                let insert = match rec.perm {
                    Some(perm) => handle.insert_canonical(
                        rec.fp,
                        Some(rec.parent),
                        rec.label,
                        rec.state,
                        perm,
                    ),
                    None => handle.insert(rec.fp, Some(rec.parent), rec.label, rec.state),
                };
                drop(handle);
                let index = match &insert {
                    Insert::Fresh(index, _) | Insert::Existing(index, _) => *index,
                };
                if let Some(key) = rec.stable_key {
                    for &from in &*rec.parent_lset {
                        if from != key {
                            if summary.edges.entry(from).or_default().insert(key) {
                                new_edges.push((from, key));
                            }
                            // Remember the concrete state completing this edge, so an
                            // unmatched-step divergence can reconstruct a witness that
                            // actually ends with the offending stabilization.
                            summary.edge_reps.entry((from, key)).or_insert(index);
                        }
                    }
                }
                match insert {
                    Insert::Existing(index, state) => {
                        // Known state: merge the lset; a grown lset on an *unstable*
                        // state changes what its successors stabilize from, so re-expand.
                        let mut lsets = summary.lsets.write();
                        let existing = lsets.entry(index).or_default();
                        let before = existing.len();
                        existing.extend(child_lset.iter().copied());
                        let grew = existing.len() > before;
                        let merged = Arc::new(existing.clone());
                        drop(lsets);
                        if grew && rec.stable_key.is_none() {
                            next.push((index, state, merged));
                        }
                    }
                    Insert::Fresh(index, state) => {
                        if let Some(key) = rec.stable_key {
                            summary.projs.entry(key).or_insert((index, child_depth));
                        }
                        summary.lsets.write().insert(index, child_lset.clone());
                        // While draining, stable successors close their stabilization
                        // and are not expanded further: only the unstable closure of
                        // the final frontier grows the capped exploration.
                        if draining.is_none() || rec.stable_key.is_none() {
                            next.push((index, state, Arc::new(child_lset)));
                        }
                    }
                }
            }
        }
        // Incremental simulation check: match the level's fresh stabilization edges
        // against the (complete) coarse quotient right away, so a budget-truncated
        // run reports the edge coverage it actually achieved.  The first unmatched
        // edge is recorded, not acted on: the caller keeps the established check
        // precedence (projection inclusion first, then edge matching).
        if let Some(coarse) = simulate_against {
            if summary.unmatched_edge.is_none() {
                new_edges.sort_unstable();
                for (from, to) in new_edges {
                    summary.edges_checked += 1;
                    let reach = reach_memo
                        .entry(from)
                        .or_insert_with(|| coarse.reachable_from(from));
                    if !reach.contains(&to) && coarse.complete {
                        // Absence from an *incomplete* coarse quotient proves
                        // nothing (the matching path may lie past the coarse
                        // budget); only a complete quotient condemns an edge.
                        summary.unmatched_edge = Some((from, to));
                        break;
                    }
                }
            }
        }
        if let Some(known) = stop_when_missing_from {
            if summary.projs.keys().any(|k| !known.contains_key(k)) {
                // A divergence exists at (or above) this level; deeper levels cannot
                // beat its depth.  The side is intentionally left incomplete.
                summary.complete = false;
                break;
            }
        }
        frontier = next;
        depth += 1;
    }
    summary
}

/// Expands one slice of the frontier, computing successors, fingerprints and projections.
fn expand_chunk<S: SpecState>(
    spec: &Spec<S>,
    projection: &TraceProjection<S>,
    summary: &SideSummary<S>,
    slice: &[(StateIndex, S, Arc<BTreeSet<u64>>)],
) -> Vec<SuccessorRecord<S>> {
    let mut out = Vec::new();
    for (parent_index, state, lset) in slice {
        // The successor callback must stay lock-free (the concurrency lint enforces
        // this workspace-wide): it only canonicalizes, fingerprints and projects.
        // The store/lset scout that decides whether a record is worth carrying to
        // the merge runs *after* the callback returns, over the buffered records.
        let first = out.len();
        spec.for_each_successor(state, &summary.labels, |label, next, _effect| {
            // Under symmetry the successor is replaced by its orbit's canonical
            // representative before fingerprinting and projecting.
            let (next, perm) = match &summary.canon {
                Some(canon) => {
                    let (c, p) = canon(&next);
                    (c, Some(p))
                }
                None => (next, None),
            };
            let fp = fingerprint(&next);
            let stable_key = if projection.is_stable(&next) {
                Some(projection_key(&projection.project_state(&next)))
            } else {
                None
            };
            out.push(SuccessorRecord {
                fp,
                parent: *parent_index,
                label,
                state: next,
                perm,
                stable_key,
                parent_lset: Arc::clone(lset),
            });
        });
        // Cheap scout: drop successors that are already known *and* whose lset
        // already covers the parent context (the merge re-checks authoritatively).
        // Stable (order-preserving) so merge order stays the enumeration order.
        let tail = out.split_off(first);
        out.extend(tail.into_iter().filter(|rec| {
            !summary.seen.find(rec.fp).is_some_and(|index| {
                summary
                    .lsets
                    .read()
                    .get(&index)
                    .is_some_and(|known| rec.parent_lset.iter().all(|l| known.contains(l)))
            })
        }));
    }
    out
}

/// Checks that `coarse` simulates `fine` under `projection`.
///
/// Returns a [`RefineOutcome`]; [`RefineOutcome::refines`] is the verdict and
/// [`RefineOutcome::divergence`] carries a (shrunk) concrete witness trace on failure.
/// Inclusion of one side's projections in the other is only checked when the other side
/// was explored to exhaustion; a truncated side yields an inconclusive (but
/// divergence-free) outcome rather than a spurious divergence.
pub fn check_refinement<S: SpecState>(
    fine: &Spec<S>,
    coarse: &Spec<S>,
    projection: &TraceProjection<S>,
    options: &RefineOptions,
) -> RefineOutcome<S> {
    let start = Instant::now();
    let deadline = options.time_budget.map(|b| start + b);

    let coarse_side = explore_side(coarse, projection, options, deadline, None, None);
    let fine_side = explore_side(
        fine,
        projection,
        options,
        deadline,
        // With the coarse set fully known, the fine exploration may stop at the first
        // level exhibiting a missing projection instead of exhausting its state space.
        if coarse_side.complete {
            Some(&coarse_side.projs)
        } else {
            None
        },
        // ... and stabilization edges are checked level by level, so even a truncated
        // fine exploration reports the simulation coverage it achieved.  The coarse
        // side may itself be truncated: matches against its partial quotient still
        // count as coverage, but only a *complete* quotient can condemn an edge.
        if options.mode == RefineMode::Simulation {
            Some(&coarse_side)
        } else {
            None
        },
    );

    let mut stats = RefineStats {
        fine_states: fine_side.seen.len(),
        coarse_states: coarse_side.seen.len(),
        fine_projections: fine_side.projs.len(),
        coarse_projections: coarse_side.projs.len(),
        edges_checked: fine_side.edges_checked,
        fine_complete: fine_side.complete,
        coarse_complete: coarse_side.complete,
        fine_spill: fine_side.seen.spill_stats(),
        coarse_spill: coarse_side.seen.spill_stats(),
        elapsed: Duration::default(),
    };

    let mut divergence: Option<RefineDivergence<S>> = None;

    // 1. Every stable fine projection must be coarse-reachable (no lost behaviour).
    if coarse_side.complete {
        let mut missing: Vec<(u32, u64, StateIndex)> = fine_side
            .projs
            .iter()
            .filter(|(key, _)| !coarse_side.projs.contains_key(key))
            .map(|(key, (index, depth))| (*depth, *key, *index))
            .collect();
        missing.sort();
        if let Some((_, key, index)) = missing.first() {
            divergence = Some(build_divergence(
                DivergenceKind::MissingInCoarse,
                fine,
                &fine_side,
                *index,
                projection,
                options,
                |candidate| trace_reaches_projection(candidate, projection, &fine_side, *key),
            ));
        }
    }

    // 2. Every stable coarse projection must be fine-reachable (no invented behaviour).
    if divergence.is_none() && fine_side.complete {
        let mut extra: Vec<(u32, u64, StateIndex)> = coarse_side
            .projs
            .iter()
            .filter(|(key, _)| !fine_side.projs.contains_key(key))
            .map(|(key, (index, depth))| (*depth, *key, *index))
            .collect();
        extra.sort();
        if let Some((_, key, index)) = extra.first() {
            divergence = Some(build_divergence(
                DivergenceKind::ExtraInCoarse,
                coarse,
                &coarse_side,
                *index,
                projection,
                options,
                |candidate| trace_reaches_projection(candidate, projection, &coarse_side, *key),
            ));
        }
    }

    // 3. Simulation mode: every fine stabilization edge must be matched by a coarse
    //    path between the same projected classes.  The matching itself ran
    //    incrementally inside the fine exploration (so `edges_checked` reflects the
    //    explored prefix even under a budget); here the first recorded unmatched edge
    //    is turned into a witness, after the cheaper inclusion checks came up clean.
    if divergence.is_none() {
        if let Some((from, to)) = fine_side.unmatched_edge {
            // Prefer the concrete state that completed this edge over the class
            // representative: its trace ends in the offending stabilization.
            let index = fine_side
                .edge_reps
                .get(&(from, to))
                .copied()
                .unwrap_or_else(|| fine_side.projs[&to].0);
            let (fine_ref, coarse_ref) = (&fine_side, &coarse_side);
            let mut d = build_divergence(
                DivergenceKind::UnmatchedStep,
                fine,
                &fine_side,
                index,
                projection,
                options,
                |candidate| trace_has_unmatched_edge(candidate, projection, fine_ref, coarse_ref),
            );
            // Render both endpoints of the unmatched step: the target is already in
            // `d.projection`; prepend the source class the coarse side cannot leave.
            if let Some((from_index, _)) = fine_side.projs.get(&from) {
                let rendered = render_projection(
                    &projection.project_state(&fine_side.state_of(fine, *from_index)),
                );
                d.projection = format!("{rendered} ⟶ {}", d.projection);
            }
            divergence = Some(d);
        }
    }

    stats.elapsed = start.elapsed();
    RefineOutcome {
        fine_spec: fine.name.clone(),
        coarse_spec: coarse.name.clone(),
        projection: projection.name.clone(),
        mode: options.mode,
        stats,
        divergence,
    }
}

/// Builds (and optionally shrinks) a divergence record whose witness ends at `index`.
fn build_divergence<S: SpecState>(
    kind: DivergenceKind,
    witness_spec: &Spec<S>,
    side: &SideSummary<S>,
    index: StateIndex,
    projection: &TraceProjection<S>,
    options: &RefineOptions,
    oracle: impl Fn(&Trace<S>) -> bool,
) -> RefineDivergence<S> {
    let witness = side.witness(witness_spec, index);
    let original_depth = witness.depth();
    let rendered = witness
        .last_state()
        .map(|s| render_projection(&projection.project_state(s)))
        .unwrap_or_default();
    let witness = if options.shrink_witness {
        let ShrinkOutcome { trace, .. } = shrink_trace(witness_spec, &witness, oracle);
        trace
    } else {
        witness
    };
    RefineDivergence {
        kind,
        witness_spec: witness_spec.name.clone(),
        projection: rendered,
        witness,
        original_depth,
    }
}

/// Oracle: the candidate trace visits a stable state with projection key `key` (keys
/// are compared in `side`'s canonical frame under symmetry reduction).
fn trace_reaches_projection<S: SpecState>(
    candidate: &Trace<S>,
    projection: &TraceProjection<S>,
    side: &SideSummary<S>,
    key: u64,
) -> bool {
    candidate
        .steps
        .iter()
        .any(|step| side.project_key_of(projection, &step.state) == Some(key))
}

/// Oracle: the candidate trace still contains a stabilization edge with no matching
/// coarse path (used to shrink [`DivergenceKind::UnmatchedStep`] witnesses).  The
/// candidate is a fine-side execution, so its states are keyed in the fine side's
/// canonical frame before the coarse quotient is consulted.
fn trace_has_unmatched_edge<S: SpecState>(
    candidate: &Trace<S>,
    projection: &TraceProjection<S>,
    fine: &SideSummary<S>,
    coarse: &SideSummary<S>,
) -> bool {
    let mut last_stable: Option<u64> = None;
    for step in &candidate.steps {
        let Some(key) = fine.project_key_of(projection, &step.state) else {
            continue;
        };
        if let Some(from) = last_stable {
            if from != key && !coarse.reachable_from(from).contains(&key) {
                return true;
            }
        }
        last_stable = Some(key);
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_spec::{ActionDef, ActionInstance, Granularity, ModuleId, ModuleSpec};
    use std::collections::BTreeMap;

    /// A two-phase toy: module `M` raises `n` by two in one coarse step, or in two fine
    /// steps through an intermediate `mid` flag that the projection hides.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct TState {
        n: u32,
        mid: bool,
    }

    impl SpecState for TState {
        fn project(&self, vars: &[&str]) -> BTreeMap<String, Value> {
            let mut m = BTreeMap::new();
            if vars.contains(&"n") {
                m.insert("n".to_owned(), Value::from(self.n));
            }
            if vars.contains(&"mid") {
                m.insert("mid".to_owned(), Value::Bool(self.mid));
            }
            m
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["n", "mid"]
        }
    }

    const M: ModuleId = ModuleId("M");

    fn fine_spec(limit: u32) -> Spec<TState> {
        let start = ActionDef::new(
            "StepStart",
            M,
            Granularity::Baseline,
            vec!["n", "mid"],
            vec!["mid"],
            move |s: &TState| {
                if !s.mid && s.n < limit {
                    vec![ActionInstance::new(
                        format!("StepStart({})", s.n),
                        TState { mid: true, ..*s },
                    )]
                } else {
                    vec![]
                }
            },
        );
        let finish = ActionDef::new(
            "StepFinish",
            M,
            Granularity::Baseline,
            vec!["n", "mid"],
            vec!["n", "mid"],
            |s: &TState| {
                if s.mid {
                    vec![ActionInstance::new(
                        format!("StepFinish({})", s.n),
                        TState {
                            n: s.n + 2,
                            mid: false,
                        },
                    )]
                } else {
                    vec![]
                }
            },
        );
        Spec::new(
            "fine",
            vec![TState { n: 0, mid: false }],
            vec![ModuleSpec::new(
                M,
                Granularity::Baseline,
                vec![start, finish],
            )],
            vec![],
        )
    }

    fn coarse_spec(limit: u32, broken: bool) -> Spec<TState> {
        let step = ActionDef::new(
            "StepBoth",
            M,
            Granularity::Coarse,
            vec!["n"],
            vec!["n"],
            move |s: &TState| {
                if s.n < limit {
                    // The broken variant jumps too far: it loses the fine spec's
                    // intermediate visible states (and invents states of its own).
                    let bump = if broken { 3 } else { 2 };
                    vec![ActionInstance::new(
                        format!("StepBoth({})", s.n),
                        TState {
                            n: s.n + bump,
                            mid: false,
                        },
                    )]
                } else {
                    vec![]
                }
            },
        );
        Spec::new(
            "coarse",
            vec![TState { n: 0, mid: false }],
            vec![ModuleSpec::new(M, Granularity::Coarse, vec![step])],
            vec![],
        )
    }

    fn projection() -> TraceProjection<TState> {
        TraceProjection::identity("n-only", Granularity::Coarse, Granularity::Baseline)
            .with_state(|s: &TState| s.project(&["n"]))
            .with_label(|l: &str| {
                if l.starts_with("StepFinish") || l.starts_with("StepBoth") {
                    Some("Step".to_owned())
                } else {
                    None
                }
            })
            .with_stability(|s: &TState| !s.mid)
    }

    #[test]
    fn matching_coarsening_refines() {
        let outcome = check_refinement(
            &fine_spec(6),
            &coarse_spec(6, false),
            &projection(),
            &RefineOptions::default(),
        );
        assert_eq!(outcome.verdict(), RefineVerdict::Refines, "{outcome}");
        assert_eq!(outcome.refines(), Some(true));
        assert!(outcome.conclusive());
        assert_eq!(outcome.stats.fine_projections, 4, "n ∈ {{0, 2, 4, 6}}");
        assert_eq!(outcome.stats.coarse_projections, 4);
        assert!(outcome.stats.edges_checked >= 3);
        assert!(outcome.to_string().contains("verdict: refines"));
    }

    #[test]
    fn broken_coarse_action_yields_a_shrunk_fine_witness() {
        // The broken coarse step bumps by 3: the fine projections {2, 4} are missing
        // from the coarse side (which reaches {0, 3, 6}).
        let outcome = check_refinement(
            &fine_spec(6),
            &coarse_spec(6, true),
            &projection(),
            &RefineOptions::default(),
        );
        let divergence = outcome.divergence.as_ref().expect("must diverge");
        assert_eq!(divergence.kind, DivergenceKind::MissingInCoarse);
        assert_eq!(divergence.witness_spec, "fine");
        // The minimal witness of the first missing projection (n == 2) is two steps.
        assert_eq!(divergence.witness.depth(), 2, "{}", divergence.witness);
        assert!(divergence.witness.depth() <= divergence.original_depth);
        assert!(divergence.projection.contains("n = 2"));
    }

    #[test]
    fn invented_coarse_behaviour_is_reported_with_a_coarse_witness() {
        // Coarse reaches odd n values the fine spec cannot: precision is violated even
        // though every *fine* projection also needs matching (checked first) — restrict
        // the fine spec so the missing direction stays clean.
        let fine = fine_spec(0); // fine never moves: projections = {0}
        let coarse = coarse_spec(1, true); // coarse reaches n = 1
        let outcome = check_refinement(&fine, &coarse, &projection(), &RefineOptions::default());
        let divergence = outcome.divergence.expect("must diverge");
        assert_eq!(divergence.kind, DivergenceKind::ExtraInCoarse);
        assert_eq!(divergence.witness_spec, "coarse");
        assert_eq!(divergence.witness.depth(), 1);
    }

    #[test]
    fn unmatched_step_is_caught_in_simulation_mode_only() {
        // Coarse reaches both projections but only in the order 0 → 4 → 2: the fine
        // stabilization edge 0 → 2 has no matching coarse path from 0's class... build
        // it directly: coarse jumps 0 → 4, then 4 → 2.
        let jump = ActionDef::new(
            "Jump",
            M,
            Granularity::Coarse,
            vec!["n"],
            vec!["n"],
            |s: &TState| match s.n {
                0 => vec![ActionInstance::new("Jump(0)", TState { n: 4, mid: false })],
                4 => vec![ActionInstance::new("Jump(4)", TState { n: 2, mid: false })],
                _ => vec![],
            },
        );
        let coarse = Spec::new(
            "coarse-reordered",
            vec![TState { n: 0, mid: false }],
            vec![ModuleSpec::new(M, Granularity::Coarse, vec![jump])],
            vec![],
        );
        // Fine: 0 → 2 → 4 (and stops at 4).
        let fine = fine_spec(3);

        let inclusion = check_refinement(
            &fine,
            &coarse,
            &projection(),
            &RefineOptions::default().with_mode(RefineMode::TraceInclusion),
        );
        assert_eq!(
            inclusion.verdict(),
            RefineVerdict::Refines,
            "projection sets match: {inclusion}"
        );

        let simulation = check_refinement(&fine, &coarse, &projection(), &RefineOptions::default());
        let divergence = simulation.divergence.expect("simulation must diverge");
        // Fine's stabilization edge 2 → 4 is unmatched: the coarse quotient reaches 4
        // only directly from 0 (its edges are 0 → 4 → 2, nothing out of 2).
        assert_eq!(divergence.kind, DivergenceKind::UnmatchedStep);
        assert!(divergence.witness.depth() >= 1);
    }

    #[test]
    fn fingerprint_only_store_reproduces_the_same_divergence() {
        // Dropping the concrete states must not change the verdict; the witness is
        // reconstructed by replaying the recorded (parent, label) chain instead of
        // cloning states out of the arena.
        let full = check_refinement(
            &fine_spec(6),
            &coarse_spec(6, true),
            &projection(),
            &RefineOptions::default(),
        );
        let fp_only = check_refinement(
            &fine_spec(6),
            &coarse_spec(6, true),
            &projection(),
            &RefineOptions::default().with_store_mode(StoreMode::FingerprintOnly),
        );
        let (d_full, d_fp) = (
            full.divergence.as_ref().expect("full store diverges"),
            fp_only.divergence.as_ref().expect("fp-only store diverges"),
        );
        assert_eq!(d_full.kind, d_fp.kind);
        assert_eq!(d_full.projection, d_fp.projection);
        assert_eq!(d_full.witness.depth(), d_fp.witness.depth());
        assert_eq!(
            d_full.witness.action_labels(),
            d_fp.witness.action_labels(),
            "the replayed witness matches the stored one"
        );
        // The refining pair agrees too.
        let ok = check_refinement(
            &fine_spec(6),
            &coarse_spec(6, false),
            &projection(),
            &RefineOptions::default().with_store_mode(StoreMode::FingerprintOnly),
        );
        assert_eq!(ok.verdict(), RefineVerdict::Refines, "{ok}");
        assert!(ok.conclusive());
    }

    #[test]
    fn truncated_sides_are_inconclusive_not_divergent() {
        let outcome = check_refinement(
            &fine_spec(6),
            &coarse_spec(6, true),
            &projection(),
            &RefineOptions::default().with_max_states(1),
        );
        assert!(
            outcome.divergence.is_none(),
            "no divergence may be reported"
        );
        assert_eq!(outcome.verdict(), RefineVerdict::Inconclusive);
        assert_eq!(
            outcome.refines(),
            None,
            "a truncated run has no definite verdict"
        );
        assert!(!outcome.conclusive());
        assert!(
            outcome.to_string().contains("verdict: inconclusive"),
            "the rendered verdict must not read as passing: {outcome}"
        );
    }

    /// Stability only holds at the endpoints of a long unstable stretch, so a state
    /// cap always lands mid-stabilization — the shape of the 5-server mSpec-1 bench
    /// row that collected 1 fine projection against 16,355 coarse ones.
    fn deep_stability_projection() -> TraceProjection<TState> {
        TraceProjection::identity("n-deep", Granularity::Coarse, Granularity::Baseline)
            .with_state(|s: &TState| s.project(&["n"]))
            .with_stability(|s: &TState| !s.mid && (s.n == 0 || s.n >= 4))
    }

    #[test]
    fn capped_run_still_samples_stable_projections_and_edges() {
        // Regression: under a cap that trips before the first non-initial stable
        // state, the fine side used to freeze with `fine_projections: 1` and
        // `edges_checked: 0`.  The stabilization drain finishes the in-progress
        // stretches (recording projections and edges) without reporting a verdict.
        let outcome = check_refinement(
            &fine_spec(6),
            &coarse_spec(6, false),
            &deep_stability_projection(),
            &RefineOptions::default().with_max_states(2),
        );
        assert!(outcome.divergence.is_none(), "{outcome}");
        assert_eq!(outcome.verdict(), RefineVerdict::Inconclusive);
        assert!(
            outcome.stats.fine_projections >= 2,
            "the drained run samples stability past the cap: {:?}",
            outcome.stats
        );
        assert!(
            outcome.stats.edges_checked >= 1,
            "edge checking starts incrementally, not only after both sides finish: {:?}",
            outcome.stats
        );

        // Control: grace 0 restores the old hard stop and its broken accounting.
        let hard = check_refinement(
            &fine_spec(6),
            &coarse_spec(6, false),
            &deep_stability_projection(),
            &RefineOptions::default()
                .with_max_states(2)
                .with_stabilization_grace(0),
        );
        assert_eq!(hard.stats.fine_projections, 1);
        assert_eq!(hard.stats.edges_checked, 0);
    }

    #[test]
    fn parallel_workers_agree_with_sequential() {
        let seq = check_refinement(
            &fine_spec(40),
            &coarse_spec(40, false),
            &projection(),
            &RefineOptions::default(),
        );
        let par = check_refinement(
            &fine_spec(40),
            &coarse_spec(40, false),
            &projection(),
            &RefineOptions::default().with_workers(4),
        );
        assert_eq!(seq.refines(), par.refines());
        assert_eq!(seq.stats.fine_states, par.stats.fine_states);
        assert_eq!(seq.stats.fine_projections, par.stats.fine_projections);
        assert_eq!(seq.stats.coarse_projections, par.stats.coarse_projections);
    }

    /// Satellite of the out-of-core PR: a refinement check whose fingerprint sets
    /// exceed a tiny memory budget must spill, finish, and produce the *identical*
    /// verdict and per-side statistics as the fully in-RAM run — in every store mode ×
    /// symmetry mode combination.
    #[test]
    fn spilled_refinement_matches_the_in_ram_run_in_every_mode() {
        use crate::options::SymmetryMode;
        use crate::spill::SpillConfig;

        for store_mode in [StoreMode::Full, StoreMode::FingerprintOnly] {
            for symmetry in [SymmetryMode::Off, SymmetryMode::Canonicalize] {
                let mut base = RefineOptions::default()
                    .with_store_mode(store_mode)
                    .with_symmetry(symmetry);
                // Few shards so the ~180-state sides overflow the per-shard flush
                // floor (with the default 64 shards each delta table holds only a
                // couple of entries and the budget can never force a flush).
                base.shards = 2;
                let in_ram = check_refinement(
                    &fine_spec(120),
                    &coarse_spec(120, false),
                    &projection(),
                    &base.clone().with_spill(SpillConfig::in_ram()),
                );
                let spilled = check_refinement(
                    &fine_spec(120),
                    &coarse_spec(120, false),
                    &projection(),
                    // 512 bytes: far below the ~120-state fine side's delta table, so
                    // both sides flush sorted runs to disk and probe them.
                    &base
                        .clone()
                        .with_spill(SpillConfig::in_ram().with_budget_bytes(512)),
                );
                let label = format!("{store_mode:?}/{symmetry:?}");
                assert_eq!(in_ram.verdict(), spilled.verdict(), "{label}");
                assert_eq!(spilled.refines(), Some(true), "{label}");
                assert_eq!(
                    in_ram.stats.fine_states, spilled.stats.fine_states,
                    "{label}"
                );
                assert_eq!(
                    in_ram.stats.coarse_states, spilled.stats.coarse_states,
                    "{label}"
                );
                assert_eq!(
                    in_ram.stats.fine_projections, spilled.stats.fine_projections,
                    "{label}"
                );
                assert_eq!(
                    in_ram.stats.coarse_projections, spilled.stats.coarse_projections,
                    "{label}"
                );
                assert_eq!(
                    in_ram.stats.edges_checked, spilled.stats.edges_checked,
                    "{label}"
                );
                // The budgeted run actually went out of core on both sides, and the
                // disk tier was consulted on later inserts (the fine chain never
                // revisits a state, so most probes are bloom-filtered misses).
                assert!(spilled.stats.fine_spill.spilled(), "{label}");
                assert!(spilled.stats.fine_spill.runs_spilled > 0, "{label}");
                assert!(
                    spilled.stats.fine_spill.disk_probes + spilled.stats.fine_spill.bloom_negatives
                        > 0,
                    "{label}"
                );
                assert!(spilled.stats.coarse_spill.runs_spilled > 0, "{label}");
                // …and the in-RAM baseline did not.
                assert!(!in_ram.stats.fine_spill.spilled(), "{label}");
                assert!(!in_ram.stats.coarse_spill.spilled(), "{label}");
            }
        }
    }
}
