//! The finding model shared by all three analysis tiers.
//!
//! Every tier reports the same record shape so reports, the `Verifier` gate and the
//! `BENCH_analysis.json` schema check can treat findings uniformly.  The severity
//! split matters more than the tier:
//!
//! * **Soundness** findings mean a declared [`Effect`](remix_spec::Effect) is *too
//!   narrow* (an observed write outside the declaration, a non-commuting pair declared
//!   independent, or a label declaring two different footprints).  Any reduction built
//!   on that declaration — sleep-set POR, incremental canonicalization — may silently
//!   drop states, the NodeRestart failure mode of PR 7.  CI fails hard on these.
//! * **Precision** findings mean a declaration is *too wide* (declared-but-never-
//!   observed write bits).  Nothing is unsound, but pruning opportunities are lost;
//!   the finding estimates how many observed label pairs would become independent
//!   under the tight footprint.
//! * **Convention** findings come from the source lint (`remix-lint`): workspace
//!   idioms whose violation has historically preceded soundness bugs (unannotated
//!   instances, fault actions without link bits, guards not shared with step
//!   functions, panics inside action closures).

use std::fmt;

/// Which analysis pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Dynamic effect audit: observed field-level writes vs declared footprints.
    EffectAudit,
    /// Commute / never-disable diamond oracle over declared-independent pairs.
    CommuteOracle,
    /// Source-level workspace convention lint.
    SpecLint,
    /// Source-level concurrency lint (raw sync imports, unjustified orderings,
    /// locks inside successor callbacks, scattered poison handling).
    ConcurrencyLint,
    /// Lock-order audit findings (rank inversions, acquisition-order cycles) from
    /// the instrumented sync layer's [`AuditReport`](remix_checker::AuditReport).
    LockOrder,
    /// Schedule-perturbation determinism oracle: seeded divergence between runs
    /// that must agree.
    ScheduleFuzz,
}

impl Tier {
    /// Stable lowercase identifier used in JSON artefacts.
    pub fn as_str(self) -> &'static str {
        match self {
            Tier::EffectAudit => "effect_audit",
            Tier::CommuteOracle => "commute_oracle",
            Tier::SpecLint => "spec_lint",
            Tier::ConcurrencyLint => "concurrency_lint",
            Tier::LockOrder => "lock_order",
            Tier::ScheduleFuzz => "schedule_fuzz",
        }
    }
}

impl fmt::Display for Tier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Severity class of a finding (see the module documentation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingClass {
    /// A declaration is too narrow: reductions relying on it are unsound.
    Soundness,
    /// A declaration is too wide: sound, but pruning power is lost.
    Precision,
    /// A workspace source convention is violated.
    Convention,
}

impl FindingClass {
    /// Stable lowercase identifier used in JSON artefacts.
    pub fn as_str(self) -> &'static str {
        match self {
            FindingClass::Soundness => "soundness",
            FindingClass::Precision => "precision",
            FindingClass::Convention => "convention",
        }
    }
}

impl fmt::Display for FindingClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One analysis finding.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The pass that produced the finding.
    pub tier: Tier,
    /// Severity class.
    pub class: FindingClass,
    /// The action name (effect audit / commute oracle) or lint rule id (spec lint).
    pub action: String,
    /// The offending instance label (e.g. `NodeRestart(1)`) or source location
    /// (`crates/zab/src/actions/faults.rs:61`).
    pub location: String,
    /// The semantic field whose observed write escaped the declaration (effect audit),
    /// empty otherwise.
    pub field_path: String,
    /// The undeclared / unused effect write bits, rendered via
    /// [`EffectBit`](remix_spec::EffectBit)'s display form; empty when not applicable.
    pub effect_bits: String,
    /// Human-readable explanation.
    pub detail: String,
    /// For precision findings: how many observed label pairs would flip to independent
    /// under the tightened footprint (an estimate of lost pruning). Zero otherwise.
    pub estimated_lost_pruning: u64,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}/{}] {} at {}",
            self.tier, self.class, self.action, self.location
        )?;
        if !self.field_path.is_empty() {
            write!(f, " field {}", self.field_path)?;
        }
        if !self.effect_bits.is_empty() {
            write!(f, " bits {}", self.effect_bits)?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// The combined result of one or more analysis passes.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// All findings, in pass order.
    pub findings: Vec<Finding>,
    /// Number of (state, instance) transition observations the effect audit diffed.
    pub audited_transitions: u64,
    /// Number of commute diamonds the oracle actually closed.
    pub diamonds_checked: u64,
    /// Number of corpus states the passes ran over.
    pub corpus_states: u64,
}

impl AnalysisReport {
    /// Merges another report's findings and counters into this one.
    pub fn merge(&mut self, other: AnalysisReport) {
        self.findings.extend(other.findings);
        self.audited_transitions += other.audited_transitions;
        self.diamonds_checked += other.diamonds_checked;
        self.corpus_states = self.corpus_states.max(other.corpus_states);
    }

    /// `true` when any finding is soundness-class.
    pub fn has_soundness(&self) -> bool {
        self.soundness_count() > 0
    }

    /// Number of soundness-class findings.
    pub fn soundness_count(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.class == FindingClass::Soundness)
            .count()
    }

    /// The soundness-class findings.
    pub fn soundness(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.class == FindingClass::Soundness)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_counters() {
        let f = Finding {
            tier: Tier::EffectAudit,
            class: FindingClass::Soundness,
            action: "NodeRestart".into(),
            location: "NodeRestart(1)".into(),
            field_path: "link[0][1]".into(),
            effect_bits: "channel[0->1]".into(),
            detail: "observed write outside declared footprint".into(),
            estimated_lost_pruning: 0,
        };
        let s = f.to_string();
        assert!(s.contains("effect_audit/soundness"));
        assert!(s.contains("NodeRestart"));
        assert!(s.contains("link[0][1]"));
        let mut r = AnalysisReport::default();
        assert!(!r.has_soundness());
        r.findings.push(f);
        assert!(r.has_soundness());
        assert_eq!(r.soundness_count(), 1);
    }
}
