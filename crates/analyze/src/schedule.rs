//! Concurrency tier, part 2 — the schedule-perturbation determinism oracle.
//!
//! The parallel BFS engine promises *schedule-independent results*: for a fixed
//! spec and options, `distinct_states`, `transitions`, `pruned_transitions`,
//! `max_depth`, the stop reason and the violation set are a function of the
//! workload alone — never of the worker count or of where the OS scheduler
//! happened to preempt (ARCHITECTURE.md, "determinism by construction").  That
//! promise is exactly what a data race breaks first, so this oracle tests it
//! head-on:
//!
//! 1. run the workload once, unperturbed, at one worker — the **baseline**;
//! 2. re-run it across worker counts × perturbation seeds, with
//!    [`perturb::install`](remix_checker::sync::perturb) injecting seeded
//!    yields/sleeps at every instrumented sync point (lock acquisitions, guard
//!    drops, condvar waits/notifies, stop-flag publications);
//! 3. diff each run's [`RunSignature`] against the baseline — any divergence is a
//!    **soundness** finding carrying the worker count and the seed, so the exact
//!    perturbation stream can be replayed.
//!
//! What is compared deliberately excludes anything the contract does not promise:
//! violation *traces* may legally differ in their interleaving prefix, so the
//! signature keeps only `(invariant, depth)` pairs (BFS discovers violations at
//! their minimal depth, which is schedule-independent).
//!
//! [`seeded_schedule_divergence`] is the oracle's own regression: a spec whose
//! successor function reads a process-global counter — the model-level analogue
//! of a data race — which must diverge and be flagged with a replayable seed.

use remix_checker::sync::{perturb, AtomicU64, Ordering};
use remix_checker::{check_bfs, CheckOptions, CheckOutcome, StopReason};
use remix_spec::{Spec, SpecState};

use crate::finding::{AnalysisReport, Finding, FindingClass, Tier};

/// The worker counts × perturbation seeds grid one oracle run sweeps.
#[derive(Debug, Clone)]
pub struct ScheduleOracleOptions {
    /// Worker counts to re-run under (the baseline always runs at 1).
    pub workers: Vec<usize>,
    /// Perturbation seeds; each (workers, seed) cell is one full checking run.
    pub seeds: Vec<u64>,
}

impl Default for ScheduleOracleOptions {
    fn default() -> Self {
        ScheduleOracleOptions {
            workers: vec![1, 2, 4],
            seeds: vec![0xC0FF_EE11, 0xBAD_5EED],
        }
    }
}

/// Everything the determinism contract promises to keep schedule-independent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunSignature {
    /// Distinct states discovered.
    pub distinct_states: usize,
    /// Transitions generated (excluding pruned).
    pub transitions: u64,
    /// Transitions pruned by sleep-set POR.
    pub pruned_transitions: u64,
    /// Deepest level reached.
    pub max_depth: u32,
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// `(invariant id, depth)` of every distinct recorded violation, sorted.
    pub violations: Vec<(String, u32)>,
}

impl RunSignature {
    /// Extracts the comparable signature of a checking run.
    pub fn of<S: SpecState>(outcome: &CheckOutcome<S>) -> Self {
        let mut violations: Vec<(String, u32)> = outcome
            .violations
            .iter()
            .map(|v| (v.invariant.to_string(), v.depth))
            .collect();
        violations.sort();
        RunSignature {
            distinct_states: outcome.stats.distinct_states,
            transitions: outcome.stats.transitions,
            pruned_transitions: outcome.stats.pruned_transitions,
            max_depth: outcome.stats.max_depth,
            stop_reason: outcome.stop_reason,
            violations,
        }
    }

    /// The fields on which `self` and `other` disagree, as `name: a != b` strings.
    pub fn diff(&self, other: &RunSignature) -> Vec<String> {
        let mut diffs = Vec::new();
        if self.distinct_states != other.distinct_states {
            diffs.push(format!(
                "distinct_states: {} != {}",
                self.distinct_states, other.distinct_states
            ));
        }
        if self.transitions != other.transitions {
            diffs.push(format!(
                "transitions: {} != {}",
                self.transitions, other.transitions
            ));
        }
        if self.pruned_transitions != other.pruned_transitions {
            diffs.push(format!(
                "pruned_transitions: {} != {}",
                self.pruned_transitions, other.pruned_transitions
            ));
        }
        if self.max_depth != other.max_depth {
            diffs.push(format!(
                "max_depth: {} != {}",
                self.max_depth, other.max_depth
            ));
        }
        if self.stop_reason != other.stop_reason {
            diffs.push(format!(
                "stop_reason: {} != {}",
                self.stop_reason, other.stop_reason
            ));
        }
        if self.violations != other.violations {
            diffs.push(format!(
                "violations: {:?} != {:?}",
                self.violations, other.violations
            ));
        }
        diffs
    }
}

/// Runs the determinism oracle on one workload.
///
/// `base` should describe an *exhausting* run (no wall-clock budget): a time
/// budget makes the stop reason legitimately scheduling-dependent, which is
/// exactly the noise the oracle must not report.  Returns one soundness finding
/// per diverging `(workers, seed)` cell, each naming the cell so
/// `perturb::install(seed)` + `with_workers(workers)` replays it.
pub fn schedule_oracle<S: SpecState>(
    name: &str,
    spec: &Spec<S>,
    base: &CheckOptions,
    opts: &ScheduleOracleOptions,
) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let baseline = RunSignature::of(&check_bfs(spec, &base.clone().with_workers(1)));
    report.corpus_states = baseline.distinct_states as u64;
    for &workers in &opts.workers {
        for &seed in &opts.seeds {
            let options = base.clone().with_workers(workers);
            let outcome = {
                let _guard = perturb::install(seed);
                check_bfs(spec, &options)
            };
            report.diamonds_checked += 1;
            let cell = RunSignature::of(&outcome);
            let diffs = cell.diff(&baseline);
            if !diffs.is_empty() {
                report.findings.push(Finding {
                    tier: Tier::ScheduleFuzz,
                    class: FindingClass::Soundness,
                    action: "determinism-divergence".to_owned(),
                    location: format!("{name} workers={workers} seed={seed:#x}"),
                    field_path: String::new(),
                    effect_bits: String::new(),
                    detail: format!(
                        "perturbed run diverged from the unperturbed workers=1 \
                         baseline on {}; replay with perturb::install({seed:#x}) and \
                         with_workers({workers})",
                        diffs.join(", "),
                    ),
                    estimated_lost_pruning: 0,
                });
            }
        }
    }
    report
}

// ---------------------------------------------------------------------------
// The seeded regression: a schedule-dependent spec the oracle must flag.
// ---------------------------------------------------------------------------

use std::collections::BTreeMap;

/// State of the deliberately racy demo spec.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RacyState(u64);

impl SpecState for RacyState {
    fn project(&self, vars: &[&str]) -> BTreeMap<String, remix_spec::Value> {
        let mut m = BTreeMap::new();
        if vars.contains(&"n") {
            m.insert("n".to_owned(), remix_spec::Value::from(self.0 as u32));
        }
        m
    }
    fn variable_names() -> Vec<&'static str> {
        vec!["n"]
    }
}

/// The oracle's seeded regression: checks a spec whose successor function reads a
/// process-global counter (the model-level analogue of an under-synchronized
/// successor closure), which makes the reachable set a function of run *history*.
/// The baseline drains part of the counter budget, so every perturbed cell sees a
/// different state space — the oracle must report a divergence for each cell,
/// with its replayable seed.  `remix-bench` writes these findings with
/// `"seeded": true`; CI requires at least one.
pub fn seeded_schedule_divergence() -> AnalysisReport {
    // ordering: Relaxed — the counter *is* the deliberate nondeterminism under
    // test; the RMW's atomicity is all the demo needs.
    static RACE: AtomicU64 = AtomicU64::new(0);
    const BUDGET: u64 = 24;
    RACE.store(0, Ordering::Relaxed); // ordering: Relaxed — see above.
    let step = remix_spec::ActionDef::new(
        "Race",
        remix_spec::ModuleId("RacyDemo"),
        remix_spec::Granularity::Baseline,
        vec!["n"],
        vec!["n"],
        move |_s: &RacyState| {
            // ordering: Relaxed — deliberate shared-counter race, see above.
            let draw = RACE.fetch_add(1, Ordering::Relaxed);
            if draw < BUDGET {
                vec![remix_spec::ActionInstance::new(
                    format!("Race({draw})"),
                    RacyState(draw + 1),
                )]
            } else {
                vec![]
            }
        },
    );
    let spec = Spec::new(
        "racy-demo",
        vec![RacyState(0)],
        vec![remix_spec::ModuleSpec::new(
            remix_spec::ModuleId("RacyDemo"),
            remix_spec::Granularity::Baseline,
            vec![step],
        )],
        vec![],
    );
    let opts = ScheduleOracleOptions {
        workers: vec![2],
        seeds: vec![0xD1CE],
    };
    schedule_oracle("seeded-racy-demo", &spec, &CheckOptions::default(), &opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_spec::{ActionDef, ActionInstance, Granularity, ModuleId, ModuleSpec};

    fn chain_spec(limit: u64) -> Spec<RacyState> {
        let m = ModuleId("Chain");
        let inc = ActionDef::new(
            "Inc",
            m,
            Granularity::Baseline,
            vec!["n"],
            vec!["n"],
            move |s: &RacyState| {
                if s.0 < limit {
                    vec![ActionInstance::new(
                        format!("Inc({})", s.0),
                        RacyState(s.0 + 1),
                    )]
                } else {
                    vec![]
                }
            },
        );
        Spec::new(
            "chain",
            vec![RacyState(0)],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![inc])],
            vec![],
        )
    }

    #[test]
    fn deterministic_spec_passes_the_oracle() {
        let report = schedule_oracle(
            "chain",
            &chain_spec(32),
            &CheckOptions::default(),
            &ScheduleOracleOptions {
                workers: vec![1, 2],
                seeds: vec![7],
            },
        );
        assert!(
            report.findings.is_empty(),
            "honest spec must not diverge: {:?}",
            report.findings
        );
        assert_eq!(report.diamonds_checked, 2);
        assert_eq!(report.corpus_states, 33);
    }

    #[test]
    fn seeded_racy_spec_is_flagged_with_a_replayable_seed() {
        let report = seeded_schedule_divergence();
        assert!(report.has_soundness(), "the racy demo must diverge");
        let f = report
            .findings
            .iter()
            .find(|f| f.action == "determinism-divergence")
            .expect("divergence finding");
        assert!(
            f.location.contains("seed=0xd1ce"),
            "seed in location: {}",
            f.location
        );
        assert!(
            f.detail.contains("replay with"),
            "replay recipe: {}",
            f.detail
        );
    }
}
