//! Tier 3 — the workspace source lint.
//!
//! A self-contained scanner over `crates/*/src` (plain `std::fs`, no parser, no new
//! dependencies) enforcing the conventions that keep footprint declarations honest:
//!
//! * **`effect-annotation`** — in protocol action files (any path under a
//!   `src/actions/` directory), every action-instance constructor call must
//!   immediately attach a declared footprint via `.with_effect(..)`.  Unannotated
//!   instances silently opt out of POR *and* of the effect audit.
//! * **`fault-link-bits`** — in `actions/faults.rs`, every top-level function that
//!   constructs an instance must mention `writes_channel`: fault actions flip
//!   link-level reachability, so a footprint without channel-pair bits is exactly the
//!   NodeRestart under-declaration.
//! * **`guard-extracted`** — every `*_enabled` guard function defined in a crate must
//!   be referenced at least twice in that crate (its definition plus at least one
//!   call): an uncalled guard means a step function re-implements the enabling
//!   condition inline and the two will drift.
//! * **`no-panic-in-action`** — no `.unwrap()` / `.expect(` inside the span of an
//!   action-definition constructor call: a panicking action closure takes down the
//!   whole checker rather than reporting a violation trace.
//!
//! Findings are [`Convention`](crate::finding::FindingClass::Convention)-class; CI
//! fails on any of them.  The scanner skips string/character content only at the
//! double-quote level (enough for the workspace's real sources) and never parses
//! Rust — rules are phrased so that false positives are fixed by making the code
//! follow the convention, which is the point.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use crate::finding::{AnalysisReport, Finding, FindingClass, Tier};

// Needles are assembled at compile time so this file does not contain its own
// patterns (the linter scans every crate, including this one).
const INSTANCE_NEW: &str = concat!("Action", "Instance::new(");
const DEF_NEW: &str = concat!("Action", "Def::new(");
const WITH_EFFECT: &str = concat!(".with_", "effect(");
const WRITES_CHANNEL: &str = concat!("writes_", "channel");
const UNWRAP: &str = concat!(".unw", "rap()");
const EXPECT: &str = concat!(".exp", "ect(");
const ENABLED_SUFFIX: &str = concat!("_enab", "led");

/// Lints every `crates/*/src` tree under `root` (the workspace root).
pub fn lint_workspace(root: &Path) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = match fs::read_dir(&crates_dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.join("src").is_dir())
            .collect(),
        Err(e) => {
            report.findings.push(Finding {
                tier: Tier::SpecLint,
                class: FindingClass::Convention,
                action: "workspace-layout".to_owned(),
                location: crates_dir.display().to_string(),
                field_path: String::new(),
                effect_bits: String::new(),
                detail: format!("cannot read crates directory: {e}"),
                estimated_lost_pruning: 0,
            });
            return report;
        }
    };
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        lint_crate(root, &crate_dir, &mut report);
    }
    report
}

fn lint_crate(root: &Path, crate_dir: &Path, report: &mut AnalysisReport) {
    let mut files = Vec::new();
    collect_rs_files(&crate_dir.join("src"), &mut files);
    files.sort();
    // name -> (definition site, reference count across the crate's sources)
    let mut guards: BTreeMap<String, (String, usize)> = BTreeMap::new();
    let mut sources = Vec::new();
    for path in &files {
        let Ok(source) = fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .display()
            .to_string();
        lint_file(&rel, &source, report);
        collect_guard_defs(&rel, &source, &mut guards);
        sources.push(source);
    }
    for source in &sources {
        count_guard_refs(source, &mut guards);
    }
    for (name, (site, refs)) in guards {
        if refs < 2 {
            report.findings.push(Finding {
                tier: Tier::SpecLint,
                class: FindingClass::Convention,
                action: "guard-extracted".to_owned(),
                location: site,
                field_path: String::new(),
                effect_bits: String::new(),
                detail: format!(
                    "guard fn {name} is defined but never called in its crate; step \
                     functions must call the extracted guard, not re-inline it"
                ),
                estimated_lost_pruning: 0,
            });
        }
    }
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    for entry in rd.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Runs the per-file rules on one source file (`rel` is the workspace-relative path
/// used in finding locations).
pub fn lint_file(rel: &str, source: &str, report: &mut AnalysisReport) {
    let in_actions_dir = rel.replace('\\', "/").contains("/src/actions/");
    if in_actions_dir {
        rule_effect_annotation(rel, source, report);
        if rel.ends_with("faults.rs") {
            rule_fault_link_bits(rel, source, report);
        }
    }
    rule_no_panic_in_action(rel, source, report);
}

/// 1-indexed line of a byte offset.
fn line_of(source: &str, offset: usize) -> usize {
    source.as_bytes()[..offset]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Byte offset just past the `(`-balanced span starting at `open` (the offset of the
/// opening parenthesis), skipping double-quoted string content.  Returns `None` when
/// the span never closes (malformed source).
fn balanced_span_end(source: &str, open: usize) -> Option<usize> {
    let bytes = source.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 1,
                        b'"' => break,
                        _ => {}
                    }
                    i += 1;
                }
            }
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn occurrences<'a>(source: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    source.match_indices(needle).map(|(i, _)| i)
}

/// `rest` with leading whitespace and `//` line comments skipped: a comment between
/// a constructor and its builder call (rustfmt happily reflows one there) must not
/// hide the annotation from the lint.
fn skip_trivia(mut rest: &str) -> &str {
    loop {
        rest = rest.trim_start();
        if !rest.starts_with("//") {
            return rest;
        }
        match rest.find('\n') {
            Some(nl) => rest = &rest[nl + 1..],
            None => return "",
        }
    }
}

fn rule_effect_annotation(rel: &str, source: &str, report: &mut AnalysisReport) {
    for start in occurrences(source, INSTANCE_NEW) {
        let open = start + INSTANCE_NEW.len() - 1;
        let Some(end) = balanced_span_end(source, open) else {
            continue;
        };
        let rest = skip_trivia(&source[end..]);
        if !rest.starts_with(WITH_EFFECT) {
            report.findings.push(Finding {
                tier: Tier::SpecLint,
                class: FindingClass::Convention,
                action: "effect-annotation".to_owned(),
                location: format!("{rel}:{}", line_of(source, start)),
                field_path: String::new(),
                effect_bits: String::new(),
                detail: "action instance constructed without a declared Effect \
                         footprint; unannotated instances opt out of POR and of the \
                         effect audit"
                    .to_owned(),
                estimated_lost_pruning: 0,
            });
        }
    }
}

fn rule_fault_link_bits(rel: &str, source: &str, report: &mut AnalysisReport) {
    // Split at top-level (column 0) function definitions.
    let mut fn_starts: Vec<usize> = Vec::new();
    for (off, line) in line_offsets(source) {
        if line.starts_with("pub fn ") || line.starts_with("fn ") {
            fn_starts.push(off);
        }
    }
    fn_starts.push(source.len());
    for w in fn_starts.windows(2) {
        let body = &source[w[0]..w[1]];
        if body.contains(INSTANCE_NEW) && !body.contains(WRITES_CHANNEL) {
            report.findings.push(Finding {
                tier: Tier::SpecLint,
                class: FindingClass::Convention,
                action: "fault-link-bits".to_owned(),
                location: format!("{rel}:{}", line_of(source, w[0])),
                field_path: String::new(),
                effect_bits: String::new(),
                detail: "fault action declares no channel-pair link bits; faults flip \
                         reachability, so a footprint without channel writes is the \
                         NodeRestart-class under-declaration"
                    .to_owned(),
                estimated_lost_pruning: 0,
            });
        }
    }
}

fn rule_no_panic_in_action(rel: &str, source: &str, report: &mut AnalysisReport) {
    for start in occurrences(source, DEF_NEW) {
        let open = start + DEF_NEW.len() - 1;
        let Some(end) = balanced_span_end(source, open) else {
            continue;
        };
        let span = &source[start..end];
        for needle in [UNWRAP, EXPECT] {
            for hit in occurrences(span, needle) {
                report.findings.push(Finding {
                    tier: Tier::SpecLint,
                    class: FindingClass::Convention,
                    action: "no-panic-in-action".to_owned(),
                    location: format!("{rel}:{}", line_of(source, start + hit)),
                    field_path: String::new(),
                    effect_bits: String::new(),
                    detail: "panicking call inside an action definition closure; \
                             action closures must degrade (skip the instance or record \
                             a violation), not abort the checker"
                        .to_owned(),
                    estimated_lost_pruning: 0,
                });
            }
        }
    }
}

/// `(byte offset, line)` pairs for each line of `source`.
fn line_offsets(source: &str) -> impl Iterator<Item = (usize, &str)> {
    let mut off = 0;
    source.lines().map(move |line| {
        let this = off;
        off += line.len() + 1;
        (this, line)
    })
}

fn collect_guard_defs(rel: &str, source: &str, guards: &mut BTreeMap<String, (String, usize)>) {
    for start in occurrences(source, "fn ") {
        // Require a word boundary before `fn` (start of file, whitespace or `(`).
        if start > 0 {
            let prev = source.as_bytes()[start - 1];
            if !prev.is_ascii_whitespace() && prev != b'(' {
                continue;
            }
        }
        let after = &source[start + 3..];
        let name: String = after
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.ends_with(ENABLED_SUFFIX) && after[name.len()..].starts_with('(') {
            guards
                .entry(name)
                .or_insert_with(|| (format!("{rel}:{}", line_of(source, start)), 0));
        }
    }
}

fn count_guard_refs(source: &str, guards: &mut BTreeMap<String, (String, usize)>) {
    for (name, (_, count)) in guards.iter_mut() {
        let needle = format!("{name}(");
        *count += occurrences(source, &needle)
            .filter(|&i| {
                // Reject hits that are merely suffixes of a longer identifier.
                i == 0 || {
                    let prev = source.as_bytes()[i - 1];
                    !prev.is_ascii_alphanumeric() && prev != b'_'
                }
            })
            .count();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, source: &str) -> Vec<Finding> {
        let mut r = AnalysisReport::default();
        lint_file(rel, source, &mut r);
        r.findings
    }

    #[test]
    fn unannotated_instance_in_actions_dir_is_flagged() {
        let src = format!(
            "fn a() {{ let i = {INSTANCE_NEW}\"L(0)\", next); }}\n\
             fn b() {{ let i = {INSTANCE_NEW}\"L(1)\", next){WITH_EFFECT}e); }}\n"
        );
        let findings = run("crates/x/src/actions/foo.rs", &src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].action, "effect-annotation");
        assert!(findings[0].location.ends_with(":1"));
        // Outside an actions dir the rule does not apply.
        assert!(run("crates/x/src/state.rs", &src).is_empty());
    }

    #[test]
    fn comment_between_constructor_and_annotation_is_tolerated() {
        let src = format!(
            "fn a() {{\n    let i = {INSTANCE_NEW}\"L(0)\", next)\n\
             \x20       // rustfmt reflows explanatory comments to here\n\
             \x20       {WITH_EFFECT}e);\n}}\n"
        );
        assert!(run("crates/x/src/actions/foo.rs", &src).is_empty());
    }

    #[test]
    fn fault_fn_without_channel_bits_is_flagged() {
        let src = format!(
            "pub fn crash() {{ {INSTANCE_NEW}\"C(0)\", n){WITH_EFFECT}\
             Effect::new().{WRITES_CHANNEL}s_of(0)); }}\n\
             pub fn restart() {{ {INSTANCE_NEW}\"R(0)\", n){WITH_EFFECT}\
             Effect::new().writes_server(0)); }}\n"
        );
        let findings = run("crates/x/src/actions/faults.rs", &src);
        let fault: Vec<_> = findings
            .iter()
            .filter(|f| f.action == "fault-link-bits")
            .collect();
        assert_eq!(fault.len(), 1);
        assert!(fault[0].location.ends_with(":2"));
    }

    #[test]
    fn panic_inside_action_def_is_flagged() {
        let src = format!(
            "fn m() {{ {DEF_NEW}\"A\", m, g, vec![], vec![], move |s| {{\n\
             let x = q.iter().max(){EXPECT}\"nonempty\");\nvec![]\n}})\n}}\n"
        );
        let findings = run("crates/x/src/foo.rs", &src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].action, "no-panic-in-action");
        // The same panic outside an action span is not this lint's business.
        let outside = format!("fn m() {{ let x = q.iter().max(){EXPECT}\"nonempty\"); }}\n");
        assert!(run("crates/x/src/foo.rs", &outside).is_empty());
    }

    #[test]
    fn balanced_spans_skip_string_parens() {
        let src = format!("{INSTANCE_NEW}format!(\"L({{i}})\"), next)");
        let end = balanced_span_end(&src, INSTANCE_NEW.len() - 1).expect("closes");
        assert_eq!(end, src.len());
    }

    #[test]
    fn uncalled_guard_is_flagged() {
        let def = "pub fn step_enabled(s: &S) -> bool { true }\n";
        let mut guards = BTreeMap::new();
        collect_guard_defs("crates/x/src/a.rs", def, &mut guards);
        count_guard_refs(def, &mut guards);
        assert_eq!(guards["step_enabled"].1, 1, "definition only");
        let caller = "fn step() { if step_enabled(s) {} }\n";
        count_guard_refs(caller, &mut guards);
        assert_eq!(guards["step_enabled"].1, 2);
    }
}
