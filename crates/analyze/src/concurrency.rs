//! Concurrency tier, part 1 — the source lint and the lock-order findings.
//!
//! The parallel engine's soundness rests on conventions no type system checks:
//! every blocking primitive goes through the instrumented `checker::sync` layer,
//! every memory-ordering choice is justified in place, successor callbacks stay
//! lock-free, and poisoning is handled by exactly one policy helper.  This module
//! turns each convention into a scannable rule over `crates/*/src` (same
//! no-parser, needle-based scanner style as [`crate::lint`]) and converts the sync
//! layer's [`AuditReport`] into findings:
//!
//! * **`raw-sync-import`** — no `use std::sync::…` importing `Mutex`, `RwLock`,
//!   `Condvar`, `Barrier`, `mpsc`, atomics or `Ordering` anywhere outside
//!   `crates/checker/src/sync.rs`.  `Arc` and `PoisonError` ride along freely (the
//!   former is not a lock, the latter appears in type positions of the policy
//!   helpers).  A `// sync-exempt: <reason>` comment anywhere in the file waives
//!   this rule and `poison-handled-centrally` for that file — the escape hatch for
//!   crates below `remix-checker` in the dependency order.
//! * **`ordering-justified`** — every `Ordering::{Relaxed, Acquire, Release,
//!   AcqRel, SeqCst}` use carries a `// ordering: <why>` comment on the same line
//!   or within the three preceding lines.  `std::cmp::Ordering` matches are
//!   skipped, as is `#[cfg(test)]` content (test assertions read counters, they
//!   do not synchronize).
//! * **`no-lock-in-successor-callback`** — no lock acquisition inside the span of
//!   a `for_each_successor(...)` call.  Successor closures run on the expansion
//!   hot path with frontier read locks held; a blocking acquisition there drags
//!   user-controlled code into the lock hierarchy.  Callbacks must buffer and let
//!   the caller flush after the closure returns (see `bfs::expand_range`).
//! * **`poison-handled-centrally`** — no `PoisonError` handling (`into_inner`)
//!   outside `checker::sync`'s `lock_or_recover` family; scattered poison
//!   recovery is how policy drifts.
//!
//! Part 2, [`lock_order_findings`], maps a sync-audit [`AuditReport`] — rank
//! violations and acquisition-order cycles, each carrying witness stacks — onto
//! soundness-class findings, so the artefact pipeline treats "the engine can
//! deadlock" exactly like "the engine drops states".

use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

use remix_checker::AuditReport;

use crate::finding::{AnalysisReport, Finding, FindingClass, Tier};

// Needles are assembled at compile time so this file does not trip its own rules
// (the scanner lints every crate, including this one).
const SYNC_IMPORT: &str = concat!("use std::", "sync");
const ORDERING_USE: &str = concat!("Ordering", "::");
const CMP_PREFIX: &str = concat!("cmp", "::");
const EXEMPT_MARK: &str = concat!("// sync-", "exempt:");
const ORDERING_MARK: &str = concat!("// ordering", ":");
const POISON: &str = concat!("Poison", "Error");
const SUCCESSOR_CALL: &str = concat!("for_each_", "successor(");
const CFG_TEST: &str = concat!("#[cfg(", "test)]");
const SANCTIONED_FILE: &str = "crates/checker/src/sync.rs";

/// Identifiers whose appearance in a `use std::sync` line makes it a raw-sync
/// import (anything that blocks, fences or orders).
const BANNED_IMPORTS: &[&str] = &[
    "Mutex", "RwLock", "Condvar", "Barrier", "Once", "mpsc", "atomic", "Ordering",
];

/// Lock-acquisition needles that must not appear inside a successor callback.
const LOCK_NEEDLES: &[&str] = &[
    ".lock(",
    ".read()",
    ".write()",
    "lock_shard(",
    "lock_counting(",
    "lock_or_recover(",
    "read_or_recover(",
    "write_or_recover(",
];

/// The orderings whose choice must be justified.
const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Lints every `crates/*/src` tree under `root` for the concurrency conventions.
pub fn lint_concurrency(root: &Path) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    if let Ok(rd) = fs::read_dir(&crates_dir) {
        for crate_dir in rd.filter_map(Result::ok).map(|e| e.path()) {
            collect_rs_files(&crate_dir.join("src"), &mut files);
        }
    }
    files.sort();
    for path in &files {
        let Ok(source) = fs::read_to_string(path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .display()
            .to_string()
            .replace('\\', "/");
        lint_concurrency_file(&rel, &source, &mut report);
        // The lint's "corpus" is the set of scanned source files.
        report.corpus_states += 1;
    }
    report
}

fn collect_rs_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    for entry in rd.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Runs the concurrency rules on one source file (`rel` is the workspace-relative
/// path, `/`-separated, used in finding locations and for the sanctioned-file
/// check).
pub fn lint_concurrency_file(rel: &str, source: &str, report: &mut AnalysisReport) {
    let sanctioned = rel == SANCTIONED_FILE;
    let exempt = source.contains(EXEMPT_MARK);
    if !sanctioned && !exempt {
        rule_raw_sync_import(rel, source, report);
        rule_poison_centrally(rel, source, report);
    }
    rule_ordering_justified(rel, source, report);
    rule_no_lock_in_successor_callback(rel, source, report);
}

fn push(report: &mut AnalysisReport, rule: &str, location: String, detail: String) {
    report.findings.push(Finding {
        tier: Tier::ConcurrencyLint,
        class: FindingClass::Convention,
        action: rule.to_owned(),
        location,
        field_path: String::new(),
        effect_bits: String::new(),
        detail,
        estimated_lost_pruning: 0,
    });
}

fn rule_raw_sync_import(rel: &str, source: &str, report: &mut AnalysisReport) {
    for (lineno, line) in source.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") || !trimmed.contains(SYNC_IMPORT) {
            continue;
        }
        if BANNED_IMPORTS.iter().any(|b| trimmed.contains(b)) {
            push(
                report,
                "raw-sync-import",
                format!("{rel}:{}", lineno + 1),
                format!(
                    "raw std sync primitive imported outside checker::sync; route \
                     locks, condvars and atomics through the instrumented layer (or \
                     mark the file `{EXEMPT_MARK} <reason>` when it sits below \
                     remix-checker)"
                ),
            );
        }
    }
}

fn rule_ordering_justified(rel: &str, source: &str, report: &mut AnalysisReport) {
    // Justifications do not synchronize tests; cut the scan at `#[cfg(test)]`.
    let scan_end = source.find(CFG_TEST).unwrap_or(source.len());
    let scanned = &source[..scan_end];
    let lines: Vec<&str> = scanned.lines().collect();
    for (lineno, line) in lines.iter().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        let mut from = 0usize;
        while let Some(hit) = line[from..].find(ORDERING_USE) {
            let at = from + hit;
            from = at + ORDERING_USE.len();
            // `std::cmp::Ordering::Less` and friends are comparisons, not fences.
            if line[..at].ends_with(CMP_PREFIX) {
                continue;
            }
            let rest = &line[at + ORDERING_USE.len()..];
            if !MEMORY_ORDERINGS.iter().any(|m| rest.starts_with(m)) {
                continue;
            }
            let justified = line.contains(ORDERING_MARK)
                || lines[lineno.saturating_sub(3)..lineno]
                    .iter()
                    .any(|l| l.contains(ORDERING_MARK));
            if !justified {
                push(
                    report,
                    "ordering-justified",
                    format!("{rel}:{}", lineno + 1),
                    format!(
                        "memory-ordering choice without a `{ORDERING_MARK} <why>` \
                         justification on the same or one of the three preceding \
                         lines; every Relaxed/Acquire/Release/AcqRel/SeqCst pick \
                         must say what it pairs with or why it needs nothing"
                    ),
                );
            }
        }
    }
}

fn rule_no_lock_in_successor_callback(rel: &str, source: &str, report: &mut AnalysisReport) {
    for start in occurrences(source, SUCCESSOR_CALL) {
        let open = start + SUCCESSOR_CALL.len() - 1;
        let Some(end) = balanced_span_end(source, open) else {
            continue;
        };
        let span = &source[start..end];
        for needle in LOCK_NEEDLES {
            for hit in occurrences(span, needle) {
                // Comment text inside the span ("stays lock-free", doc references)
                // is not an acquisition.
                let line_start = span[..hit].rfind('\n').map_or(0, |p| p + 1);
                if span[line_start..hit].trim_start().starts_with("//") {
                    continue;
                }
                push(
                    report,
                    "no-lock-in-successor-callback",
                    format!("{rel}:{}", line_of(source, start + hit)),
                    format!(
                        "lock acquisition `{needle}..` inside a successor-enumeration \
                         callback; buffer in the closure and flush after it returns \
                         (the callback runs on the expansion hot path with frontier \
                         locks held)"
                    ),
                );
            }
        }
    }
}

fn rule_poison_centrally(rel: &str, source: &str, report: &mut AnalysisReport) {
    for (lineno, line) in source.lines().enumerate() {
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") || !trimmed.contains(POISON) {
            continue;
        }
        push(
            report,
            "poison-handled-centrally",
            format!("{rel}:{}", lineno + 1),
            "poison handling outside checker::sync; the one poisoning policy is \
             sync::lock_or_recover and its RwLock siblings — acquire through the \
             Ordered* types instead"
                .to_owned(),
        );
    }
}

/// 1-indexed line of a byte offset.
fn line_of(source: &str, offset: usize) -> usize {
    source.as_bytes()[..offset]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

fn occurrences<'a>(source: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    source.match_indices(needle).map(|(i, _)| i)
}

/// Byte offset just past the `(`-balanced span starting at `open`, skipping
/// double-quoted string content (same scanner as [`crate::lint`]).
fn balanced_span_end(source: &str, open: usize) -> Option<usize> {
    let bytes = source.as_bytes();
    let mut depth = 0usize;
    let mut i = open;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => i += 1,
                        b'"' => break,
                        _ => {}
                    }
                    i += 1;
                }
            }
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
        i += 1;
    }
    None
}

/// Converts a sync-audit [`AuditReport`] into analysis findings: one
/// soundness-class finding per rank violation and per acquisition-order cycle,
/// each carrying its witness stacks in the detail text.
pub fn lock_order_findings(report: &AuditReport) -> AnalysisReport {
    let mut out = AnalysisReport {
        audited_transitions: report.acquisitions,
        ..AnalysisReport::default()
    };
    for v in &report.rank_violations {
        out.findings.push(Finding {
            tier: Tier::LockOrder,
            class: FindingClass::Soundness,
            action: "rank-inversion".to_owned(),
            location: format!("{} -> {}", v.held_site, v.acquired_site),
            field_path: String::new(),
            effect_bits: String::new(),
            detail: format!(
                "lock `{}` (rank {}) acquired while holding `{}` (rank {}); the \
                 hierarchy requires strictly descending ranks. held-stack: [{}]; \
                 acquiring thread {} with stack [{}]",
                v.acquired_site,
                v.acquired_rank,
                v.held_site,
                v.held_rank,
                v.held_stack.join(" > "),
                v.witness.thread,
                v.witness.stack.join(" > "),
            ),
            estimated_lost_pruning: 0,
        });
    }
    for cycle in report.cycles() {
        let witnesses: Vec<String> = cycle
            .witnesses
            .iter()
            .map(|w| format!("{} holding [{}]", w.thread, w.stack.join(" > ")))
            .collect();
        out.findings.push(Finding {
            tier: Tier::LockOrder,
            class: FindingClass::Soundness,
            action: "order-cycle".to_owned(),
            location: cycle.sites.join(" -> "),
            field_path: String::new(),
            effect_bits: String::new(),
            detail: format!(
                "acquisition-order cycle through {} site(s): two schedules can \
                 deadlock holding opposite ends. witnesses: {}",
                cycle.sites.len(),
                witnesses.join("; "),
            ),
            estimated_lost_pruning: 0,
        });
    }
    out
}

/// The distinct lint rule ids this tier can emit (used by the artefact schema
/// check to validate rows).
pub fn concurrency_rules() -> BTreeSet<&'static str> {
    [
        "raw-sync-import",
        "ordering-justified",
        "no-lock-in-successor-callback",
        "poison-handled-centrally",
    ]
    .into_iter()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, source: &str) -> Vec<Finding> {
        let mut r = AnalysisReport::default();
        lint_concurrency_file(rel, source, &mut r);
        r.findings
    }

    #[test]
    fn raw_sync_import_is_flagged_outside_the_sanctioned_file() {
        let src = format!("{SYNC_IMPORT}::Mutex;\n");
        let findings = run("crates/x/src/a.rs", &src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].action, "raw-sync-import");
        assert!(
            run(SANCTIONED_FILE, &src).is_empty(),
            "sync.rs is sanctioned"
        );
        let arc_only = format!("{SYNC_IMPORT}::Arc;\n");
        assert!(
            run("crates/x/src/a.rs", &arc_only).is_empty(),
            "Arc rides free"
        );
    }

    #[test]
    fn sync_exempt_comment_waives_import_and_poison_rules() {
        let src = format!(
            "{EXEMPT_MARK} below remix-checker in the dependency order\n\
             {SYNC_IMPORT}::{{Arc, {POISON}, RwLock}};\n\
             fn f() {{ l.read().unwrap_or_else({POISON}::into_inner); }}\n"
        );
        assert!(run("crates/spec/src/label.rs", &src).is_empty());
    }

    #[test]
    fn unjustified_ordering_is_flagged_and_cmp_ordering_is_not() {
        let bad = format!("fn f() {{ x.load({ORDERING_USE}Relaxed); }}\n");
        let findings = run("crates/x/src/a.rs", &bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].action, "ordering-justified");
        let good = format!(
            "fn f() {{\n    {ORDERING_MARK} Relaxed — statistics only.\n    \
             x.load({ORDERING_USE}Relaxed);\n}}\n"
        );
        assert!(run("crates/x/src/a.rs", &good).is_empty());
        let cmp = format!(
            "fn f() {{ match a.cmp(b) {{ std::{CMP_PREFIX}{ORDERING_USE}Less => 1, _ => 0 }} }}\n"
        );
        assert!(run("crates/x/src/a.rs", &cmp).is_empty());
        let test_only =
            format!("{CFG_TEST}\nmod tests {{ fn f() {{ x.load({ORDERING_USE}Relaxed); }} }}\n");
        assert!(run("crates/x/src/a.rs", &test_only).is_empty());
    }

    #[test]
    fn lock_inside_successor_callback_is_flagged() {
        let bad = format!(
            "fn f() {{ spec.{SUCCESSOR_CALL}state, labels, |l, n, e| {{\n    \
             let g = store.lock_shard(0);\n}}); }}\n"
        );
        let findings = run("crates/x/src/a.rs", &bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].action, "no-lock-in-successor-callback");
        let buffered = format!(
            "fn f() {{ spec.{SUCCESSOR_CALL}state, labels, |l, n, e| {{\n    \
             // the store pass after the closure takes the .lock( instead\n    \
             buf.push(n);\n}});\nlet g = store.lock_shard(0);\n}}\n"
        );
        assert!(run("crates/x/src/a.rs", &buffered).is_empty());
    }

    #[test]
    fn scattered_poison_handling_is_flagged() {
        let src = format!("fn f() {{ m.lock().unwrap_or_else({POISON}::into_inner); }}\n");
        let findings = run("crates/x/src/a.rs", &src);
        assert!(findings
            .iter()
            .any(|f| f.action == "poison-handled-centrally"));
    }

    #[test]
    fn rank_inversion_report_maps_to_soundness_findings() {
        let audit = remix_checker::sync::seeded_rank_inversion();
        let report = lock_order_findings(&audit);
        assert!(report.has_soundness());
        let actions: Vec<_> = report.findings.iter().map(|f| f.action.as_str()).collect();
        assert!(actions.contains(&"rank-inversion"));
        assert!(actions.contains(&"order-cycle"));
        let cycle = report
            .findings
            .iter()
            .find(|f| f.action == "order-cycle")
            .expect("cycle finding");
        assert!(cycle.detail.contains("seeded.outer") || cycle.location.contains("seeded.outer"));
    }
}
