//! Tier 1 — the dynamic effect audit.
//!
//! For every transition observed over a bounded BFS corpus, the audit diffs the
//! parent's and child's per-field hashes (via [`StateFields`]) and checks each changed
//! field's effect domain against the write set the action *declared*:
//!
//! * a changed field whose domain bits are not covered by the declared writes is a
//!   **soundness** finding — the exact failure mode that made sleep-set POR drop
//!   states when `NodeRestart` forgot its channel row (PR 7);
//! * a label observed declaring two different footprints (the checker's footprint
//!   table is write-once per label) is also a **soundness** finding;
//! * declared write bits never observed to change anything over the whole corpus are
//!   **precision** findings, with an estimate of the pruning lost: the number of
//!   observed label pairs whose declared footprints conflict but whose *tightened*
//!   footprints (writes restricted to observed bits) would be independent.
//!
//! Instances declaring no effect, or a global effect, are skipped: both are always
//! sound (the checker treats them as dependent on everything).

use std::collections::{HashMap, HashSet};

use remix_checker::{corpus, CorpusOptions};
use remix_spec::effect::flags;
use remix_spec::{Effect, FieldInfo, Spec, SpecState, StateFields};

use crate::finding::{AnalysisReport, Finding, FindingClass, Tier};

/// Runs the effect audit over a freshly built bounded corpus of `spec`.
pub fn effect_audit<S>(spec: &Spec<S>, opts: CorpusOptions) -> AnalysisReport
where
    S: SpecState + StateFields,
{
    let states = corpus(spec, opts);
    effect_audit_corpus(spec, &states)
}

/// Runs the effect audit over an already collected corpus of reachable states.
pub fn effect_audit_corpus<S>(spec: &Spec<S>, states: &[S]) -> AnalysisReport
where
    S: SpecState + StateFields,
{
    let mut report = AnalysisReport {
        corpus_states: states.len() as u64,
        ..AnalysisReport::default()
    };
    let Some(first) = states.first() else {
        return report;
    };
    let fields: Vec<FieldInfo> = first.fields();

    // Per-label bookkeeping: the first declared footprint (for label-determinism),
    // and the union of observed written-field domains (for precision).
    let mut declared: HashMap<String, Option<Effect>> = HashMap::new();
    let mut observed: HashMap<String, Effect> = HashMap::new();
    // Dedup keys so one under-declaration is reported once, not once per state.
    let mut reported: HashSet<(String, usize)> = HashSet::new();
    let mut nondeterministic: HashSet<String> = HashSet::new();

    let mut parent_hashes: Vec<u64> = Vec::with_capacity(fields.len());
    let mut child_hashes: Vec<u64> = Vec::with_capacity(fields.len());

    for state in states {
        parent_hashes.clear();
        state.field_hashes(&mut parent_hashes);
        debug_assert_eq!(parent_hashes.len(), fields.len());
        for module in &spec.modules {
            for def in &module.actions {
                for inst in def.enabled(state) {
                    match declared.entry(inst.label.clone()) {
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(inst.effect);
                        }
                        std::collections::hash_map::Entry::Occupied(e) => {
                            if *e.get() != inst.effect
                                && nondeterministic.insert(inst.label.clone())
                            {
                                report.findings.push(Finding {
                                    tier: Tier::EffectAudit,
                                    class: FindingClass::Soundness,
                                    action: def.name.to_owned(),
                                    location: inst.label.clone(),
                                    field_path: String::new(),
                                    effect_bits: String::new(),
                                    detail: "label declares different footprints in \
                                             different states; footprints must be a \
                                             function of the label alone"
                                        .to_owned(),
                                    estimated_lost_pruning: 0,
                                });
                            }
                        }
                    }
                    let Some(eff) = inst.effect.filter(|e| !e.is_global()) else {
                        continue;
                    };
                    report.audited_transitions += 1;
                    child_hashes.clear();
                    inst.next.field_hashes(&mut child_hashes);
                    debug_assert_eq!(child_hashes.len(), fields.len());
                    for (idx, field) in fields.iter().enumerate() {
                        if parent_hashes[idx] == child_hashes[idx] {
                            continue;
                        }
                        let obs = observed.entry(inst.label.clone()).or_default();
                        *obs = obs.union(&field.domain);
                        if eff.covers_writes(&field.domain) {
                            continue;
                        }
                        if reported.insert((inst.label.clone(), idx)) {
                            let missing = undeclared_bits(&eff, &field.domain);
                            report.findings.push(Finding {
                                tier: Tier::EffectAudit,
                                class: FindingClass::Soundness,
                                action: def.name.to_owned(),
                                location: inst.label.clone(),
                                field_path: field.path.clone(),
                                effect_bits: missing,
                                detail: "observed write outside the declared Effect: \
                                         sleep-set POR and incremental canonicalization \
                                         built on this footprint are unsound"
                                    .to_owned(),
                                estimated_lost_pruning: 0,
                            });
                        }
                    }
                }
            }
        }
    }

    precision_findings(spec, &declared, &observed, &mut report);
    report
}

/// Renders the write bits of `domain` not covered by `declared`, comma-separated.
fn undeclared_bits(declared: &Effect, domain: &Effect) -> String {
    let missing = Effect {
        writes_servers: domain.writes_servers & !declared.writes_servers,
        writes_channels: domain.writes_channels & !declared.writes_channels,
        writes_flags: domain.writes_flags & !declared.writes_flags,
        ..Effect::default()
    };
    missing
        .write_bits()
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ")
}

/// Restricts `declared`'s write bits to those in `observed`, keeping reads as
/// declared (an explicit guard read cannot be distinguished from the read implied by
/// a spurious write, so reads are never tightened).
fn tighten(declared: &Effect, observed: &Effect) -> Effect {
    Effect {
        writes_servers: declared.writes_servers & observed.writes_servers,
        writes_channels: declared.writes_channels & observed.writes_channels,
        writes_flags: declared.writes_flags & observed.writes_flags,
        ..*declared
    }
}

fn precision_findings<S: SpecState>(
    spec: &Spec<S>,
    declared: &HashMap<String, Option<Effect>>,
    observed: &HashMap<String, Effect>,
    report: &mut AnalysisReport,
) {
    // Label -> action name, for reporting.
    let action_of = |label: &str| -> String {
        let prefix = label.split('(').next().unwrap_or(label);
        spec.modules
            .iter()
            .flat_map(|m| &m.actions)
            .map(|d| d.name)
            .find(|n| *n == prefix)
            .unwrap_or(prefix)
            .to_owned()
    };
    let footprinted: Vec<(&String, Effect)> = declared
        .iter()
        .filter_map(|(l, e)| e.filter(|e| !e.is_global()).map(|e| (l, e)))
        .collect();
    let mut labels: Vec<&String> = footprinted.iter().map(|(l, _)| *l).collect();
    labels.sort();
    for label in labels {
        let decl = declared[label].expect("filtered to Some above");
        let obs = observed.get(label).copied().unwrap_or_default();
        let spurious = Effect {
            writes_servers: decl.writes_servers & !obs.writes_servers,
            writes_channels: decl.writes_channels & !obs.writes_channels,
            writes_flags: decl.writes_flags & !obs.writes_flags & !flags::GLOBAL,
            ..Effect::default()
        };
        if spurious.writes_servers == 0
            && spurious.writes_channels == 0
            && spurious.writes_flags == 0
        {
            continue;
        }
        let tight = tighten(&decl, &obs);
        let lost = footprinted
            .iter()
            .filter(|(other, other_decl)| {
                *other != label && !decl.independent(other_decl) && {
                    let other_obs = observed.get(*other).copied().unwrap_or_default();
                    tight.independent(&tighten(other_decl, &other_obs))
                }
            })
            .count() as u64;
        report.findings.push(Finding {
            tier: Tier::EffectAudit,
            class: FindingClass::Precision,
            action: action_of(label),
            location: label.clone(),
            field_path: String::new(),
            effect_bits: spurious
                .write_bits()
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", "),
            detail: format!(
                "declared write bits never observed over {} corpus states; the \
                 footprint is sound but wider than necessary",
                report.corpus_states
            ),
            estimated_lost_pruning: lost,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    use remix_spec::{ActionDef, ActionInstance, Granularity, ModuleId, ModuleSpec, Value};

    /// Two counters in "server 0" and "server 1" slots; `IncBoth` writes both but can
    /// be built with an under-declared footprint to exercise the audit.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Pair {
        a: u32,
        b: u32,
    }

    impl SpecState for Pair {
        fn project(&self, _vars: &[&str]) -> BTreeMap<String, Value> {
            BTreeMap::new()
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["a", "b"]
        }
    }

    impl StateFields for Pair {
        fn fields(&self) -> Vec<FieldInfo> {
            vec![
                FieldInfo::new("a", Effect::new().writes_server(0)),
                FieldInfo::new("b", Effect::new().writes_server(1)),
            ]
        }
        fn field_hashes(&self, out: &mut Vec<u64>) {
            out.push(u64::from(self.a));
            out.push(u64::from(self.b));
        }
    }

    fn pair_spec(declare_b: bool) -> Spec<Pair> {
        let m = ModuleId("Pair");
        let inc_both = ActionDef::new(
            "IncBoth",
            m,
            Granularity::Baseline,
            vec!["a", "b"],
            vec!["a", "b"],
            move |s: &Pair| {
                if s.a < 2 {
                    let mut eff = Effect::new().writes_server(0);
                    if declare_b {
                        eff = eff.writes_server(1);
                    }
                    vec![ActionInstance::new(
                        format!("IncBoth({})", s.a),
                        Pair {
                            a: s.a + 1,
                            b: s.b + 1,
                        },
                    )
                    .with_effect(eff)]
                } else {
                    vec![]
                }
            },
        );
        Spec::new(
            "pair",
            vec![Pair { a: 0, b: 0 }],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![inc_both])],
            vec![],
        )
    }

    #[test]
    fn under_declaration_is_a_soundness_finding() {
        let report = effect_audit(&pair_spec(false), CorpusOptions::default());
        assert!(report.has_soundness());
        let f = report.soundness().next().unwrap();
        assert_eq!(f.action, "IncBoth");
        assert_eq!(f.field_path, "b");
        assert_eq!(f.effect_bits, "server[1]");
    }

    #[test]
    fn full_declaration_is_clean() {
        let report = effect_audit(&pair_spec(true), CorpusOptions::default());
        assert!(!report.has_soundness(), "findings: {:?}", report.findings);
        assert!(report.audited_transitions > 0);
    }

    #[test]
    fn spurious_bits_are_precision_findings() {
        // Declares a write of server 2 that never happens.
        let m = ModuleId("Pair");
        let inc_a = ActionDef::new(
            "IncA",
            m,
            Granularity::Baseline,
            vec!["a"],
            vec!["a"],
            move |s: &Pair| {
                if s.a < 2 {
                    vec![
                        ActionInstance::new(format!("IncA({})", s.a), Pair { a: s.a + 1, b: s.b })
                            .with_effect(Effect::new().writes_server(0).writes_server(2)),
                    ]
                } else {
                    vec![]
                }
            },
        );
        let spec = Spec::new(
            "pair",
            vec![Pair { a: 0, b: 0 }],
            vec![ModuleSpec::new(m, Granularity::Baseline, vec![inc_a])],
            vec![],
        );
        let report = effect_audit(&spec, CorpusOptions::default());
        assert!(!report.has_soundness());
        let precision: Vec<_> = report
            .findings
            .iter()
            .filter(|f| f.class == FindingClass::Precision)
            .collect();
        assert!(!precision.is_empty());
        assert!(precision[0].effect_bits.contains("server[2]"));
    }
}
