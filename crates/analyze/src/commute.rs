//! Tier 2 — the commute / never-disable diamond oracle.
//!
//! Sleep-set POR keeps a transition asleep across another exactly when their declared
//! footprints are [`independent`](remix_spec::Effect::independent).  That is only
//! sound if declared-independent pairs actually *commute* (both orders reach the same
//! corner state) and *never disable* each other (firing one leaves the other
//! enabled).  This pass checks the semantic property directly: over a corpus of
//! reachable states, for every co-enabled pair of instances whose declared footprints
//! say "independent", it closes the diamond and reports any violation as a
//! **soundness** finding.
//!
//! This generalizes the hand-written Zab diamond test that caught the `NodeRestart`
//! under-declaration (PR 7) to any [`Spec`] — a new protocol crate gets the oracle
//! for free, without writing protocol-specific assertions.
//!
//! Violations are deduplicated per unordered label pair, so one bad pair produces one
//! finding no matter how many corpus states exhibit it.

use std::collections::{HashMap, HashSet};

use remix_checker::{corpus, CorpusOptions};
use remix_spec::{Effect, Spec, SpecState};

use crate::finding::{AnalysisReport, Finding, FindingClass, Tier};

/// Runs the commute oracle over a freshly built bounded corpus of `spec`.
pub fn commute_oracle<S: SpecState>(spec: &Spec<S>, opts: CorpusOptions) -> AnalysisReport {
    let states = corpus(spec, opts);
    commute_oracle_corpus(spec, &states)
}

/// Runs the commute oracle over an already collected corpus of reachable states.
pub fn commute_oracle_corpus<S: SpecState>(spec: &Spec<S>, states: &[S]) -> AnalysisReport {
    let mut report = AnalysisReport {
        corpus_states: states.len() as u64,
        ..AnalysisReport::default()
    };
    // Successor memo for the intermediate diamond states: label -> set of nexts.
    let mut succ_cache: HashMap<S, HashMap<String, Vec<S>>> = HashMap::new();
    let mut reported: HashSet<(String, String)> = HashSet::new();

    for state in states {
        // All co-enabled instances with usable footprints, with their action names.
        let mut insts: Vec<(&'static str, String, S, Effect)> = Vec::new();
        for module in &spec.modules {
            for def in &module.actions {
                for inst in def.enabled(state) {
                    if let Some(eff) = inst.effect.filter(|e| !e.is_global()) {
                        insts.push((def.name, inst.label, inst.next, eff));
                    }
                }
            }
        }
        for i in 0..insts.len() {
            for j in (i + 1)..insts.len() {
                let (name_a, label_a, next_a, eff_a) = &insts[i];
                let (name_b, label_b, next_b, eff_b) = &insts[j];
                if label_a == label_b || !eff_a.independent(eff_b) {
                    continue;
                }
                let pair_key = if label_a <= label_b {
                    (label_a.clone(), label_b.clone())
                } else {
                    (label_b.clone(), label_a.clone())
                };
                if reported.contains(&pair_key) {
                    continue;
                }
                let corners_ab = corners(spec, &mut succ_cache, next_a, label_b);
                let corners_ba = corners(spec, &mut succ_cache, next_b, label_a);
                let action_pair = format!("{name_a} x {name_b}");
                let location = format!("{label_a} | {label_b}");
                if corners_ab.is_empty() || corners_ba.is_empty() {
                    let disabled = if corners_ab.is_empty() {
                        label_b
                    } else {
                        label_a
                    };
                    reported.insert(pair_key);
                    report.findings.push(Finding {
                        tier: Tier::CommuteOracle,
                        class: FindingClass::Soundness,
                        action: action_pair,
                        location,
                        field_path: String::new(),
                        effect_bits: String::new(),
                        detail: format!(
                            "declared independent, but firing the other transition \
                             disables {disabled}: sleep-set pruning over this pair \
                             can lose states"
                        ),
                        estimated_lost_pruning: 0,
                    });
                    continue;
                }
                let set_ab: HashSet<&S> = corners_ab.iter().collect();
                let set_ba: HashSet<&S> = corners_ba.iter().collect();
                if set_ab != set_ba {
                    reported.insert(pair_key);
                    report.findings.push(Finding {
                        tier: Tier::CommuteOracle,
                        class: FindingClass::Soundness,
                        action: action_pair,
                        location,
                        field_path: String::new(),
                        effect_bits: String::new(),
                        detail: "declared independent, but the two firing orders \
                                 reach different corner states (no commuting diamond)"
                            .to_owned(),
                        estimated_lost_pruning: 0,
                    });
                    continue;
                }
                report.diamonds_checked += 1;
            }
        }
    }
    report
}

/// The successor states of `state` under the instance labelled `label`, memoized on
/// the intermediate state (each diamond queries two intermediates).
fn corners<S: SpecState>(
    spec: &Spec<S>,
    cache: &mut HashMap<S, HashMap<String, Vec<S>>>,
    state: &S,
    label: &str,
) -> Vec<S> {
    let by_label = cache.entry(state.clone()).or_insert_with(|| {
        let mut m: HashMap<String, Vec<S>> = HashMap::new();
        for (l, next) in spec.successors(state) {
            m.entry(l).or_default().push(next);
        }
        m
    });
    by_label.get(label).cloned().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    use remix_spec::{ActionDef, ActionInstance, Granularity, ModuleId, ModuleSpec, Value};

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    struct Grid {
        x: u32,
        y: u32,
    }

    impl SpecState for Grid {
        fn project(&self, _vars: &[&str]) -> BTreeMap<String, Value> {
            BTreeMap::new()
        }
        fn variable_names() -> Vec<&'static str> {
            vec!["x", "y"]
        }
    }

    /// `IncX` and `IncY` declare disjoint footprints.  With `honest`, they are truly
    /// independent; without it, `IncY` is guarded on `x == 0` (IncX disables it) while
    /// still declaring independence.
    fn grid_spec(honest: bool) -> Spec<Grid> {
        let m = ModuleId("Grid");
        let inc_x = ActionDef::new(
            "IncX",
            m,
            Granularity::Baseline,
            vec!["x"],
            vec!["x"],
            move |s: &Grid| {
                if s.x < 2 {
                    vec![
                        ActionInstance::new(format!("IncX({})", s.x), Grid { x: s.x + 1, y: s.y })
                            .with_effect(Effect::new().writes_server(0)),
                    ]
                } else {
                    vec![]
                }
            },
        );
        let inc_y = ActionDef::new(
            "IncY",
            m,
            Granularity::Baseline,
            vec!["y"],
            vec!["y"],
            move |s: &Grid| {
                if s.y < 2 && (honest || s.x == 0) {
                    vec![
                        ActionInstance::new(format!("IncY({})", s.y), Grid { x: s.x, y: s.y + 1 })
                            .with_effect(Effect::new().writes_server(1)),
                    ]
                } else {
                    vec![]
                }
            },
        );
        Spec::new(
            "grid",
            vec![Grid { x: 0, y: 0 }],
            vec![ModuleSpec::new(
                m,
                Granularity::Baseline,
                vec![inc_x, inc_y],
            )],
            vec![],
        )
    }

    #[test]
    fn honest_spec_closes_diamonds_cleanly() {
        let report = commute_oracle(&grid_spec(true), CorpusOptions::default());
        assert!(!report.has_soundness(), "findings: {:?}", report.findings);
        assert!(report.diamonds_checked > 0);
    }

    #[test]
    fn disabling_pair_is_flagged() {
        let report = commute_oracle(&grid_spec(false), CorpusOptions::default());
        assert!(report.has_soundness());
        let f = report.soundness().next().unwrap();
        assert_eq!(f.tier, Tier::CommuteOracle);
        assert!(f.detail.contains("disables"));
    }
}
