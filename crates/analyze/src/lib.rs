//! Spec soundness analyzer: effect audits, commute oracles and source lints.
//!
//! Declared [`Effect`](remix_spec::Effect) footprints are the soundness linchpin of
//! both sleep-set partial-order reduction and incremental canonicalization: an
//! under-declared footprint makes the checker silently drop states (the `NodeRestart`
//! incident of PR 7 lost 12,565 of 16,702 states).  This crate turns that one-off
//! lesson into a reusable, spec-generic analysis subsystem with three tiers:
//!
//! 1. **Effect audit** ([`audit`]) — walk a bounded BFS corpus, diff parent/child
//!    per-field hashes ([`StateFields`]) for every enabled
//!    instance, and report observed writes outside the declared footprint as
//!    **soundness** findings (plus declared-but-never-observed bits as **precision**
//!    warnings with an estimate of lost pruning).
//! 2. **Commute oracle** ([`commute`]) — for every co-enabled pair declared
//!    independent, close the commute + never-disable diamond over the corpus, for any
//!    [`Spec`].
//! 3. **Spec lint** ([`lint`]) — a self-contained source scan of `crates/*/src`
//!    enforcing the workspace conventions that keep declarations honest.
//!
//! The concurrency-soundness pass adds a fourth tier aimed at the *engine* rather
//! than the specs it checks:
//!
//! 4. **Concurrency analysis** ([`concurrency`] + [`schedule`]) — a source lint
//!    keeping every synchronization primitive on the instrumented
//!    `remix_checker::sync` layer (with justified memory orderings and lock-free
//!    successor callbacks), a mapping from the sync layer's lock-order
//!    [`AuditReport`](remix_checker::AuditReport)s onto soundness findings, and a
//!    schedule-perturbation oracle that re-runs workloads under seeded yield
//!    injection and reports any divergence from the deterministic baseline.
//!
//! `remix-core` wires tiers 1 and 2 into the `Verifier` as a pre-check gate
//! (`Verifier::analyze_*`); the `remix-lint` binary in `remix-bench` drives tiers 3
//! and 4's source lints; CI fails on any soundness- or convention-class finding via
//! `BENCH_analysis.json` and `BENCH_concurrency.json`.

#![warn(missing_docs)]

pub mod audit;
pub mod commute;
pub mod concurrency;
pub mod finding;
pub mod lint;
pub mod schedule;

pub use audit::{effect_audit, effect_audit_corpus};
pub use commute::{commute_oracle, commute_oracle_corpus};
pub use concurrency::{lint_concurrency, lock_order_findings};
pub use finding::{AnalysisReport, Finding, FindingClass, Tier};
pub use lint::lint_workspace;
pub use schedule::{schedule_oracle, RunSignature, ScheduleOracleOptions};

use remix_checker::{corpus, CorpusOptions};
use remix_spec::{Spec, SpecState, StateFields};

/// Runs the two semantic tiers (effect audit + commute oracle) over one shared
/// bounded corpus of `spec` and merges their findings.
pub fn analyze_spec<S>(spec: &Spec<S>, opts: CorpusOptions) -> AnalysisReport
where
    S: SpecState + StateFields,
{
    let states = corpus(spec, opts);
    let mut report = effect_audit_corpus(spec, &states);
    report.merge(commute_oracle_corpus(spec, &states));
    report
}
