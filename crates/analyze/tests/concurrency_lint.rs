//! The workspace must be clean under its own concurrency lint.
//!
//! This is the self-hosting gate of the concurrency-soundness pass: every
//! synchronization primitive in the engine goes through `remix_checker::sync` (or
//! carries an explicit `// sync-exempt:` waiver with its leaf-lock argument), every
//! memory-ordering choice is justified, no successor callback takes a lock, and
//! poison handling is centralized.  A finding here means a convention regressed —
//! the same class of drift the lint exists to catch in review.

use std::path::PathBuf;

use remix_analyze::{lint_concurrency, lock_order_findings};

fn workspace_root() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn workspace_is_clean_under_the_concurrency_lint() {
    let report = lint_concurrency(&workspace_root());
    assert!(
        report.findings.is_empty(),
        "concurrency lint findings:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.corpus_states > 0,
        "the lint must actually have scanned source files"
    );
}

#[test]
fn seeded_rank_inversion_is_flagged_as_a_soundness_finding() {
    let audit = remix_checker::sync::seeded_rank_inversion();
    let report = lock_order_findings(&audit);
    assert!(
        report.has_soundness(),
        "the seeded inversion must be flagged"
    );
    let finding = report
        .findings
        .iter()
        .find(|f| f.action == "rank-inversion")
        .expect("a rank-inversion finding");
    assert!(
        finding.location.contains("seeded.inner"),
        "the inner (lower-rank) site is the acquisition: {}",
        finding.location
    );
    assert!(
        finding.detail.contains("seeded.outer"),
        "the held higher-rank site appears in the detail: {}",
        finding.detail
    );
}
