//! The schedule-perturbation determinism oracle on the real Zab workload.
//!
//! The oracle's promise cuts both ways and both directions need a regression:
//!
//! * **no false positives** — the production engine, which the determinism suites
//!   already pin as schedule-independent, must survive seeded yield injection
//!   across worker counts without a single divergence finding;
//! * **no false negatives** — the deliberately history-dependent demo spec
//!   ([`seeded_schedule_divergence`]) must be flagged, with a replayable seed.

use std::time::Duration;

use remix_analyze::schedule::seeded_schedule_divergence;
use remix_analyze::{schedule_oracle, ScheduleOracleOptions};
use remix_checker::CheckOptions;
use remix_zab::{ClusterConfig, CodeVersion, SpecPreset};

#[test]
fn zab_preset_is_deterministic_under_schedule_perturbation() {
    let config = ClusterConfig::small(CodeVersion::FinalFix)
        .with_transactions(1)
        .with_crashes(0);
    let spec = SpecPreset::MSpec1.build(&config);
    let base = CheckOptions::default()
        .with_time_budget(Duration::from_secs(300))
        .with_max_states(500_000);
    let report = schedule_oracle(
        "mspec1-small",
        &spec,
        &base,
        &ScheduleOracleOptions {
            workers: vec![1, 2, 4],
            seeds: vec![0xC0FF_EE11],
        },
    );
    assert!(
        report.findings.is_empty(),
        "the engine must be schedule-independent:\n{}",
        report
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(report.diamonds_checked, 3, "all three cells compared");
    assert!(report.corpus_states > 0);
}

#[test]
fn seeded_divergence_regression_is_flagged() {
    let report = seeded_schedule_divergence();
    assert!(report.has_soundness());
    let finding = &report.findings[0];
    assert_eq!(finding.action, "determinism-divergence");
    assert!(finding.location.contains("workers=2"));
    assert!(finding.detail.contains("perturb::install"));
}
