//! End-to-end audit of the Zab workspace annotations.
//!
//! Two halves of the same acceptance bar:
//!
//! * the honest workspace must come out **clean** — zero soundness findings from the
//!   effect audit and the commute oracle over a bounded corpus of every preset;
//! * the seeded `NodeRestart` under-declaration (the PR 7 incident, re-created by
//!   `remix_zab::underdeclare_node_restart`) must be **flagged**, naming the action,
//!   a `link` field and the undeclared channel bit.

use remix_analyze::{analyze_spec, effect_audit, FindingClass, Tier};
use remix_checker::CorpusOptions;
use remix_zab::{underdeclare_node_restart, ClusterConfig, CodeVersion, SpecPreset};

fn opts() -> CorpusOptions {
    CorpusOptions {
        max_states: 4_000,
        max_depth: 64,
    }
}

#[test]
fn honest_zab_presets_have_no_soundness_findings() {
    let config = ClusterConfig::small(CodeVersion::FinalFix).with_transactions(1);
    for &preset in SpecPreset::all() {
        let spec = preset.build(&config);
        let report = analyze_spec(&spec, opts());
        let unsound: Vec<String> = report.soundness().map(|f| f.to_string()).collect();
        assert!(
            unsound.is_empty(),
            "{}: {} soundness findings:\n{}",
            preset.name(),
            unsound.len(),
            unsound.join("\n")
        );
        assert!(
            report.audited_transitions > 0,
            "{}: audit ran",
            preset.name()
        );
    }
}

#[test]
fn seeded_node_restart_underdeclaration_is_flagged() {
    let config = ClusterConfig::small(CodeVersion::FinalFix).with_transactions(1);
    let mut spec = SpecPreset::MSpec3.build(&config);
    underdeclare_node_restart(&mut spec);
    let report = effect_audit(&spec, opts());
    let finding = report
        .soundness()
        .find(|f| f.action == "NodeRestart")
        .unwrap_or_else(|| {
            panic!(
                "seeded NodeRestart under-declaration not flagged; findings: {:?}",
                report.findings
            )
        });
    assert_eq!(finding.tier, Tier::EffectAudit);
    assert_eq!(finding.class, FindingClass::Soundness);
    assert!(
        finding.field_path.starts_with("link["),
        "expected a link field, got {}",
        finding.field_path
    );
    assert!(
        finding.effect_bits.contains("channel["),
        "expected an undeclared channel bit, got {}",
        finding.effect_bits
    );
}
