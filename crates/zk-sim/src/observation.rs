//! Observations: the code-level state snapshot compared against the model during
//! conformance checking.

use std::collections::BTreeMap;

use remix_spec::Value;
use remix_zab::{Sid, Txn};

/// The observable state of one server process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeObservation {
    /// The server id.
    pub sid: Sid,
    /// `currentEpoch` on disk.
    pub current_epoch: u32,
    /// `acceptedEpoch` on disk.
    pub accepted_epoch: u32,
    /// The durable transaction log.
    pub log: Vec<Txn>,
    /// Number of committed (delivered) transactions.
    pub committed: usize,
    /// Whether the process is up.
    pub up: bool,
    /// Any error (exception / failed assertion) the process raised.
    pub error: Option<String>,
}

/// The observable state of the whole cluster.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Observation {
    /// Per-server observations, indexed by sid.
    pub nodes: Vec<NodeObservation>,
}

impl Observation {
    /// Projects the observation into the same variable space as the model state, so the
    /// conformance checker can compare them value by value.
    pub fn project(&self, vars: &[&str]) -> BTreeMap<String, Value> {
        let mut out = BTreeMap::new();
        let per_node = |f: &dyn Fn(&NodeObservation) -> Value| -> Value {
            Value::Seq(self.nodes.iter().map(f).collect())
        };
        for var in vars {
            let v = match *var {
                "currentEpoch" => Some(per_node(&|n| Value::from(n.current_epoch))),
                "acceptedEpoch" => Some(per_node(&|n| Value::from(n.accepted_epoch))),
                "lastCommitted" => Some(per_node(&|n| Value::from(n.committed))),
                "history" => Some(per_node(&|n| {
                    Value::Seq(
                        n.log
                            .iter()
                            .map(|t| {
                                Value::record(vec![
                                    ("epoch".to_owned(), Value::from(t.zxid.epoch)),
                                    ("counter".to_owned(), Value::from(t.zxid.counter)),
                                    ("value".to_owned(), Value::from(t.value)),
                                ])
                            })
                            .collect(),
                    )
                })),
                "violation" => Some(Value::Bool(self.nodes.iter().any(|n| n.error.is_some()))),
                _ => None,
            };
            if let Some(v) = v {
                out.insert((*var).to_owned(), v);
            }
        }
        out
    }

    /// The variables this observation can project (the conformance-checkable subset).
    pub fn comparable_variables() -> &'static [&'static str] {
        &[
            "currentEpoch",
            "acceptedEpoch",
            "history",
            "lastCommitted",
            "violation",
        ]
    }

    /// The first error raised by any node, if any.
    pub fn first_error(&self) -> Option<(&NodeObservation, &str)> {
        self.nodes
            .iter()
            .find_map(|n| n.error.as_deref().map(|e| (n, e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs() -> Observation {
        Observation {
            nodes: vec![
                NodeObservation {
                    sid: 0,
                    current_epoch: 1,
                    accepted_epoch: 1,
                    log: vec![Txn::new(1, 1, 7)],
                    committed: 1,
                    up: true,
                    error: None,
                },
                NodeObservation {
                    sid: 1,
                    current_epoch: 0,
                    accepted_epoch: 1,
                    log: vec![],
                    committed: 0,
                    up: true,
                    error: Some("ZK-4394".to_owned()),
                },
            ],
        }
    }

    #[test]
    fn projection_matches_the_model_variable_space() {
        let o = obs();
        let p = o.project(Observation::comparable_variables());
        assert_eq!(p.len(), 5);
        assert_eq!(
            p["currentEpoch"],
            Value::Seq(vec![Value::Int(1), Value::Int(0)])
        );
        assert_eq!(
            p["lastCommitted"],
            Value::Seq(vec![Value::Int(1), Value::Int(0)])
        );
        assert_eq!(p["violation"], Value::Bool(true));
        let history = p["history"].as_seq().unwrap();
        assert_eq!(history[0].len(), 1);
        assert_eq!(history[1].len(), 0);
    }

    #[test]
    fn first_error_is_reported() {
        let o = obs();
        let (node, err) = o.first_error().unwrap();
        assert_eq!(node.sid, 1);
        assert!(err.contains("ZK-4394"));
    }
}
