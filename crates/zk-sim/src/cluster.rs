//! The cluster: a set of server processes, the network, and the scheduler interface.
//!
//! Every code-level action that the Remix coordinator may schedule is a [`SimEvent`];
//! [`Cluster::step`] executes exactly one event, mirroring how the paper's coordinator
//! lets one instrumented code-level action run at a time (§3.5.3).

use std::fmt;

use remix_zab::{ClusterConfig, Message, Sid, Zxid};

use crate::network::Network;
use crate::node::{NodeHandle, RunState, SyncPhase};
use crate::observation::{NodeObservation, Observation};

/// One schedulable code-level action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// Leader election plus discovery for a quorum (the coordinator elects `leader` with
    /// `quorum`, giving the FLE messages that vote for the target leader priority, as
    /// described in §3.5.3).
    ElectLeader {
        /// The server to elect.
        leader: Sid,
        /// The participating quorum (including the leader).
        quorum: Vec<Sid>,
    },
    /// A LOOKING server that overheard the winning election round connects to the
    /// already-elected leader and completes the discovery handshake (the code path a
    /// late `FastLeaderElection` decision takes; the model-level counterpart is the
    /// coarse `ElectionAndDiscoveryLateJoin` action).
    FollowerJoinLeader {
        /// The joining server.
        follower: Sid,
        /// The established (or synchronizing) leader it connects to.
        leader: Sid,
    },
    /// An election round interrupted by the elected leader crashing mid-discovery: the
    /// `joined` followers durably accepted the proposed epoch, the leader wrote its
    /// `acceptedEpoch` (but never committed `currentEpoch`) and died (the model-level
    /// counterpart is the coarse `ElectionAndDiscoveryLeaderCrash` action).
    ElectLeaderInterrupted {
        /// The elected (and immediately crashed) leader.
        leader: Sid,
        /// The participating quorum (including the leader).
        quorum: Vec<Sid>,
        /// The followers whose discovery handshake completed before the crash.
        joined: Vec<Sid>,
    },
    /// The leader's LearnerHandler sends the sync payload and NEWLEADER to a follower.
    LeaderSyncFollower {
        /// The leader.
        leader: Sid,
        /// The follower.
        follower: Sid,
    },
    /// The follower processes the pending sync payload (DIFF / TRUNC / SNAP).
    FollowerHandleSyncPackets {
        /// The follower.
        follower: Sid,
    },
    /// `Learner.syncWithLeader` NEWLEADER step ①: update `currentEpoch`.
    FollowerNewLeaderUpdateEpoch {
        /// The follower.
        follower: Sid,
    },
    /// NEWLEADER step ②: hand pending packets to the SyncRequestProcessor.
    FollowerNewLeaderLogRequests {
        /// The follower.
        follower: Sid,
    },
    /// NEWLEADER step ③: acknowledge NEWLEADER (consumes the packet).
    FollowerNewLeaderAck {
        /// The follower.
        follower: Sid,
    },
    /// One iteration of the follower's SyncRequestProcessor thread.
    SyncProcessorRun {
        /// The node whose logging thread runs.
        node: Sid,
    },
    /// One iteration of the follower's CommitProcessor thread.
    CommitProcessorRun {
        /// The node whose commit thread runs.
        node: Sid,
    },
    /// The leader processes the next pending ACK from a follower.
    LeaderProcessAck {
        /// The leader.
        leader: Sid,
        /// The follower whose ACK is processed.
        from: Sid,
    },
    /// The follower processes a pending COMMIT while still synchronizing.
    FollowerHandleCommitInSync {
        /// The follower.
        follower: Sid,
    },
    /// The follower processes a pending UPTODATE.
    FollowerHandleUpToDate {
        /// The follower.
        follower: Sid,
    },
    /// The follower processes a pending broadcast PROPOSAL.
    FollowerHandleProposal {
        /// The follower.
        follower: Sid,
    },
    /// The follower processes a pending broadcast COMMIT.
    FollowerHandleCommit {
        /// The follower.
        follower: Sid,
    },
    /// The leader turns a client request into a proposal.
    LeaderClientRequest {
        /// The leader.
        leader: Sid,
    },
    /// A node crashes.
    Crash {
        /// The node.
        node: Sid,
    },
    /// A crashed node restarts.
    Restart {
        /// The node.
        node: Sid,
    },
    /// A follower detects that its leader is unreachable and shuts down.
    FollowerShutdown {
        /// The follower.
        follower: Sid,
    },
    /// A leader that lost its quorum shuts down.
    LeaderShutdown {
        /// The leader.
        leader: Sid,
    },
    /// The link between two nodes partitions.
    Partition {
        /// One endpoint.
        a: Sid,
        /// The other endpoint.
        b: Sid,
    },
    /// A partitioned link heals.
    Heal {
        /// One endpoint.
        a: Sid,
        /// The other endpoint.
        b: Sid,
    },
    /// No-op (used for model actions with no code-level counterpart).
    Skip,
}

/// Errors returned when an event cannot be executed in the current cluster state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Description of why the event was not executable.
    pub reason: String,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation event not executable: {}", self.reason)
    }
}

impl std::error::Error for SimError {}

fn err(reason: impl Into<String>) -> SimError {
    SimError {
        reason: reason.into(),
    }
}

/// The simulated cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Configuration (code version, cluster size, budgets).
    pub config: ClusterConfig,
    /// The server processes.
    pub nodes: Vec<NodeHandle>,
    /// The network.
    pub network: Network,
    /// Client request payload counter.
    next_value: u32,
    /// The schedule seed this replay runs under (see [`Cluster::with_seed`]).
    schedule_seed: u64,
}

impl Cluster {
    /// Boots a cluster with schedule seed 0.
    pub fn new(config: ClusterConfig) -> Self {
        Cluster::with_seed(config, 0)
    }

    /// Boots a cluster tagged with the deterministic schedule seed of the model-level
    /// trace it replays.
    ///
    /// Execution itself is already deterministic — the coordinator schedules one
    /// [`SimEvent`] at a time (§3.5.3) and the simulator makes no free choices — so the
    /// seed does not perturb behaviour.  It records *which* sampled schedule this
    /// replay belongs to: the conformance checker boots the replay cluster with the
    /// per-trace sampling seed, and a shrunk divergence carries the same seed, so the
    /// minimized trace can always be re-run under the identical schedule identity it
    /// was found with.
    pub fn with_seed(config: ClusterConfig, schedule_seed: u64) -> Self {
        Cluster {
            config,
            nodes: (0..config.num_servers).map(NodeHandle::new).collect(),
            network: Network::new(config.num_servers),
            next_value: 0,
            schedule_seed,
        }
    }

    /// The deterministic schedule seed this replay is tagged with.
    pub fn schedule_seed(&self) -> u64 {
        self.schedule_seed
    }

    fn quorum(&self) -> usize {
        self.config.quorum_size()
    }

    /// Executes one code-level event.
    pub fn step(&mut self, event: &SimEvent) -> Result<(), SimError> {
        let bugs = self.config.bugs();
        match event.clone() {
            SimEvent::Skip => Ok(()),
            SimEvent::ElectLeader { leader, quorum } => {
                let epoch = self
                    .nodes
                    .iter()
                    .map(|n| {
                        n.server
                            .disk
                            .accepted_epoch
                            .max(n.server.disk.current_epoch)
                    })
                    .max()
                    .unwrap_or(0)
                    + 1;
                if !quorum.contains(&leader) {
                    return Err(err("leader not in quorum"));
                }
                for &m in &quorum {
                    if self.nodes[m].server.run_state != RunState::Looking {
                        return Err(err(format!("server {m} is not LOOKING")));
                    }
                }
                for &m in &quorum {
                    if m == leader {
                        let mut l = crate::node::LeaderServer::new(leader, epoch);
                        for &f in &quorum {
                            if f != leader {
                                l.register_learner(f, self.nodes[f].server.disk.last_zxid());
                            }
                        }
                        self.nodes[m].server.run_state = RunState::Leading;
                        self.nodes[m].server.phase = SyncPhase::Synchronizing;
                        self.nodes[m].server.disk.accepted_epoch = epoch;
                        self.nodes[m].server.disk.current_epoch = epoch;
                        self.nodes[m].leader = Some(l);
                    } else {
                        self.nodes[m].server.start_following(leader, epoch);
                    }
                }
                Ok(())
            }
            SimEvent::FollowerJoinLeader { follower, leader } => {
                if self.nodes[follower].server.run_state != RunState::Looking {
                    return Err(err(format!("server {follower} is not LOOKING")));
                }
                if self.nodes[leader].server.run_state != RunState::Leading {
                    return Err(err(format!("server {leader} is not LEADING")));
                }
                let last = self.nodes[follower].server.disk.last_zxid();
                let epoch = self.nodes[leader].server.disk.accepted_epoch;
                let l = self.nodes[leader]
                    .leader
                    .as_mut()
                    .ok_or_else(|| err("not a leader"))?;
                l.register_learner(follower, last);
                self.nodes[follower].server.start_following(leader, epoch);
                Ok(())
            }
            SimEvent::ElectLeaderInterrupted {
                leader,
                quorum,
                joined,
            } => {
                let epoch = self
                    .nodes
                    .iter()
                    .map(|n| {
                        n.server
                            .disk
                            .accepted_epoch
                            .max(n.server.disk.current_epoch)
                    })
                    .max()
                    .unwrap_or(0)
                    + 1;
                for &m in &quorum {
                    if self.nodes[m].server.run_state != RunState::Looking {
                        return Err(err(format!("server {m} is not LOOKING")));
                    }
                }
                for &j in &joined {
                    if !quorum.contains(&j) || j == leader {
                        return Err(err(format!("server {j} did not participate")));
                    }
                    self.nodes[j].server.start_following(leader, epoch);
                }
                // The leader durably accepted the epoch it proposed, then died before
                // committing it.
                self.nodes[leader].server.disk.accepted_epoch = epoch;
                self.nodes[leader].server.crash();
                self.nodes[leader].leader = None;
                self.network.disconnect(leader);
                Ok(())
            }
            SimEvent::LeaderSyncFollower { leader, follower } => {
                let disk = self.nodes[leader].server.disk.clone();
                let l = self.nodes[leader]
                    .leader
                    .as_mut()
                    .ok_or_else(|| err("not a leader"))?;
                l.sync_follower(follower, &disk, &mut self.network);
                Ok(())
            }
            SimEvent::FollowerHandleSyncPackets { follower } => {
                let leader = self.nodes[follower]
                    .server
                    .leader
                    .ok_or_else(|| err("no leader"))?;
                match self.network.recv(leader, follower) {
                    Some(Message::SyncPackets {
                        mode,
                        txns,
                        committed_upto,
                        trunc_to,
                    }) => {
                        self.nodes[follower].server.handle_sync_packets(
                            mode,
                            txns,
                            committed_upto,
                            trunc_to,
                        );
                        Ok(())
                    }
                    other => Err(err(format!("expected SYNCPACKETS, got {other:?}"))),
                }
            }
            SimEvent::FollowerNewLeaderUpdateEpoch { follower } => {
                let leader = self.nodes[follower]
                    .server
                    .leader
                    .ok_or_else(|| err("no leader"))?;
                match self.network.peek(leader, follower) {
                    Some(Message::NewLeader { epoch, .. }) => {
                        let epoch = *epoch;
                        self.nodes[follower].server.newleader_update_epoch(epoch);
                        Ok(())
                    }
                    other => Err(err(format!("expected NEWLEADER, got {other:?}"))),
                }
            }
            SimEvent::FollowerNewLeaderLogRequests { follower } => {
                self.nodes[follower].server.newleader_log_requests(&bugs);
                Ok(())
            }
            SimEvent::FollowerNewLeaderAck { follower } => {
                let leader = self.nodes[follower]
                    .server
                    .leader
                    .ok_or_else(|| err("no leader"))?;
                match self.network.recv(leader, follower) {
                    Some(Message::NewLeader { zxid, .. }) => {
                        self.nodes[follower]
                            .server
                            .newleader_write_ack(zxid, &mut self.network);
                        Ok(())
                    }
                    other => Err(err(format!("expected NEWLEADER, got {other:?}"))),
                }
            }
            SimEvent::SyncProcessorRun { node } => {
                self.nodes[node]
                    .server
                    .sync_processor_run_once(&mut self.network);
                Ok(())
            }
            SimEvent::CommitProcessorRun { node } => {
                self.nodes[node].server.commit_processor_run_once(&bugs);
                Ok(())
            }
            SimEvent::LeaderProcessAck { leader, from } => {
                let quorum = self.quorum();
                match self.network.recv(from, leader) {
                    Some(Message::Ack { zxid }) => {
                        let mut disk = self.nodes[leader].server.disk.clone();
                        let l = self.nodes[leader]
                            .leader
                            .as_mut()
                            .ok_or_else(|| err("not a leader"))?;
                        if l.established {
                            l.process_ack_in_broadcast(
                                from,
                                zxid,
                                &mut disk,
                                &mut self.network,
                                quorum,
                            );
                        } else {
                            let ready = l.process_ack_during_sync(from, zxid, &disk, &bugs, quorum);
                            if ready {
                                l.establish(&mut disk, &mut self.network);
                                self.nodes[leader].server.phase = SyncPhase::Broadcast;
                            }
                        }
                        self.nodes[leader].server.disk = disk;
                        Ok(())
                    }
                    other => Err(err(format!("expected ACK, got {other:?}"))),
                }
            }
            SimEvent::FollowerHandleCommitInSync { follower } => {
                let leader = self.nodes[follower]
                    .server
                    .leader
                    .ok_or_else(|| err("no leader"))?;
                match self.network.recv(leader, follower) {
                    Some(Message::Commit { zxid }) => {
                        let masked = self.config.mask_zk4394;
                        self.nodes[follower]
                            .server
                            .handle_commit_in_sync(zxid, &bugs, masked);
                        Ok(())
                    }
                    other => Err(err(format!("expected COMMIT, got {other:?}"))),
                }
            }
            SimEvent::FollowerHandleUpToDate { follower } => {
                let leader = self.nodes[follower]
                    .server
                    .leader
                    .ok_or_else(|| err("no leader"))?;
                match self.network.recv(leader, follower) {
                    Some(Message::UpToDate { zxid }) => {
                        self.nodes[follower]
                            .server
                            .handle_uptodate(zxid, &bugs, &mut self.network);
                        Ok(())
                    }
                    other => Err(err(format!("expected UPTODATE, got {other:?}"))),
                }
            }
            SimEvent::FollowerHandleProposal { follower } => {
                let leader = self.nodes[follower]
                    .server
                    .leader
                    .ok_or_else(|| err("no leader"))?;
                match self.network.recv(leader, follower) {
                    Some(Message::Proposal { txn }) => {
                        if self.nodes[follower].server.phase == SyncPhase::Synchronizing {
                            self.nodes[follower].server.packets_not_committed.push(txn);
                        } else {
                            self.nodes[follower].server.handle_proposal(txn);
                        }
                        Ok(())
                    }
                    other => Err(err(format!("expected PROPOSAL, got {other:?}"))),
                }
            }
            SimEvent::FollowerHandleCommit { follower } => {
                let leader = self.nodes[follower]
                    .server
                    .leader
                    .ok_or_else(|| err("no leader"))?;
                match self.network.recv(leader, follower) {
                    Some(Message::Commit { zxid }) => {
                        self.nodes[follower].server.handle_commit(zxid);
                        Ok(())
                    }
                    other => Err(err(format!("expected COMMIT, got {other:?}"))),
                }
            }
            SimEvent::LeaderClientRequest { leader } => {
                self.next_value += 1;
                let value = self.next_value;
                let mut disk = self.nodes[leader].server.disk.clone();
                let l = self.nodes[leader]
                    .leader
                    .as_mut()
                    .ok_or_else(|| err("not a leader"))?;
                l.propose(value, &mut disk, &mut self.network);
                self.nodes[leader].server.disk = disk;
                Ok(())
            }
            SimEvent::Crash { node } => {
                self.nodes[node].server.crash();
                self.nodes[node].leader = None;
                self.network.disconnect(node);
                Ok(())
            }
            SimEvent::Restart { node } => {
                self.nodes[node].server.restart();
                Ok(())
            }
            SimEvent::FollowerShutdown { follower } => {
                self.nodes[follower].server.shutdown(&bugs);
                Ok(())
            }
            SimEvent::LeaderShutdown { leader } => {
                self.nodes[leader].leader = None;
                self.nodes[leader].server.shutdown(&bugs);
                self.network.disconnect(leader);
                Ok(())
            }
            SimEvent::Partition { a, b } => {
                self.network.partition(a, b);
                Ok(())
            }
            SimEvent::Heal { a, b } => {
                self.network.heal(a, b);
                Ok(())
            }
        }
    }

    /// Snapshots the observable state of the cluster.
    pub fn observe(&self) -> Observation {
        Observation {
            nodes: self
                .nodes
                .iter()
                .map(|n| NodeObservation {
                    sid: n.server.sid,
                    current_epoch: n.server.disk.current_epoch,
                    accepted_epoch: n.server.disk.accepted_epoch,
                    log: n.server.disk.log.clone(),
                    committed: n.server.disk.committed,
                    up: n.server.run_state != RunState::Down,
                    error: n
                        .server
                        .error
                        .clone()
                        .or_else(|| n.leader.as_ref().and_then(|l| l.error.clone())),
                })
                .collect(),
        }
    }

    /// The last zxid of a node's log (helper for tests and mappings).
    pub fn last_zxid(&self, node: Sid) -> Zxid {
        self.nodes[node].server.disk.last_zxid()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_zab::CodeVersion;

    fn cluster(version: CodeVersion) -> Cluster {
        Cluster::new(ClusterConfig::small(version))
    }

    /// Drives a full, bug-free synchronization and one broadcast round on the fixed
    /// build.  Replay-step failures surface as structured [`SimError`]s through the
    /// test's `Result` (with the failing step prepended) rather than a panic.
    #[test]
    fn happy_path_on_the_fixed_build() -> Result<(), SimError> {
        let mut c = cluster(CodeVersion::FinalFix);
        let steps = [
            SimEvent::ElectLeader {
                leader: 2,
                quorum: vec![0, 1, 2],
            },
            SimEvent::LeaderSyncFollower {
                leader: 2,
                follower: 0,
            },
            SimEvent::LeaderSyncFollower {
                leader: 2,
                follower: 1,
            },
            SimEvent::FollowerHandleSyncPackets { follower: 0 },
            SimEvent::FollowerNewLeaderUpdateEpoch { follower: 0 },
            SimEvent::FollowerNewLeaderLogRequests { follower: 0 },
            SimEvent::FollowerNewLeaderAck { follower: 0 },
            SimEvent::FollowerHandleSyncPackets { follower: 1 },
            SimEvent::FollowerNewLeaderUpdateEpoch { follower: 1 },
            SimEvent::FollowerNewLeaderLogRequests { follower: 1 },
            SimEvent::FollowerNewLeaderAck { follower: 1 },
            SimEvent::LeaderProcessAck { leader: 2, from: 0 },
            SimEvent::LeaderProcessAck { leader: 2, from: 1 },
            SimEvent::FollowerHandleUpToDate { follower: 0 },
            SimEvent::FollowerHandleUpToDate { follower: 1 },
            // Drain the followers' UPTODATE acknowledgements.
            SimEvent::LeaderProcessAck { leader: 2, from: 0 },
            SimEvent::LeaderProcessAck { leader: 2, from: 1 },
            SimEvent::LeaderClientRequest { leader: 2 },
            SimEvent::FollowerHandleProposal { follower: 0 },
            SimEvent::FollowerHandleProposal { follower: 1 },
            SimEvent::SyncProcessorRun { node: 0 },
            SimEvent::SyncProcessorRun { node: 1 },
            SimEvent::LeaderProcessAck { leader: 2, from: 0 },
            SimEvent::LeaderProcessAck { leader: 2, from: 1 },
            SimEvent::FollowerHandleCommit { follower: 0 },
            SimEvent::FollowerHandleCommit { follower: 1 },
            SimEvent::CommitProcessorRun { node: 0 },
            SimEvent::CommitProcessorRun { node: 1 },
        ];
        for (idx, e) in steps.iter().enumerate() {
            c.step(e)
                .map_err(|cause| err(format!("step {idx} ({e:?}) failed: {cause}")))?;
        }
        let obs = c.observe();
        assert!(obs.first_error().is_none());
        for n in &obs.nodes {
            assert_eq!(n.current_epoch, 1, "server {}", n.sid);
            assert_eq!(n.log.len(), 1, "server {}", n.sid);
            assert_eq!(n.committed, 1, "server {}", n.sid);
        }
        Ok(())
    }

    /// Replays the ZK-4646 interleaving on the buggy build: the follower acknowledges
    /// NEWLEADER before its SyncRequestProcessor persisted anything.
    #[test]
    fn buggy_build_acks_newleader_before_persisting() {
        let mut c = cluster(CodeVersion::V391);
        // Seed the leader's log with one transaction so there is data to lose.
        c.nodes[2]
            .server
            .disk
            .log
            .push(remix_zab::Txn::new(1, 1, 9));
        let steps = [
            SimEvent::ElectLeader {
                leader: 2,
                quorum: vec![0, 2],
            },
            SimEvent::LeaderSyncFollower {
                leader: 2,
                follower: 0,
            },
            SimEvent::FollowerHandleSyncPackets { follower: 0 },
            SimEvent::FollowerNewLeaderUpdateEpoch { follower: 0 },
            SimEvent::FollowerNewLeaderLogRequests { follower: 0 },
            SimEvent::FollowerNewLeaderAck { follower: 0 },
            SimEvent::LeaderProcessAck { leader: 2, from: 0 },
        ];
        for e in &steps {
            c.step(e).unwrap();
        }
        let obs = c.observe();
        // The epoch is established and committed on the leader...
        assert_eq!(obs.nodes[2].committed, 1);
        // ...but the follower's disk has nothing: the data only lives in its queue.
        assert!(obs.nodes[0].log.is_empty());
        assert_eq!(c.nodes[0].server.sync_processor.queue.len(), 1);
    }

    #[test]
    fn events_that_do_not_match_the_state_are_rejected() {
        let mut c = cluster(CodeVersion::V391);
        assert!(c
            .step(&SimEvent::LeaderSyncFollower {
                leader: 2,
                follower: 0
            })
            .is_err());
        assert!(c
            .step(&SimEvent::FollowerHandleUpToDate { follower: 0 })
            .is_err());
        c.step(&SimEvent::ElectLeader {
            leader: 2,
            quorum: vec![0, 2],
        })
        .unwrap();
        assert!(c
            .step(&SimEvent::ElectLeader {
                leader: 2,
                quorum: vec![0, 2]
            })
            .is_err());
        assert!(c.step(&SimEvent::Skip).is_ok());
    }

    #[test]
    fn crash_and_restart_preserve_the_disk() {
        let mut c = cluster(CodeVersion::V391);
        c.nodes[1]
            .server
            .disk
            .log
            .push(remix_zab::Txn::new(1, 1, 1));
        c.nodes[1].server.disk.current_epoch = 1;
        c.step(&SimEvent::Crash { node: 1 }).unwrap();
        assert!(!c.observe().nodes[1].up);
        c.step(&SimEvent::Restart { node: 1 }).unwrap();
        let obs = c.observe();
        assert!(obs.nodes[1].up);
        assert_eq!(obs.nodes[1].log.len(), 1);
        assert_eq!(obs.nodes[1].current_epoch, 1);
    }
}
