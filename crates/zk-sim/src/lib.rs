//! A code-level, deterministically schedulable simulator of ZooKeeper's log-replication
//! implementation.
//!
//! This crate plays the role of the ZooKeeper Java implementation in the paper's
//! conformance-checking loop (§3.4, §3.5): it is structured like the code — a
//! [`LeaderServer`] with per-learner handlers, a
//! [`FollowerServer`] whose `Learner.syncWithLeader` loop processes
//! quorum packets, and the `SyncRequestProcessor` / `CommitProcessor` threads with their
//! queues — but every thread step is an explicit [`SimEvent`] executed
//! by the central scheduler, so the Remix coordinator can control the interleaving
//! exactly as AspectJ instrumentation plus the RMI coordinator do for the real system.
//!
//! The same [`CodeVersion`](remix_zab::CodeVersion) switches as the specification crate
//! select which historical bugs (ZK-3023, ZK-4394, ZK-4643, ZK-4646, ZK-4685, ZK-4712)
//! are present, so conformance checking can be exercised against both buggy and fixed
//! builds.

#![warn(missing_docs)]

pub mod cluster;
pub mod network;
pub mod node;
pub mod observation;

pub use cluster::{Cluster, SimError, SimEvent};
pub use network::{Network, Packet};
pub use node::{FollowerServer, LeaderServer, NodeHandle, Processor};
pub use observation::{NodeObservation, Observation};
