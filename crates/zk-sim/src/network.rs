//! The simulated network: per-pair FIFO channels of quorum packets.

use std::collections::BTreeSet;

use remix_zab::{Message, Sid};

/// A quorum packet in flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Sender.
    pub from: Sid,
    /// Receiver.
    pub to: Sid,
    /// Payload (the same message vocabulary as the specification, which is what the
    /// conformance checker compares against).
    pub msg: Message,
}

/// FIFO channels between every ordered pair of servers, with partition support.
#[derive(Debug, Clone, Default)]
pub struct Network {
    channels: Vec<Vec<Vec<Message>>>,
    partitioned: BTreeSet<(Sid, Sid)>,
}

impl Network {
    /// Creates a network for `n` servers.
    pub fn new(n: usize) -> Self {
        Network {
            channels: vec![vec![Vec::new(); n]; n],
            partitioned: BTreeSet::new(),
        }
    }

    /// Number of servers.
    pub fn n(&self) -> usize {
        self.channels.len()
    }

    /// Returns `true` if `a` and `b` are currently connected.
    pub fn connected(&self, a: Sid, b: Sid) -> bool {
        a == b || !self.partitioned.contains(&(a.min(b), a.max(b)))
    }

    /// Sends a packet; dropped when the link is partitioned.
    pub fn send(&mut self, from: Sid, to: Sid, msg: Message) {
        if from != to && self.connected(from, to) {
            self.channels[from][to].push(msg);
        }
    }

    /// Peeks the head of the `from → to` channel.
    pub fn peek(&self, from: Sid, to: Sid) -> Option<&Message> {
        self.channels[from][to].first()
    }

    /// Receives (pops) the head of the `from → to` channel.
    pub fn recv(&mut self, from: Sid, to: Sid) -> Option<Message> {
        if self.channels[from][to].is_empty() {
            None
        } else {
            Some(self.channels[from][to].remove(0))
        }
    }

    /// Breaks the link between two servers, dropping in-flight packets.
    pub fn partition(&mut self, a: Sid, b: Sid) {
        self.partitioned.insert((a.min(b), a.max(b)));
        self.channels[a][b].clear();
        self.channels[b][a].clear();
    }

    /// Heals the link between two servers.
    pub fn heal(&mut self, a: Sid, b: Sid) {
        self.partitioned.remove(&(a.min(b), a.max(b)));
    }

    /// Drops every channel to and from a server (connection reset on crash).
    pub fn disconnect(&mut self, node: Sid) {
        for j in 0..self.n() {
            self.channels[node][j].clear();
            self.channels[j][node].clear();
        }
    }

    /// Total number of packets in flight.
    pub fn in_flight(&self) -> usize {
        self.channels.iter().flatten().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_zab::Zxid;

    #[test]
    fn channels_are_fifo_per_pair() {
        let mut n = Network::new(3);
        n.send(0, 1, Message::UpToDate { zxid: Zxid::ZERO });
        n.send(
            0,
            1,
            Message::Commit {
                zxid: Zxid::new(1, 1),
            },
        );
        assert_eq!(n.in_flight(), 2);
        assert_eq!(n.recv(0, 1).unwrap().kind(), "UPTODATE");
        assert_eq!(n.recv(0, 1).unwrap().kind(), "COMMIT");
        assert!(n.recv(0, 1).is_none());
    }

    #[test]
    fn partitions_drop_packets_and_block_sends() {
        let mut n = Network::new(3);
        n.send(0, 2, Message::UpToDate { zxid: Zxid::ZERO });
        n.partition(0, 2);
        assert_eq!(n.in_flight(), 0);
        n.send(0, 2, Message::UpToDate { zxid: Zxid::ZERO });
        assert_eq!(n.in_flight(), 0);
        assert!(!n.connected(0, 2));
        n.heal(0, 2);
        assert!(n.connected(0, 2));
        n.send(0, 2, Message::UpToDate { zxid: Zxid::ZERO });
        assert_eq!(n.in_flight(), 1);
    }

    #[test]
    fn disconnect_clears_both_directions() {
        let mut n = Network::new(2);
        n.send(0, 1, Message::UpToDate { zxid: Zxid::ZERO });
        n.send(1, 0, Message::UpToDate { zxid: Zxid::ZERO });
        n.disconnect(1);
        assert_eq!(n.in_flight(), 0);
    }
}
