//! Server processes: the leader, the follower (learner) and the request processors.
//!
//! The structure mirrors the ZooKeeper classes the paper instruments:
//!
//! * [`FollowerServer`] — the `Learner.syncWithLeader` / `FollowerZooKeeperServer` path:
//!   a packet-handling loop plus the `SyncRequestProcessor` and `CommitProcessor`
//!   queues ([`Processor`]);
//! * [`LeaderServer`] — the `Leader` / `LearnerHandler` path: per-learner sync decisions,
//!   acknowledgement bookkeeping and commit fan-out.
//!
//! Each public method corresponds to one code-level action the coordinator can schedule.

use std::collections::{BTreeMap, BTreeSet};

use remix_zab::{BugFlags, Message, Sid, SyncMode, Txn, Zxid};

use crate::network::Network;

/// A single-threaded request processor with an input queue (the structure of
/// `SyncRequestProcessor` and `CommitProcessor`).
#[derive(Debug, Clone)]
pub struct Processor<T> {
    /// The queue of requests handed to this processor by other threads.
    pub queue: Vec<T>,
}

impl<T> Default for Processor<T> {
    fn default() -> Self {
        Processor { queue: Vec::new() }
    }
}

impl<T> Processor<T> {
    /// Adds a request to the processor's queue.
    pub fn offer(&mut self, item: T) {
        self.queue.push(item);
    }

    /// Takes the next request, if any.
    pub fn poll(&mut self) -> Option<T> {
        if self.queue.is_empty() {
            None
        } else {
            Some(self.queue.remove(0))
        }
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Clears the queue (processor shutdown).
    pub fn clear(&mut self) {
        self.queue.clear();
    }
}

/// Run state of a simulated server process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Running leader election (or idle).
    Looking,
    /// Acting as a follower.
    Following,
    /// Acting as a leader.
    Leading,
    /// Crashed.
    Down,
}

/// Phase of the follower's recovery handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPhase {
    /// Not yet synchronizing.
    Idle,
    /// Between the sync payload and UPTODATE.
    Synchronizing,
    /// Serving (broadcast phase).
    Broadcast,
}

/// The durable state every server keeps on disk.
#[derive(Debug, Clone, Default)]
pub struct Disk {
    /// `currentEpoch` file.
    pub current_epoch: u32,
    /// `acceptedEpoch` file.
    pub accepted_epoch: u32,
    /// The transaction log.
    pub log: Vec<Txn>,
    /// Number of committed transactions (recovered committed prefix).
    pub committed: usize,
}

impl Disk {
    /// The last zxid in the log.
    pub fn last_zxid(&self) -> Zxid {
        self.log.last().map(|t| t.zxid).unwrap_or(Zxid::ZERO)
    }
}

/// A follower process (`Learner` + `FollowerZooKeeperServer`).
#[derive(Debug, Clone)]
pub struct FollowerServer {
    /// This server's id.
    pub sid: Sid,
    /// Durable state.
    pub disk: Disk,
    /// Run state.
    pub run_state: RunState,
    /// Recovery phase.
    pub phase: SyncPhase,
    /// The leader this follower is connected to.
    pub leader: Option<Sid>,
    /// Packets received during synchronization and not yet logged
    /// (`packetsNotCommitted`).
    pub packets_not_committed: Vec<Txn>,
    /// Commits received during synchronization (`packetsCommitted`).
    pub packets_committed: Vec<Zxid>,
    /// The `SyncRequestProcessor` queue.
    pub sync_processor: Processor<Txn>,
    /// The `CommitProcessor` queue.
    pub commit_processor: Processor<Zxid>,
    /// Error raised by the process (exception / failed assertion), if any.
    pub error: Option<String>,
}

impl FollowerServer {
    /// A freshly booted server.
    pub fn new(sid: Sid) -> Self {
        FollowerServer {
            sid,
            disk: Disk::default(),
            run_state: RunState::Looking,
            phase: SyncPhase::Idle,
            leader: None,
            packets_not_committed: Vec::new(),
            packets_committed: Vec::new(),
            sync_processor: Processor::default(),
            commit_processor: Processor::default(),
            error: None,
        }
    }

    fn raise(&mut self, error: impl Into<String>) {
        if self.error.is_none() {
            self.error = Some(error.into());
        }
    }

    /// Starts following `leader` in epoch `epoch` (the end of election + discovery).
    pub fn start_following(&mut self, leader: Sid, epoch: u32) {
        self.run_state = RunState::Following;
        self.phase = SyncPhase::Synchronizing;
        self.leader = Some(leader);
        self.disk.accepted_epoch = epoch;
    }

    /// Handles the synchronization payload (DIFF / TRUNC / SNAP).
    pub fn handle_sync_packets(
        &mut self,
        mode: SyncMode,
        txns: Vec<Txn>,
        committed_upto: Zxid,
        trunc_to: Zxid,
    ) {
        match mode {
            SyncMode::Diff => {
                for t in &self.disk.log[self.disk.committed..] {
                    if t.zxid <= committed_upto {
                        self.packets_committed.push(t.zxid);
                    }
                }
                for t in txns {
                    self.packets_not_committed.push(t);
                    if t.zxid <= committed_upto {
                        self.packets_committed.push(t.zxid);
                    }
                }
            }
            SyncMode::Trunc => {
                self.disk.log.retain(|t| t.zxid <= trunc_to);
                self.disk.committed = self.disk.committed.min(self.disk.log.len());
            }
            SyncMode::Snap => {
                self.disk.log = txns;
                self.disk.committed = self
                    .disk
                    .log
                    .iter()
                    .filter(|t| t.zxid <= committed_upto)
                    .count();
                self.packets_not_committed.clear();
                self.packets_committed.clear();
            }
        }
    }

    /// `Learner.syncWithLeader`, NEWLEADER case, step ①: `self.setCurrentEpoch(newEpoch)`.
    pub fn newleader_update_epoch(&mut self, epoch: u32) {
        self.disk.current_epoch = epoch;
    }

    /// `Learner.syncWithLeader`, NEWLEADER case, step ②: hand every pending packet to the
    /// `SyncRequestProcessor` (or log synchronously under the final fix).
    pub fn newleader_log_requests(&mut self, bugs: &BugFlags) {
        let pending: Vec<Txn> = self.packets_not_committed.drain(..).collect();
        if bugs.synchronous_sync_logging {
            self.disk.log.extend(pending);
        } else {
            for p in pending {
                self.sync_processor.offer(p);
            }
        }
    }

    /// `Learner.syncWithLeader`, NEWLEADER case, step ③: write the ACK packet.
    pub fn newleader_write_ack(&mut self, zxid: Zxid, network: &mut Network) {
        if let Some(leader) = self.leader {
            network.send(self.sid, leader, Message::Ack { zxid });
        }
    }

    /// One iteration of the `SyncRequestProcessor` thread: append a queued request to the
    /// log and acknowledge it.
    pub fn sync_processor_run_once(&mut self, network: &mut Network) -> bool {
        let Some(txn) = self.sync_processor.poll() else {
            return false;
        };
        self.disk.log.push(txn);
        if self.run_state == RunState::Following {
            if let Some(leader) = self.leader {
                network.send(self.sid, leader, Message::Ack { zxid: txn.zxid });
            }
        }
        true
    }

    /// One iteration of the `CommitProcessor` thread: deliver the next queued commit.
    pub fn commit_processor_run_once(&mut self, bugs: &BugFlags) -> bool {
        if self.commit_processor.is_empty() {
            return false;
        }
        let zxid = self.commit_processor.queue[0];
        let already = self.disk.log[..self.disk.committed]
            .iter()
            .any(|t| t.zxid == zxid);
        let is_next = self.disk.committed < self.disk.log.len()
            && self.disk.log[self.disk.committed].zxid == zxid;
        if !already && !is_next && !bugs.commit_requires_logged_txn {
            // Fixed implementation: wait for the logging thread.
            return false;
        }
        self.commit_processor.poll();
        if already {
            // Duplicate: ignore.
        } else if is_next {
            self.disk.committed += 1;
        } else {
            self.raise(format!(
                "ZK-3023: committing {zxid} which is not logged yet"
            ));
        }
        true
    }

    /// Handles a COMMIT received while still synchronizing (the ZK-4394 code path).
    pub fn handle_commit_in_sync(&mut self, zxid: Zxid, bugs: &BugFlags, masked: bool) {
        if let Some(pos) = self
            .packets_not_committed
            .iter()
            .position(|t| t.zxid == zxid)
        {
            if pos == 0 {
                self.packets_committed.push(zxid);
            } else {
                self.raise("out-of-order COMMIT during sync");
            }
        } else if self.disk.log.iter().any(|t| t.zxid == zxid)
            || self.sync_processor.queue.iter().any(|t| t.zxid == zxid)
        {
            self.packets_committed.push(zxid);
        } else if bugs.commit_in_sync_nullpointer && !masked {
            self.raise("ZK-4394: NullPointerException in Learner.syncWithLeader");
        }
    }

    /// Handles UPTODATE: queue the deferred commits, acknowledge, start serving.
    pub fn handle_uptodate(&mut self, zxid: Zxid, bugs: &BugFlags, network: &mut Network) {
        if bugs.synchronous_sync_logging {
            let pending: Vec<Txn> = self.packets_not_committed.drain(..).collect();
            self.disk.log.extend(pending);
            let committed: BTreeSet<Zxid> = self.packets_committed.drain(..).collect();
            let mut committed_len = self.disk.committed;
            for (idx, t) in self.disk.log.iter().enumerate() {
                if t.zxid <= zxid || committed.contains(&t.zxid) {
                    committed_len = committed_len.max(idx + 1);
                }
            }
            self.disk.committed = committed_len.min(self.disk.log.len());
        } else {
            let pending: Vec<Txn> = self.packets_not_committed.drain(..).collect();
            for p in pending {
                self.sync_processor.offer(p);
            }
            let deferred: Vec<Zxid> = self.packets_committed.drain(..).collect();
            let already: BTreeSet<Zxid> = self.disk.log[..self.disk.committed]
                .iter()
                .map(|t| t.zxid)
                .collect();
            let mut to_commit: Vec<Zxid> = Vec::new();
            for t in self.disk.log.iter().chain(self.sync_processor.queue.iter()) {
                if t.zxid <= zxid && !already.contains(&t.zxid) && !to_commit.contains(&t.zxid) {
                    to_commit.push(t.zxid);
                }
            }
            for z in deferred {
                if !already.contains(&z) && !to_commit.contains(&z) {
                    to_commit.push(z);
                }
            }
            to_commit.sort();
            for z in to_commit {
                self.commit_processor.offer(z);
            }
        }
        self.phase = SyncPhase::Broadcast;
        if let Some(leader) = self.leader {
            network.send(self.sid, leader, Message::Ack { zxid });
        }
    }

    /// Handles a broadcast PROPOSAL: queue it for the logging thread.
    pub fn handle_proposal(&mut self, txn: Txn) {
        if txn.zxid.epoch != self.disk.current_epoch {
            self.raise("PROPOSAL epoch mismatch");
            return;
        }
        if self
            .disk
            .log
            .last()
            .is_some_and(|last| txn.zxid <= last.zxid)
            && !self.sync_processor.queue.iter().any(|t| t.zxid == txn.zxid)
        {
            self.raise("PROPOSAL zxid not beyond the log");
            return;
        }
        self.sync_processor.offer(txn);
    }

    /// Handles a broadcast COMMIT: queue it for the commit thread.
    pub fn handle_commit(&mut self, zxid: Zxid) {
        self.commit_processor.offer(zxid);
    }

    /// Shuts the follower down back to leader election (`Learner.shutdown`).  Whether the
    /// `SyncRequestProcessor` queue is drained is exactly the ZK-4712 switch.
    pub fn shutdown(&mut self, bugs: &BugFlags) {
        self.run_state = RunState::Looking;
        self.phase = SyncPhase::Idle;
        self.leader = None;
        self.packets_not_committed.clear();
        self.packets_committed.clear();
        self.commit_processor.clear();
        if !bugs.shutdown_keeps_request_queue {
            self.sync_processor.clear();
        }
    }

    /// Crashes the process: every volatile structure is lost.
    pub fn crash(&mut self) {
        self.run_state = RunState::Down;
        self.phase = SyncPhase::Idle;
        self.leader = None;
        self.packets_not_committed.clear();
        self.packets_committed.clear();
        self.sync_processor.clear();
        self.commit_processor.clear();
        self.error = None;
    }

    /// Restarts a crashed process, recovering the durable state.
    pub fn restart(&mut self) {
        self.disk.committed = self.disk.committed.min(self.disk.log.len());
        self.run_state = RunState::Looking;
    }
}

/// The leader process (`Leader` + `LearnerHandler`s).
#[derive(Debug, Clone)]
pub struct LeaderServer {
    /// This server's id.
    pub sid: Sid,
    /// The epoch this leader leads.
    pub epoch: u32,
    /// Learners that completed discovery, with their reported last zxid.
    pub learners: BTreeMap<Sid, Zxid>,
    /// Learners to which the sync payload and NEWLEADER have been sent.
    pub synced: BTreeSet<Sid>,
    /// Learners that acknowledged NEWLEADER.
    pub newleader_acks: BTreeSet<Sid>,
    /// Whether the epoch has been established (quorum of NEWLEADER acks).
    pub established: bool,
    /// Outstanding proposals and their acknowledgers.
    pub outstanding: BTreeMap<Zxid, BTreeSet<Sid>>,
    /// Error raised by the leader, if any.
    pub error: Option<String>,
}

impl LeaderServer {
    /// Creates a leader for an epoch.
    pub fn new(sid: Sid, epoch: u32) -> Self {
        LeaderServer {
            sid,
            epoch,
            learners: BTreeMap::new(),
            synced: BTreeSet::new(),
            newleader_acks: BTreeSet::new(),
            established: false,
            outstanding: BTreeMap::new(),
            error: None,
        }
    }

    fn raise(&mut self, error: impl Into<String>) {
        if self.error.is_none() {
            self.error = Some(error.into());
        }
    }

    /// Registers a learner after discovery.
    pub fn register_learner(&mut self, sid: Sid, last_zxid: Zxid) {
        self.learners.insert(sid, last_zxid);
    }

    /// `LearnerHandler.syncFollower`: decide DIFF / TRUNC / SNAP, queue the payload and
    /// NEWLEADER on the wire.
    pub fn sync_follower(&mut self, follower: Sid, disk: &Disk, network: &mut Network) {
        let follower_zxid = *self.learners.get(&follower).unwrap_or(&Zxid::ZERO);
        let leader_last = disk.last_zxid();
        let committed_upto = if disk.committed > 0 {
            disk.log[disk.committed - 1].zxid
        } else {
            Zxid::ZERO
        };
        let known = follower_zxid == Zxid::ZERO || disk.log.iter().any(|t| t.zxid == follower_zxid);
        let payload = if follower_zxid == leader_last {
            Message::SyncPackets {
                mode: SyncMode::Diff,
                txns: vec![],
                committed_upto,
                trunc_to: Zxid::ZERO,
            }
        } else if follower_zxid > leader_last {
            Message::SyncPackets {
                mode: SyncMode::Trunc,
                txns: vec![],
                committed_upto,
                trunc_to: leader_last,
            }
        } else if known {
            let txns = disk
                .log
                .iter()
                .filter(|t| t.zxid > follower_zxid)
                .copied()
                .collect();
            Message::SyncPackets {
                mode: SyncMode::Diff,
                txns,
                committed_upto,
                trunc_to: Zxid::ZERO,
            }
        } else {
            Message::SyncPackets {
                mode: SyncMode::Snap,
                txns: disk.log.clone(),
                committed_upto,
                trunc_to: Zxid::ZERO,
            }
        };
        self.synced.insert(follower);
        network.send(self.sid, follower, payload);
        network.send(
            self.sid,
            follower,
            Message::NewLeader {
                epoch: self.epoch,
                zxid: leader_last,
            },
        );
    }

    /// `Leader.processAck` while still waiting for the quorum of NEWLEADER acks.
    ///
    /// Returns `true` when the quorum was just reached (the caller then establishes the
    /// epoch, commits the initial history and releases UPTODATE).
    pub fn process_ack_during_sync(
        &mut self,
        from: Sid,
        zxid: Zxid,
        disk: &Disk,
        bugs: &BugFlags,
        quorum: usize,
    ) -> bool {
        if zxid == disk.last_zxid() {
            self.newleader_acks.insert(from);
            if !self.established && self.newleader_acks.len() + 1 >= quorum {
                return true;
            }
        } else if bugs.leader_rejects_early_proposal_ack {
            self.raise(format!(
                "ZK-4685: unexpected ACK {zxid} while waiting for NEWLEADER acks"
            ));
        } else {
            self.outstanding.entry(zxid).or_default().insert(from);
        }
        false
    }

    /// Establishes the epoch: commit the initial history and release COMMITs + UPTODATE.
    pub fn establish(&mut self, disk: &mut Disk, network: &mut Network) {
        let newly_committed: Vec<Zxid> =
            disk.log[disk.committed..].iter().map(|t| t.zxid).collect();
        disk.current_epoch = self.epoch;
        disk.committed = disk.log.len();
        self.established = true;
        let last = disk.last_zxid();
        for f in self.newleader_acks.clone() {
            for z in &newly_committed {
                network.send(self.sid, f, Message::Commit { zxid: *z });
            }
            network.send(self.sid, f, Message::UpToDate { zxid: last });
        }
    }

    /// `Leader.propose`: create a transaction from a client request and fan it out.
    pub fn propose(&mut self, value: u32, disk: &mut Disk, network: &mut Network) -> Txn {
        let counter = disk
            .log
            .iter()
            .filter(|t| t.zxid.epoch == self.epoch)
            .map(|t| t.zxid.counter)
            .max()
            .unwrap_or(0)
            + 1;
        let txn = Txn::new(self.epoch, counter, value);
        disk.log.push(txn);
        let mut ackers = BTreeSet::new();
        ackers.insert(self.sid);
        self.outstanding.insert(txn.zxid, ackers);
        for f in self.newleader_acks.clone() {
            network.send(self.sid, f, Message::Proposal { txn });
        }
        txn
    }

    /// `Leader.processAck` in the broadcast phase: count the ack, commit ready proposals
    /// in order, and bring late-synced followers up to date.
    pub fn process_ack_in_broadcast(
        &mut self,
        from: Sid,
        zxid: Zxid,
        disk: &mut Disk,
        network: &mut Network,
        quorum: usize,
    ) {
        if let Some(ackers) = self.outstanding.get_mut(&zxid) {
            ackers.insert(from);
            // Commit in log order.
            loop {
                if disk.committed >= disk.log.len() {
                    break;
                }
                let next = disk.log[disk.committed].zxid;
                let Some(a) = self.outstanding.get(&next) else {
                    break;
                };
                if a.len() < quorum {
                    break;
                }
                disk.committed += 1;
                self.outstanding.remove(&next);
                for f in self.newleader_acks.clone() {
                    network.send(self.sid, f, Message::Commit { zxid: next });
                }
            }
        } else if !self.newleader_acks.contains(&from) {
            // Late NEWLEADER ack: replay the missed proposals and commits, then UPTODATE.
            let committed_upto = if disk.committed > 0 {
                disk.log[disk.committed - 1].zxid
            } else {
                Zxid::ZERO
            };
            let missed: Vec<Txn> = disk.log.iter().filter(|t| t.zxid > zxid).copied().collect();
            for t in missed {
                network.send(self.sid, from, Message::Proposal { txn: t });
                if t.zxid <= committed_upto {
                    network.send(self.sid, from, Message::Commit { zxid: t.zxid });
                }
            }
            self.newleader_acks.insert(from);
            network.send(
                self.sid,
                from,
                Message::UpToDate {
                    zxid: disk.last_zxid(),
                },
            );
        }
    }
}

/// A server process: either a follower/looking node or a leader (which also keeps the
/// follower structure for its own disk and processors).
#[derive(Debug, Clone)]
pub struct NodeHandle {
    /// The follower-side structure (always present; owns the disk).
    pub server: FollowerServer,
    /// The leader-side structure, when this node currently leads.
    pub leader: Option<LeaderServer>,
}

impl NodeHandle {
    /// A freshly booted node.
    pub fn new(sid: Sid) -> Self {
        NodeHandle {
            server: FollowerServer::new(sid),
            leader: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_zab::CodeVersion;

    #[test]
    fn processor_is_fifo() {
        let mut p = Processor::default();
        p.offer(1);
        p.offer(2);
        assert_eq!(p.poll(), Some(1));
        assert_eq!(p.poll(), Some(2));
        assert!(p.poll().is_none());
        assert!(p.is_empty());
    }

    #[test]
    fn follower_newleader_steps_match_the_code_structure() {
        let bugs = CodeVersion::V391.bugs();
        let mut net = Network::new(3);
        let mut f = FollowerServer::new(0);
        f.start_following(2, 1);
        f.handle_sync_packets(
            SyncMode::Diff,
            vec![Txn::new(1, 1, 1)],
            Zxid::new(1, 1),
            Zxid::ZERO,
        );
        assert_eq!(f.packets_not_committed.len(), 1);
        f.newleader_update_epoch(1);
        assert_eq!(f.disk.current_epoch, 1);
        f.newleader_log_requests(&bugs);
        assert_eq!(
            f.sync_processor.queue.len(),
            1,
            "asynchronous logging queues the packet"
        );
        assert!(f.disk.log.is_empty());
        f.newleader_write_ack(Zxid::new(1, 1), &mut net);
        assert_eq!(net.peek(0, 2).unwrap().kind(), "ACK");
        assert!(f.sync_processor_run_once(&mut net));
        assert_eq!(f.disk.log.len(), 1);
    }

    #[test]
    fn final_fix_logs_synchronously() {
        let bugs = CodeVersion::FinalFix.bugs();
        let mut f = FollowerServer::new(0);
        f.start_following(2, 1);
        f.packets_not_committed.push(Txn::new(1, 1, 1));
        f.newleader_log_requests(&bugs);
        assert_eq!(f.disk.log.len(), 1);
        assert!(f.sync_processor.is_empty());
    }

    #[test]
    fn commit_processor_error_path_matches_zk3023() {
        let buggy = CodeVersion::V391.bugs();
        let fixed = CodeVersion::FinalFix.bugs();
        let mut f = FollowerServer::new(0);
        f.commit_processor.offer(Zxid::new(1, 1));
        let mut g = f.clone();
        assert!(f.commit_processor_run_once(&buggy));
        assert!(f.error.as_deref().unwrap_or("").contains("ZK-3023"));
        assert!(
            !g.commit_processor_run_once(&fixed),
            "fixed build waits for the log"
        );
        assert!(g.error.is_none());
    }

    #[test]
    fn shutdown_queue_behaviour_matches_zk4712() {
        let buggy = CodeVersion::V391.bugs();
        let fixed = CodeVersion::MSpec3Plus.bugs();
        let mut f = FollowerServer::new(0);
        f.sync_processor.offer(Txn::new(1, 1, 1));
        let mut g = f.clone();
        f.shutdown(&buggy);
        assert_eq!(f.sync_processor.queue.len(), 1);
        g.shutdown(&fixed);
        assert!(g.sync_processor.is_empty());
    }

    #[test]
    fn leader_sync_and_establishment_flow() {
        let bugs = CodeVersion::V391.bugs();
        let mut net = Network::new(3);
        let mut disk = Disk {
            log: vec![Txn::new(1, 1, 1)],
            committed: 0,
            ..Disk::default()
        };
        let mut l = LeaderServer::new(2, 2);
        l.register_learner(0, Zxid::ZERO);
        l.sync_follower(0, &disk, &mut net);
        assert_eq!(net.peek(2, 0).unwrap().kind(), "SYNCPACKETS");
        // A quorum-completing NEWLEADER ack triggers establishment.
        let ready = l.process_ack_during_sync(0, Zxid::new(1, 1), &disk, &bugs, 2);
        assert!(ready);
        l.establish(&mut disk, &mut net);
        assert!(l.established);
        assert_eq!(disk.committed, 1);
        assert_eq!(disk.current_epoch, 2);
        // The uncommitted tail is committed and released before UPTODATE (ZK-4394 fuel).
        let kinds: Vec<&str> = std::iter::from_fn(|| net.recv(2, 0))
            .map(|m| m.kind())
            .collect::<Vec<_>>()[2..]
            .to_vec();
        assert_eq!(kinds, vec!["COMMIT", "UPTODATE"]);
    }

    #[test]
    fn early_proposal_ack_raises_zk4685_on_buggy_builds() {
        let buggy = CodeVersion::V391.bugs();
        let tolerant = CodeVersion::FinalFix.bugs();
        let disk = Disk {
            log: vec![Txn::new(1, 1, 1)],
            committed: 1,
            ..Disk::default()
        };
        let mut l = LeaderServer::new(2, 2);
        l.process_ack_during_sync(0, Zxid::new(1, 9), &disk, &buggy, 2);
        assert!(l.error.as_deref().unwrap_or("").contains("ZK-4685"));
        let mut l = LeaderServer::new(2, 2);
        l.process_ack_during_sync(0, Zxid::new(1, 9), &disk, &tolerant, 2);
        assert!(l.error.is_none());
        assert!(l.outstanding.contains_key(&Zxid::new(1, 9)));
    }

    #[test]
    fn broadcast_commit_requires_a_quorum() {
        let mut net = Network::new(3);
        let mut disk = Disk {
            current_epoch: 2,
            ..Default::default()
        };
        let mut l = LeaderServer::new(2, 2);
        l.newleader_acks.insert(0);
        l.established = true;
        let txn = l.propose(7, &mut disk, &mut net);
        assert_eq!(disk.log.len(), 1);
        assert_eq!(net.peek(2, 0).unwrap().kind(), "PROPOSAL");
        l.process_ack_in_broadcast(0, txn.zxid, &mut disk, &mut net, 2);
        assert_eq!(disk.committed, 1);
    }
}
