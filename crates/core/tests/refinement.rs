//! Cross-granularity refinement checking, end to end: the coarse compositions
//! simulate the finer ones, a deliberately broken coarse action is caught with a
//! shrunk fine-trace witness, and the differential version matrix localizes every
//! injected bug to the module that carries it.
//!
//! These are expensive dual state-space explorations; like `guided_explore_zab.rs`
//! they are release-gated.

use std::sync::Arc;
use std::time::Duration;

use remix_checker::{check_refinement, replay_labels, DivergenceKind, RefineOptions};
use remix_core::Verifier;
use remix_spec::{CompositionPlan, Granularity};
use remix_zab::modules::{BROADCAST, DISCOVERY, ELECTION, SYNCHRONIZATION};
use remix_zab::{coarse_vs_baseline, ClusterConfig, CodeVersion, ServerState, SpecPreset};

fn options() -> RefineOptions {
    RefineOptions::default().with_time_budget(Duration::from_secs(120))
}

/// The FineAtomic counterpart of the system specification: the NEWLEADER handshake
/// split into epoch-update and logging steps, everything else at baseline.
fn fine_atomic_plan() -> CompositionPlan {
    CompositionPlan::new("fSpec-atom")
        .with(ELECTION, Granularity::Baseline)
        .with(DISCOVERY, Granularity::Baseline)
        .with(SYNCHRONIZATION, Granularity::FineAtomic)
        .with(BROADCAST, Granularity::Baseline)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive dual exploration; use --release")]
fn coarse_election_refines_baseline_conclusively() {
    // The tentpole acceptance check: mSpec-1 (the Figure 5b coarsening) simulates
    // SysSpec under the election/discovery projection, conclusively (both sides
    // explored to exhaustion), in full simulation mode — for a buggy and a fixed
    // version (the election coarsening is orthogonal to the sync-level bug flags).
    for version in [CodeVersion::V391, CodeVersion::FinalFix] {
        let config = ClusterConfig {
            max_transactions: 1,
            max_crashes: 0,
            ..ClusterConfig::small(version)
        };
        let run = Verifier::new(config)
            .check_refinement(SpecPreset::SysSpec, SpecPreset::MSpec1, &options())
            .expect("presets form a refinement pair");
        assert_eq!(run.refines(), Some(true), "{version:?}: {}", run.outcome);
        assert!(run.outcome.conclusive(), "{version:?} must be conclusive");
        assert!(run.outcome.stats.fine_states > run.outcome.stats.coarse_states);
        assert_eq!(
            run.outcome.stats.fine_projections, run.outcome.stats.coarse_projections,
            "the stable projected state spaces coincide exactly"
        );
        let row = run.row();
        assert!(row.verdict == "refines" && row.conclusive);
        assert!(row.to_json().contains("\"verdict\":\"refines\""));
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive dual exploration; use --release")]
fn coarse_election_under_crashes_diverges_until_fault_completed() {
    // Under a crash budget the baseline election can be interrupted mid-discovery,
    // leaving followers durably joined to an epoch whose leader never committed it.
    // The paper-faithful atomic coarsening (the preset) admits no such round: the
    // checker proves the under-approximation with a concrete witness that localizes
    // to the coarsened modules.  Swapping in the fault-complete coarse Election
    // module restores refinement (bounded: the fine side is too large to exhaust).
    let config = ClusterConfig {
        max_transactions: 0,
        max_crashes: 1,
        max_epoch: 2,
        ..ClusterConfig::small(CodeVersion::V391)
    };
    let options = RefineOptions::default()
        .with_time_budget(Duration::from_secs(150))
        .with_max_states(900_000);

    // (a) The stock preset under-approximates: a crash-interrupted round diverges.
    let run = Verifier::new(config)
        .check_refinement(SpecPreset::SysSpec, SpecPreset::MSpec1, &options)
        .expect("presets form a refinement pair");
    let divergence = run.outcome.divergence.as_ref().expect("must diverge");
    assert_eq!(divergence.kind, DivergenceKind::MissingInCoarse);
    let fine = SpecPreset::SysSpec.build(&config);
    let coarse = SpecPreset::MSpec1.build(&config);
    let culprits = run.culprit_modules(&fine, &coarse);
    assert!(
        culprits.contains(&ELECTION) || culprits.contains(&DISCOVERY),
        "the witness's fine-only actions are the interrupted election round: {culprits:?}"
    );
    assert!(
        divergence
            .witness
            .action_labels()
            .iter()
            .any(|l| l.starts_with("NodeCrash")),
        "the crash is load-bearing: {:?}",
        divergence.witness.action_labels()
    );

    // (b) The fault-complete module closes the witnessed gap: the same check either
    // refines within the bounds, or — in the spirit of §4.1's discrepancy-driven spec
    // refinement — moves on to a *different*, deeper fault-interleaving gap.  Either
    // way the interrupted-round interaction of (a) is now admitted by the coarse side.
    let mut completed = SpecPreset::MSpec1.build(&config);
    let cfg = std::sync::Arc::new(config);
    for module in &mut completed.modules {
        if module.module == ELECTION {
            *module = remix_zab::actions::coarse::election_module_fault_complete(&cfg);
        }
    }
    let projection = coarse_vs_baseline(&config);
    let outcome = check_refinement(&fine, &completed, &projection, &options);
    assert!(
        outcome.stats.coarse_complete,
        "the coarse side must be exhausted for the verdict to mean anything"
    );
    match &outcome.divergence {
        None => {}
        Some(next_gap) => assert_ne!(
            next_gap.projection, divergence.projection,
            "the interrupted-round gap itself must be closed; a remaining divergence \
             must be a different missing interaction"
        ),
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive dual exploration; use --release")]
fn broken_coarse_action_yields_a_shrunk_fine_witness() {
    // Sabotage the coarse ElectionAndDiscovery action: "forget" that discovery
    // commits the new leader's currentEpoch.  The refinement checker must return a
    // concrete, ddmin-shrunk fine trace whose projection the broken coarse
    // composition cannot reach.
    let config = ClusterConfig {
        max_transactions: 0,
        max_crashes: 0,
        ..ClusterConfig::small(CodeVersion::V391)
    };
    let fine = SpecPreset::SysSpec.build(&config);
    let mut coarse = SpecPreset::MSpec1.build(&config);
    for module in &mut coarse.modules {
        for action in &mut module.actions {
            if action.name != "ElectionAndDiscovery" {
                continue;
            }
            let original = Arc::clone(&action.successors);
            action.successors = Arc::new(move |s: &remix_zab::ZabState| {
                let mut instances = original(s);
                for inst in &mut instances {
                    for (i, sv) in inst.next.servers.iter_mut().enumerate() {
                        if sv.state == ServerState::Leading
                            && s.servers[i].state == ServerState::Looking
                        {
                            // The bug under test: the epoch commit is dropped.
                            sv.current_epoch = s.servers[i].current_epoch;
                        }
                    }
                }
                instances
            });
        }
    }
    let projection = coarse_vs_baseline(&config);
    let outcome = check_refinement(&fine, &coarse, &projection, &options());

    let divergence = outcome.divergence.expect("the sabotage must be caught");
    assert_eq!(divergence.kind, DivergenceKind::MissingInCoarse);
    assert_eq!(divergence.witness_spec, "SysSpec");
    assert!(
        divergence.witness.depth() <= divergence.original_depth,
        "the witness is never longer than the raw trace"
    );
    assert!(divergence.witness.depth() > 0);
    // The shrunk witness is a legal fine execution...
    let labels: Vec<String> = divergence
        .witness
        .action_labels()
        .iter()
        .map(|l| l.to_string())
        .collect();
    let replayed = replay_labels(&fine, &fine.init[0], &labels).expect("witness replays");
    // ...that still reaches a stable projection the broken coarse spec is missing:
    // its final state has a committed leader epoch the sabotage can never produce.
    let last = replayed.last_state().expect("non-empty");
    assert!(projection.is_stable(last));
    assert!(
        last.servers
            .iter()
            .any(|sv| sv.state == ServerState::Leading && sv.current_epoch > 0),
        "the distinguishing effect is the committed leader epoch"
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive dual exploration; use --release")]
fn compose_checked_makes_interaction_preserved_a_checked_property() {
    let config = ClusterConfig {
        max_transactions: 1,
        max_crashes: 0,
        ..ClusterConfig::small(CodeVersion::V391)
    };
    let composer = remix_core::Composer::new(config);
    let composed = composer
        .compose_checked(&SpecPreset::MSpec1.plan(), &options())
        .expect("composes");
    let refinement = composed.refinement.as_ref().expect("semantic check ran");
    assert_eq!(refinement.refines(), Some(true));
    assert!(composed.interaction_preserved());

    // A composition with nothing coarsened skips the semantic check.
    let baseline = composer
        .compose_checked(&SpecPreset::SysSpec.plan(), &options())
        .expect("composes");
    assert!(baseline.refinement.is_none());
    assert!(baseline.interaction_preserved());
}

/// One row of the differential version matrix: refinement of the fine-grained
/// (concurrency) composition against the baseline, under one code version.
fn version_row(version: CodeVersion) -> (remix_core::RefinementRun, Vec<&'static str>) {
    let config = ClusterConfig {
        max_transactions: 1,
        max_crashes: 0,
        ..ClusterConfig::small(version)
    };
    let verifier = Verifier::new(config);
    let run = verifier
        .check_refinement(SpecPreset::MSpec4, SpecPreset::SysSpec, &options())
        .expect("presets form a refinement pair");
    let fine = SpecPreset::MSpec4.build(&config);
    let coarse = SpecPreset::SysSpec.build(&config);
    let culprits = run
        .culprit_modules(&fine, &coarse)
        .into_iter()
        .map(|m| m.name())
        .collect();
    (run, culprits)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive dual exploration; use --release")]
fn version_matrix_localizes_every_injected_bug_to_its_module() {
    // Differential version matrix, fine-grained concurrency vs baseline: every buggy
    // version exposes thread-level behaviour the baseline cannot match — e.g. the
    // ZK-3023 commit-before-log race — and the divergence witness localizes to the
    // Synchronization module that carries the injected bug.
    for version in [
        CodeVersion::V370,
        CodeVersion::V391,
        CodeVersion::MSpec3Plus,
        CodeVersion::Pr1848,
        CodeVersion::Pr1930,
        CodeVersion::Pr1993,
        CodeVersion::Pr2111,
    ] {
        let (run, culprits) = version_row(version);
        let divergence = run
            .outcome
            .divergence
            .as_ref()
            .unwrap_or_else(|| panic!("{version:?} must diverge: {}", run.outcome));
        assert_eq!(
            divergence.kind,
            DivergenceKind::MissingInCoarse,
            "{version:?}: the fine composition has behaviours the baseline lacks"
        );
        assert_eq!(
            culprits,
            vec!["Synchronization"],
            "{version:?}: the witness's fine-only actions localize the bug"
        );
        assert!(divergence.witness.depth() <= divergence.original_depth);
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive dual exploration; use --release")]
fn final_fix_residual_divergence_is_the_missing_uptodate_ack() {
    // Even with every modelled bug fixed, the fine-grained composition does not
    // refine to the baseline: the checker rediscovers the paper's §2.2.3 "missing
    // state transition" — the baseline omits the follower's UPTODATE acknowledgement,
    // which the implementation (and the fine spec) sends and the leader counts as a
    // proposal acknowledgement.  The witness still localizes to Synchronization.
    let (run, culprits) = version_row(CodeVersion::FinalFix);
    let divergence = run.outcome.divergence.as_ref().expect("§2.2.3 divergence");
    assert_eq!(divergence.kind, DivergenceKind::MissingInCoarse);
    assert_eq!(culprits, vec!["Synchronization"]);
    assert!(
        divergence
            .witness
            .action_labels()
            .iter()
            .any(|l| l.starts_with("FollowerProcessUPTODATE")),
        "the witness exercises the UPTODATE path: {:?}",
        divergence.witness.action_labels()
    );
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive dual exploration; use --release")]
fn fixed_versions_refine_cleanly_at_the_atomicity_granularity() {
    // The FineAtomic granularity splits the NEWLEADER handshake but keeps the
    // baseline's synchronous UPTODATE, so the §2.2.3 gap does not apply: versions
    // with the fixed epoch/logging order refine to the baseline conclusively.
    // (The buggy order differs only in crash-visible intermediate states, so it also
    // refines on a crash-free configuration — the split is timing-internal there.)
    for (version, must_be_conclusive) in [
        (CodeVersion::Pr1848, true),
        (CodeVersion::FinalFix, true),
        // The buggy ordering multiplies interleavings; its exploration may hit the
        // budget, in which case "no divergence in the explored prefix" is the verdict.
        (CodeVersion::V391, false),
    ] {
        let config = ClusterConfig {
            max_transactions: 1,
            max_crashes: 0,
            ..ClusterConfig::small(version)
        };
        let run = Verifier::new(config)
            .check_refinement_plans(&fine_atomic_plan(), &SpecPreset::SysSpec.plan(), &options())
            .expect("plans form a refinement pair");
        assert!(
            run.outcome.divergence.is_none(),
            "{version:?}: {}",
            run.outcome
        );
        if must_be_conclusive {
            assert_eq!(
                run.refines(),
                Some(true),
                "{version:?}: a conclusive clean run is a definite verdict"
            );
            assert!(run.outcome.conclusive(), "{version:?}");
            assert_eq!(
                run.outcome.stats.fine_projections,
                run.outcome.stats.coarse_projections
            );
        } else {
            assert_ne!(
                run.refines(),
                Some(false),
                "{version:?}: no divergence may be claimed"
            );
        }
    }
}

/// An established epoch-1 cluster: leader 2 serving, follower 1 fully synced, and
/// follower 0 having acknowledged NEWLEADER *before persisting* (its
/// SyncRequestProcessor queue still holds the transaction — the ZK-4646 window that
/// arms ZK-4712).  Reachable under every version with the ack-before-persist flag
/// open, which includes both v3.9.1 and mSpec-3+.
fn established_with_loaded_queue(config: &ClusterConfig) -> remix_zab::ZabState {
    use remix_zab::{Txn, ZabPhase, ZabState, Zxid};
    let mut s = ZabState::initial(config);
    let txn = Txn::new(1, 1, 1);
    let leader = 2;
    for i in 0..3 {
        s.servers[i].accepted_epoch = 1;
        s.servers[i].current_epoch = 1;
        s.servers[i].phase = ZabPhase::Broadcast;
        s.servers[i].leader = Some(leader);
        s.servers[i].serving = true;
    }
    s.servers[leader].state = ServerState::Leading;
    s.servers[leader].established = true;
    s.servers[leader].epoch_proposed = true;
    s.servers[leader].history = vec![txn];
    s.servers[leader].last_committed = 1;
    for f in [0usize, 1] {
        s.servers[f].state = ServerState::Following;
        s.servers[f].connected = true;
        s.servers[leader].learners.insert(f);
        s.servers[leader].epoch_acks.insert(f);
        s.servers[leader].newleader_acks.insert(f);
        s.servers[leader].sync_sent.insert(f);
        s.servers[leader].learner_last_zxid.insert(f, Zxid::ZERO);
    }
    s.servers[1].history = vec![txn];
    s.servers[1].last_committed = 1;
    // Follower 0 acked before persisting: the transaction is still queued.
    s.servers[0].queued_requests = vec![txn];
    s.txns_created = config.max_transactions; // no further client requests
    s.record_establishment(1, leader, vec![]);
    s.ghost.broadcast.push(txn);
    s
}

#[test]
#[cfg_attr(debug_assertions, ignore = "expensive dual exploration; use --release")]
fn zk4712_version_differential_localizes_to_faults_and_sync() {
    // Same granularity, different code versions: v3.9.1 and mSpec-3+ differ *only* in
    // the ZK-4712 fix (whether the SyncRequestProcessor queue survives a shutdown), so
    // a refinement check between them isolates exactly that bug.  Seeded at an
    // established cluster with follower 0's queue loaded, the buggy side reaches
    // states — the stale transaction logged after the follower rejoined a new epoch —
    // that the fixed side cannot, and the witness combines the fault action with the
    // Synchronization thread step ("ZK-4712 → faults/sync").
    let buggy_config = ClusterConfig {
        max_transactions: 1,
        max_crashes: 1,
        max_epoch: 2,
        ..ClusterConfig::small(CodeVersion::V391)
    };
    let fixed_config = ClusterConfig {
        version: CodeVersion::MSpec3Plus,
        ..buggy_config
    };
    let mut fine = SpecPreset::MSpec4.build(&buggy_config);
    let mut coarse = SpecPreset::MSpec4.build(&fixed_config);
    fine.init = vec![established_with_loaded_queue(&buggy_config)];
    coarse.init = vec![established_with_loaded_queue(&fixed_config)];
    // The granularities are equal; only the sync-thread normalization applies (queue
    // states are unstable, ACKs hidden) so thread-timing differences don't register.
    let projection = remix_zab::projection::projection(
        "ZK-4712 differential (v3.9.1 vs mSpec-3+)",
        Granularity::Baseline,
        Granularity::FineConcurrent,
        remix_zab::ProjectionSpec {
            normalize_election: false,
            normalize_sync: true,
        },
    );
    let outcome = check_refinement(
        &fine,
        &coarse,
        &projection,
        &RefineOptions::default().with_time_budget(Duration::from_secs(180)),
    );
    let divergence = outcome.divergence.as_ref().expect("ZK-4712 must diverge");
    assert_eq!(divergence.kind, DivergenceKind::MissingInCoarse);
    let labels = divergence.witness.action_labels();
    assert!(
        labels
            .iter()
            .any(|l| l.starts_with("FollowerShutdown") || l.starts_with("LeaderShutdown")),
        "the fault module's shutdown is load-bearing: {labels:?}"
    );
    assert!(
        labels
            .iter()
            .any(|l| l.starts_with("FollowerSyncProcessorLogRequest")),
        "the sync thread logging the stale request is load-bearing: {labels:?}"
    );
}
