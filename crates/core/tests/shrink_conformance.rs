//! End-to-end shrink test: conformance divergence → delta-debugged schedule → the
//! shrunk trace still diverges and is no longer than the original.
//!
//! The setup mirrors how the paper surfaces ZK-4646 (§3.5.2 / Table 4): the *model*
//! describes the fixed follower (the synced history is persisted before NEWLEADER is
//! acknowledged), while the *implementation* runs buggy v3.9.1, whose
//! SyncRequestProcessor persists asynchronously.  Replaying fixed-model traces against
//! the buggy code diverges on the `history` variable; shrinking must reduce each
//! diverging schedule to a locally minimal legal execution that still reproduces the
//! divergence when replayed.

use remix_checker::replay_labels;
use remix_core::{ConformanceChecker, ConformanceOptions};
use remix_zab::{ClusterConfig, CodeVersion, SpecPreset};

#[test]
fn divergence_shrinks_to_a_minimal_still_diverging_schedule() {
    // ZK-4646 flavour: fixed model vs buggy v3.9.1 implementation.
    let impl_config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
    let model_config = ClusterConfig::small(CodeVersion::FinalFix).with_crashes(0);
    let spec = SpecPreset::MSpec3.build(&model_config);
    let checker = ConformanceChecker::new(impl_config);

    let options = ConformanceOptions {
        traces: 20,
        max_depth: 30,
        ..Default::default()
    }
    .with_shrinking();
    let report = checker.check(&spec, &options);
    assert!(
        !report.conforms(),
        "the fixed model must not conform to the buggy implementation"
    );
    assert!(
        !report.shrunk_divergences.is_empty(),
        "every diverging trace should have been delta-debugged"
    );

    for shrunk in &report.shrunk_divergences {
        // Never longer than the original sampled trace.
        assert!(
            shrunk.shrunk_depth <= shrunk.original_depth,
            "trace {}: shrunk {} > original {}",
            shrunk.trace,
            shrunk.shrunk_depth,
            shrunk.original_depth
        );
        assert_eq!(shrunk.actions.len(), shrunk.shrunk_depth);

        // The minimized schedule is a *legal execution* of the specification...
        let trace = replay_labels(&spec, &spec.init[0], &shrunk.actions)
            .expect("the shrunk schedule must replay as a legal execution of the spec");
        assert_eq!(trace.depth(), shrunk.shrunk_depth);

        // ...and replaying it against a fresh implementation cluster still diverges.
        let mut probe = remix_core::ConformanceReport::default();
        checker.replay_trace_seeded(shrunk.trace, &trace, &mut probe, shrunk.schedule_seed);
        assert!(
            !probe.discrepancies.is_empty(),
            "trace {}: the shrunk schedule no longer diverges",
            shrunk.trace
        );
    }

    // At least one schedule actually got shorter — sampled walks on this configuration
    // carry plenty of irrelevant churn, and a shrinker that never removes anything
    // would be useless.
    assert!(
        report
            .shrunk_divergences
            .iter()
            .any(|s| s.shrunk_depth < s.original_depth),
        "no divergence shrank at all: {:?}",
        report
            .shrunk_divergences
            .iter()
            .map(|s| (s.original_depth, s.shrunk_depth))
            .collect::<Vec<_>>()
    );
}

#[test]
fn shrunk_schedules_replay_under_their_recorded_seed() {
    // The schedule seed recorded on a shrunk divergence is the per-trace sampling seed,
    // so a replay tagged with it reproduces the exact run the divergence was found in.
    let impl_config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
    let spec = SpecPreset::MSpec1.build(&impl_config);
    let checker = ConformanceChecker::new(impl_config);
    let report = checker.check(
        &spec,
        &ConformanceOptions {
            traces: 20,
            max_depth: 30,
            ..Default::default()
        }
        .with_shrinking(),
    );
    assert!(
        !report.conforms(),
        "mSpec-1 diverges from the async implementation"
    );
    let shrunk = report
        .shrunk_divergences
        .first()
        .expect("a diverging trace was shrunk");
    let trace = replay_labels(&spec, &spec.init[0], &shrunk.actions).expect("legal");
    let outcome = checker.shrink_divergence(&spec, &trace, shrunk.schedule_seed);
    // Shrinking an already-minimal schedule is a fixpoint.
    assert_eq!(outcome.shrunk_depth(), shrunk.shrunk_depth);
    assert!(!outcome.reduced());
}
