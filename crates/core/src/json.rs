//! A tiny JSON writer for report rows and benchmark artefacts.
//!
//! The build environment has no access to crates.io, so instead of `serde` /
//! `serde_json` the report types serialize themselves through this deliberately small
//! builder.  It only *writes* JSON (objects, strings, integers, booleans, string
//! arrays) — parsing is out of scope, and so are non-string keys, floats and nested
//! objects, which the report rows do not need.

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An incremental builder for one flat JSON object.
#[derive(Debug, Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObject::default()
    }

    fn key(&mut self, key: &str) {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        let _ = write!(self.body, "\"{}\":", escape(key));
    }

    /// Adds a string field.
    pub fn string(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        let _ = write!(self.body, "\"{}\"", escape(value));
        self
    }

    /// Adds a string-or-null field.
    pub fn opt_string(mut self, key: &str, value: Option<&str>) -> Self {
        self.key(key);
        match value {
            Some(v) => {
                let _ = write!(self.body, "\"{}\"", escape(v));
            }
            None => self.body.push_str("null"),
        }
        self
    }

    /// Adds an unsigned integer field.
    pub fn u128(mut self, key: &str, value: u128) -> Self {
        self.key(key);
        let _ = write!(self.body, "{value}");
        self
    }

    /// Adds an unsigned-integer-or-null field.
    pub fn opt_u128(mut self, key: &str, value: Option<u128>) -> Self {
        self.key(key);
        match value {
            Some(v) => {
                let _ = write!(self.body, "{v}");
            }
            None => self.body.push_str("null"),
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.body.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds an array-of-strings field.
    pub fn string_array(mut self, key: &str, values: &[String]) -> Self {
        self.key(key);
        self.body.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.body.push(',');
            }
            let _ = write!(self.body, "\"{}\"", escape(v));
        }
        self.body.push(']');
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_flat_objects() {
        let json = JsonObject::new()
            .string("name", "a \"quoted\" name")
            .u128("count", 42)
            .bool("ok", true)
            .opt_string("maybe", None)
            .string_array("tags", &["x".to_owned(), "y".to_owned()])
            .finish();
        assert_eq!(
            json,
            "{\"name\":\"a \\\"quoted\\\" name\",\"count\":42,\"ok\":true,\"maybe\":null,\"tags\":[\"x\",\"y\"]}"
        );
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(escape("a\nb\u{1}"), "a\\nb\\u0001");
    }
}
