//! Remix — the framework for model checking and verification of distributed systems with
//! multi-grained specifications.
//!
//! This is the paper's primary contribution: given a library of per-module
//! specifications at several granularities (`remix-zab`), Remix
//!
//! * composes them into *mixed-grained* specifications ([`composer`]), automatically
//!   selecting the invariants that apply to the chosen granularities and checking the
//!   interaction-preservation constraints of the coarsened modules — syntactically on
//!   every composition, and semantically (by refinement checking against the
//!   un-coarsened counterpart) via [`Composer::compose_checked`] and
//!   [`Verifier::check_refinement`](verifier::Verifier::check_refinement);
//! * drives the model checker over the composed specification ([`verifier`]), producing
//!   the bug-detection and efficiency measurements of Tables 4-6;
//! * checks conformance between the specifications and the code-level implementation
//!   ([`conformance`]): model-level traces are sampled by random exploration — uniform,
//!   or coverage-guided toward rarely visited state regions — mapped action by action
//!   onto code-level events ([`mapping`]), replayed deterministically against the
//!   `remix-zk-sim` cluster by a central coordinator, and compared variable by variable
//!   after every step; diverging schedules can be delta-debugged down to locally
//!   minimal traces that still diverge.

#![warn(missing_docs)]

pub mod composer;
pub mod conformance;
pub mod json;
pub mod mapping;
pub mod report;
pub mod verifier;

pub use composer::{ComposedSpec, Composer};
pub use conformance::{
    ConformanceChecker, ConformanceOptions, ConformanceReport, Discrepancy, ShrunkDivergence,
};
pub use mapping::{default_mapping, ActionMapping};
pub use report::{
    AnalysisRow, BugReport, ConcurrencyRow, EfficiencyRow, ExploreRow, FixVerificationRow,
    RefineRow,
};
pub use verifier::{
    RefinementRun, ShrunkCounterexample, VerificationRun, Verifier, VerifierOptions, VerifyError,
};
