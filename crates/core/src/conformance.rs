//! Conformance checking between specifications and the code-level implementation.
//!
//! Following the paper's top-down approach (§3.4, §3.5.2): model-level traces are sampled
//! by random exploration of the specification, each trace is replayed deterministically
//! against the simulated implementation by scheduling the mapped code-level events one at
//! a time, and after every model step the model's variables are compared with their
//! code-level counterparts.  Discrepancies — mismatched variables, model actions whose
//! code-level counterpart cannot run, unmapped actions, or implementation errors hit
//! during replay — are collected into a [`ConformanceReport`].

use std::collections::BTreeMap;
use std::time::Duration;

use remix_checker::{simulate, SimulationOptions};
use remix_spec::{Spec, SpecState, Trace, Value};
use remix_zab::{ClusterConfig, ZabState};
use remix_zk_sim::{Cluster, Observation};

use crate::mapping::ActionMapping;

/// Options of a conformance-checking run.
#[derive(Debug, Clone)]
pub struct ConformanceOptions {
    /// Number of model-level traces to sample.
    pub traces: usize,
    /// Maximum length of each sampled trace.
    pub max_depth: u32,
    /// Random seed for trace sampling.
    pub seed: u64,
    /// Time budget for the sampling phase (the paper uses e.g. 30 minutes).
    pub time_budget: Option<Duration>,
}

impl Default for ConformanceOptions {
    fn default() -> Self {
        ConformanceOptions { traces: 24, max_depth: 30, seed: 0x5EED, time_budget: None }
    }
}

/// One detected discrepancy between the model and the implementation.
#[derive(Debug, Clone)]
pub enum Discrepancy {
    /// A model-level variable and its code-level counterpart have different values.
    VariableMismatch {
        /// Index of the sampled trace.
        trace: usize,
        /// Step within the trace.
        step: usize,
        /// The model action that produced the step.
        action: String,
        /// The variable that differs.
        variable: String,
        /// The model-side value.
        model: Value,
        /// The implementation-side value.
        implementation: Value,
    },
    /// A model action has no registered code-level mapping.
    UnmappedAction {
        /// Index of the sampled trace.
        trace: usize,
        /// The unmapped action label.
        action: String,
    },
    /// The mapped code-level event could not run in the implementation state
    /// (the model-level action's counterpart, once enabled, never takes place).
    EventRejected {
        /// Index of the sampled trace.
        trace: usize,
        /// Step within the trace.
        step: usize,
        /// The model action.
        action: String,
        /// Why the implementation refused the event.
        reason: String,
    },
    /// The implementation raised an exception / failed assertion during replay while the
    /// model did not flag any error path (§3.5.2's "obvious symptoms").
    ImplementationError {
        /// Index of the sampled trace.
        trace: usize,
        /// Step within the trace.
        step: usize,
        /// The model action.
        action: String,
        /// The implementation error.
        error: String,
    },
}

/// The outcome of a conformance-checking run.
#[derive(Debug, Default)]
pub struct ConformanceReport {
    /// Number of traces replayed.
    pub traces_checked: usize,
    /// Total number of model steps replayed.
    pub steps_replayed: usize,
    /// The detected discrepancies.
    pub discrepancies: Vec<Discrepancy>,
}

impl ConformanceReport {
    /// `true` when no discrepancy was detected.
    pub fn conforms(&self) -> bool {
        self.discrepancies.is_empty()
    }
}

/// The conformance checker.
#[derive(Debug)]
pub struct ConformanceChecker {
    /// The model-checking configuration (must match the implementation's configuration).
    pub config: ClusterConfig,
    /// The model-to-code action mapping.
    pub mapping: ActionMapping,
    /// The variables compared after every step.
    pub compared_variables: Vec<&'static str>,
}

impl ConformanceChecker {
    /// Creates a conformance checker with the default ZooKeeper action mapping.
    pub fn new(config: ClusterConfig) -> Self {
        ConformanceChecker {
            config,
            mapping: crate::mapping::default_mapping(),
            compared_variables: Observation::comparable_variables().to_vec(),
        }
    }

    /// Samples model-level traces from `spec` and replays each against a fresh
    /// implementation cluster, collecting discrepancies.
    pub fn check(&self, spec: &Spec<ZabState>, options: &ConformanceOptions) -> ConformanceReport {
        let traces = simulate(
            spec,
            &SimulationOptions {
                traces: options.traces,
                max_depth: options.max_depth,
                time_budget: options.time_budget,
                seed: options.seed,
            },
        );
        let mut report = ConformanceReport::default();
        for (trace_index, trace) in traces.iter().enumerate() {
            report.traces_checked += 1;
            self.replay_trace(trace_index, trace, &mut report);
        }
        report
    }

    /// Replays one model-level trace against a fresh cluster (used both by `check` and to
    /// confirm safety violations found during model checking, §3.5.2).
    pub fn replay_trace(&self, trace_index: usize, trace: &Trace<ZabState>, report: &mut ConformanceReport) {
        let mut cluster = Cluster::new(self.config);
        for (step_index, step) in trace.steps.iter().enumerate().skip(1) {
            report.steps_replayed += 1;
            let Some(events) = self.mapping.translate(&step.action) else {
                report
                    .discrepancies
                    .push(Discrepancy::UnmappedAction { trace: trace_index, action: step.action.clone() });
                continue;
            };
            let mut rejected = false;
            for event in &events {
                if let Err(e) = cluster.step(event) {
                    report.discrepancies.push(Discrepancy::EventRejected {
                        trace: trace_index,
                        step: step_index,
                        action: step.action.clone(),
                        reason: e.reason,
                    });
                    rejected = true;
                    break;
                }
            }
            if rejected {
                // The implementation diverged; comparing further states of this trace
                // would only produce cascading mismatches.
                break;
            }
            let observation = cluster.observe();
            let model_view = step.state.project(&self.compared_variables);
            let impl_view = observation.project(&self.compared_variables);
            let mismatches = compare_views(&model_view, &impl_view);
            for (variable, model, implementation) in mismatches {
                report.discrepancies.push(Discrepancy::VariableMismatch {
                    trace: trace_index,
                    step: step_index,
                    action: step.action.clone(),
                    variable,
                    model,
                    implementation,
                });
            }
            // Implementation exceptions with no model-side error path are discrepancies
            // in their own right (and conversely a modelled error path is not).
            if step.state.violation.is_none() {
                if let Some((_, error)) = observation.first_error() {
                    report.discrepancies.push(Discrepancy::ImplementationError {
                        trace: trace_index,
                        step: step_index,
                        action: step.action.clone(),
                        error: error.to_owned(),
                    });
                    break;
                }
            }
        }
    }

    /// Deterministically replays a violation trace found by the model checker and reports
    /// whether the implementation reaches a matching error / divergence, confirming the
    /// bug at the code level (§3.5.3).
    pub fn confirm_violation(&self, trace: &Trace<ZabState>) -> ConformanceReport {
        let mut report = ConformanceReport::default();
        report.traces_checked = 1;
        self.replay_trace(0, trace, &mut report);
        report
    }
}

/// Compares two projected variable views, returning the differing variables.
fn compare_views(
    model: &BTreeMap<String, Value>,
    implementation: &BTreeMap<String, Value>,
) -> Vec<(String, Value, Value)> {
    let mut out = Vec::new();
    for (var, model_value) in model {
        if let Some(impl_value) = implementation.get(var) {
            if impl_value != model_value {
                out.push((var.clone(), model_value.clone(), impl_value.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_zab::{CodeVersion, SpecPreset};

    fn options() -> ConformanceOptions {
        ConformanceOptions { traces: 12, max_depth: 24, seed: 7, time_budget: None }
    }

    #[test]
    fn fine_grained_spec_conforms_to_the_matching_implementation() {
        // mSpec-3 models asynchronous logging and committing, which is exactly what the
        // v3.9.1 implementation does: replaying its traces must not produce mismatches.
        let config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
        let spec = SpecPreset::MSpec3.build(&config);
        let checker = ConformanceChecker::new(config);
        let report = checker.check(&spec, &options());
        assert!(report.traces_checked > 0 && report.steps_replayed > 0);
        assert!(
            report.conforms(),
            "mSpec-3 should conform to the v3.9.1 implementation: {:?}",
            report.discrepancies.first()
        );
    }

    #[test]
    fn final_fix_spec_conforms_to_the_fixed_implementation() {
        let config = ClusterConfig::small(CodeVersion::FinalFix).with_crashes(0);
        let spec = SpecPreset::MSpec3.build(&config);
        let checker = ConformanceChecker::new(config);
        let report = checker.check(&spec, &options());
        assert!(report.conforms(), "{:?}", report.discrepancies.first());
    }

    #[test]
    fn baseline_spec_exhibits_the_async_commit_model_code_gap() {
        // The baseline system specification commits synchronously at UPTODATE, while the
        // implementation hands commits to the CommitProcessor thread: conformance
        // checking must surface the gap (this mirrors the discrepancy-driven spec
        // adjustments of §4.1).
        let config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
        let spec = SpecPreset::MSpec1.build(&config);
        let checker = ConformanceChecker::new(config);
        let report = checker.check(&spec, &ConformanceOptions { traces: 20, max_depth: 30, ..options() });
        assert!(
            !report.conforms(),
            "the baseline specification should not conform to the asynchronous implementation"
        );
        assert!(report
            .discrepancies
            .iter()
            .any(|d| matches!(d, Discrepancy::VariableMismatch { variable, .. } if variable == "lastCommitted")));
    }
}
