//! Conformance checking between specifications and the code-level implementation.
//!
//! Following the paper's top-down approach (§3.4, §3.5.2): model-level traces are sampled
//! by random exploration of the specification, each trace is replayed deterministically
//! against the simulated implementation by scheduling the mapped code-level events one at
//! a time, and after every model step the model's variables are compared with their
//! code-level counterparts.  Discrepancies — mismatched variables, model actions whose
//! code-level counterpart cannot run, unmapped actions, or implementation errors hit
//! during replay — are collected into a [`ConformanceReport`].

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use remix_checker::{
    explore_one, shrink_trace, simulate_one, CheckerRng, CoverageMap, Guidance, ShrinkOutcome,
};
use remix_spec::{Spec, SpecState, Trace, Value};
use remix_zab::{ClusterConfig, ZabState};
use remix_zk_sim::{Cluster, Observation};

use crate::mapping::ActionMapping;

/// Options of a conformance-checking run.
#[derive(Debug, Clone)]
pub struct ConformanceOptions {
    /// Number of model-level traces to sample by random exploration of the specification
    /// (the trace-sampling loop of §3.4 / §3.5.2).
    pub traces: usize,
    /// Maximum length of each sampled trace, bounding the replayed executions the same
    /// way the paper's simulation budget does.
    pub max_depth: u32,
    /// Random seed for trace sampling; each trace index derives its own sub-stream, so a
    /// batch is reproducible regardless of `workers`.
    pub seed: u64,
    /// Time budget for the sampling phase (the paper uses e.g. 30 minutes).  When it
    /// binds, how many trace indices complete before the cut-off depends on scheduling,
    /// so budget-limited reports are not comparable across worker counts.
    pub time_budget: Option<Duration>,
    /// Worker threads sampling and replaying traces concurrently.  Replay of one trace
    /// is inherently sequential (the coordinator schedules one code-level event at a
    /// time, §3.5.2), so parallelism is across traces; results are merged in trace-index
    /// order and — absent a binding `time_budget` — identical for any worker count.
    pub workers: usize,
    /// The sampling policy: the paper's uniform random walk (§3.5.2), or coverage-guided
    /// sampling biased toward rarely visited state regions (`remix-checker::explore`).
    /// Guided sampling shares one coverage map across all workers, so with several
    /// workers the sampled traces depend on their interleaving; uniform sampling stays
    /// byte-identical for any worker count.
    pub guidance: Guidance,
    /// Delta-debug every diverging trace down to a locally minimal legal execution that
    /// still diverges (re-replaying each candidate against a fresh implementation
    /// cluster), and record the minimized schedules in
    /// [`ConformanceReport::shrunk_divergences`].
    pub shrink_divergences: bool,
}

impl Default for ConformanceOptions {
    fn default() -> Self {
        ConformanceOptions {
            traces: 24,
            max_depth: 30,
            seed: 0x5EED,
            time_budget: None,
            workers: 1,
            guidance: Guidance::Uniform,
            shrink_divergences: false,
        }
    }
}

impl ConformanceOptions {
    /// Switches to coverage-guided trace sampling with the given rarity weight.
    pub fn guided(mut self, rarity_weight: u32) -> Self {
        self.guidance = Guidance::CoverageGuided { rarity_weight };
        self
    }

    /// Enables delta-debugging of diverging traces.
    pub fn with_shrinking(mut self) -> Self {
        self.shrink_divergences = true;
        self
    }
}

/// One detected discrepancy between the model and the implementation.
#[derive(Debug, Clone)]
pub enum Discrepancy {
    /// A model-level variable and its code-level counterpart have different values.
    VariableMismatch {
        /// Index of the sampled trace.
        trace: usize,
        /// Step within the trace.
        step: usize,
        /// The model action that produced the step.
        action: String,
        /// The variable that differs.
        variable: String,
        /// The model-side value.
        model: Value,
        /// The implementation-side value.
        implementation: Value,
    },
    /// A model action has no registered code-level mapping.
    UnmappedAction {
        /// Index of the sampled trace.
        trace: usize,
        /// The unmapped action label.
        action: String,
    },
    /// The mapped code-level event could not run in the implementation state
    /// (the model-level action's counterpart, once enabled, never takes place).
    EventRejected {
        /// Index of the sampled trace.
        trace: usize,
        /// Step within the trace.
        step: usize,
        /// The model action.
        action: String,
        /// Why the implementation refused the event.
        reason: String,
    },
    /// The implementation raised an exception / failed assertion during replay while the
    /// model did not flag any error path (§3.5.2's "obvious symptoms").
    ImplementationError {
        /// Index of the sampled trace.
        trace: usize,
        /// Step within the trace.
        step: usize,
        /// The model action.
        action: String,
        /// The implementation error.
        error: String,
    },
}

/// A diverging trace minimized by delta debugging (§3.5.2's counterexamples, made
/// readable): the shrunk schedule is a legal execution of the specification whose
/// replay still produces a discrepancy, and no single remaining action can be removed
/// without losing that property.
#[derive(Debug, Clone)]
pub struct ShrunkDivergence {
    /// Index of the sampled trace that diverged.
    pub trace: usize,
    /// Transition count of the originally sampled trace.
    pub original_depth: usize,
    /// Transition count after shrinking (never larger than `original_depth`).
    pub shrunk_depth: usize,
    /// The minimized schedule: the action labels of the shrunk trace, replayable via
    /// `remix-checker::replay_labels` or [`ConformanceChecker::replay_trace`].
    pub actions: Vec<String>,
    /// The deterministic schedule seed the trace was sampled (and its shrunk form
    /// re-validated) under — boot the replay cluster with `Cluster::with_seed` on this
    /// value to reproduce the run exactly.
    pub schedule_seed: u64,
}

/// The outcome of a conformance-checking run.
#[derive(Debug, Default)]
pub struct ConformanceReport {
    /// Number of traces replayed.
    pub traces_checked: usize,
    /// Total number of model steps replayed.
    pub steps_replayed: usize,
    /// The detected discrepancies.
    pub discrepancies: Vec<Discrepancy>,
    /// Minimized diverging schedules (filled when
    /// [`ConformanceOptions::shrink_divergences`] is set).
    pub shrunk_divergences: Vec<ShrunkDivergence>,
}

impl ConformanceReport {
    /// `true` when no discrepancy was detected.
    pub fn conforms(&self) -> bool {
        self.discrepancies.is_empty()
    }
}

/// The conformance checker.
#[derive(Debug)]
pub struct ConformanceChecker {
    /// The model-checking configuration (must match the implementation's configuration).
    pub config: ClusterConfig,
    /// The model-to-code action mapping.
    pub mapping: ActionMapping,
    /// The variables compared after every step.
    pub compared_variables: Vec<&'static str>,
}

impl ConformanceChecker {
    /// Creates a conformance checker with the default ZooKeeper action mapping.
    pub fn new(config: ClusterConfig) -> Self {
        ConformanceChecker {
            config,
            mapping: crate::mapping::default_mapping(),
            compared_variables: Observation::comparable_variables().to_vec(),
        }
    }

    /// Samples model-level traces from `spec` and replays each against a fresh
    /// implementation cluster, collecting discrepancies.
    ///
    /// Each trace index seeds its own random sub-stream, so absent a binding
    /// `time_budget` the sampled batch — and the resulting report — is the same for
    /// every `options.workers` value; workers simply sample and replay disjoint stripes
    /// of the index space concurrently.  A binding budget cuts each worker's stripe off
    /// at a scheduling-dependent index, so budget-limited reports may differ.
    pub fn check(&self, spec: &Spec<ZabState>, options: &ConformanceOptions) -> ConformanceReport {
        let start = Instant::now();
        let total = options.traces.max(1);
        let workers = options.workers.max(1).min(total);
        // One coverage map shared by every sampling worker (only consulted when the
        // guidance is coverage-guided; recording for uniform runs would change nothing),
        // at the explorer's default striping/granularity so guided conformance sampling
        // behaves like a standalone guided exploration of the same spec.
        let coverage = CoverageMap::new(
            remix_checker::explore::DEFAULT_COVERAGE_SHARDS,
            remix_checker::explore::DEFAULT_PREFIX_BITS,
        );

        let run_stripe = |worker: usize| -> Vec<(usize, ConformanceReport)> {
            let mut out = Vec::new();
            let mut index = worker;
            while index < total {
                // At least one trace (index 0) is always produced, budget or not.
                if index > 0 {
                    if let Some(budget) = options.time_budget {
                        if start.elapsed() >= budget {
                            break;
                        }
                    }
                }
                let schedule_seed = trace_seed(options.seed, index);
                let mut rng = CheckerRng::for_trace(options.seed, index as u64);
                let trace = match options.guidance {
                    Guidance::Uniform => simulate_one(spec, options.max_depth, &mut rng),
                    Guidance::CoverageGuided { .. } => explore_one(
                        spec,
                        options.max_depth,
                        &mut rng,
                        &coverage,
                        options.guidance,
                        None,
                        None,
                    ),
                };
                let mut partial = ConformanceReport {
                    traces_checked: 1,
                    ..Default::default()
                };
                self.replay_trace_seeded(index, &trace, &mut partial, schedule_seed);
                if options.shrink_divergences && !partial.discrepancies.is_empty() {
                    let outcome = self.shrink_divergence(spec, &trace, schedule_seed);
                    partial.shrunk_divergences.push(ShrunkDivergence {
                        trace: index,
                        original_depth: outcome.original_depth,
                        shrunk_depth: outcome.shrunk_depth(),
                        actions: outcome
                            .trace
                            .action_labels()
                            .iter()
                            .map(|l| (*l).to_owned())
                            .collect(),
                        schedule_seed,
                    });
                }
                out.push((index, partial));
                index += workers;
            }
            out
        };

        let mut partials: Vec<(usize, ConformanceReport)> = if workers == 1 {
            run_stripe(0)
        } else {
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| scope.spawn(move || run_stripe(w)))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("replay worker panicked"))
                    .collect()
            })
        };

        // Merge in trace-index order so the report is deterministic.
        partials.sort_by_key(|(index, _)| *index);
        let mut report = ConformanceReport::default();
        for (_, partial) in partials {
            report.traces_checked += partial.traces_checked;
            report.steps_replayed += partial.steps_replayed;
            report.discrepancies.extend(partial.discrepancies);
            report.shrunk_divergences.extend(partial.shrunk_divergences);
        }
        report
    }

    /// Delta-debugs a diverging model-level trace down to a locally minimal legal
    /// execution whose replay (under the same deterministic `schedule_seed`) still
    /// produces a discrepancy.
    ///
    /// Every candidate is first re-validated against `spec` (each remaining action must
    /// stay enabled along the way) and then replayed against a fresh implementation
    /// cluster; the oracle accepts it only when the replay still diverges, so the
    /// shrunk trace is guaranteed to reproduce a model/code gap of §3.5.2.
    pub fn shrink_divergence(
        &self,
        spec: &Spec<ZabState>,
        trace: &Trace<ZabState>,
        schedule_seed: u64,
    ) -> ShrinkOutcome<ZabState> {
        shrink_trace(spec, trace, |candidate| {
            let mut probe = ConformanceReport::default();
            self.replay_trace_seeded(0, candidate, &mut probe, schedule_seed);
            !probe.discrepancies.is_empty()
        })
    }

    /// Replays one model-level trace against a fresh cluster (used both by `check` and to
    /// confirm safety violations found during model checking, §3.5.2).
    pub fn replay_trace(
        &self,
        trace_index: usize,
        trace: &Trace<ZabState>,
        report: &mut ConformanceReport,
    ) {
        self.replay_trace_seeded(trace_index, trace, report, 0);
    }

    /// Like [`Self::replay_trace`], booting the replay cluster with the deterministic
    /// schedule seed of the sampled trace (`Cluster::with_seed`), so the replay — and
    /// any shrunk form of it — is tagged with the schedule identity it was found under.
    pub fn replay_trace_seeded(
        &self,
        trace_index: usize,
        trace: &Trace<ZabState>,
        report: &mut ConformanceReport,
        schedule_seed: u64,
    ) {
        let mut cluster = Cluster::with_seed(self.config, schedule_seed);
        for (step_index, step) in trace.steps.iter().enumerate().skip(1) {
            report.steps_replayed += 1;
            let Some(events) = self.mapping.translate(&step.action) else {
                report.discrepancies.push(Discrepancy::UnmappedAction {
                    trace: trace_index,
                    action: step.action.clone(),
                });
                continue;
            };
            let mut rejected = false;
            for event in &events {
                if let Err(e) = cluster.step(event) {
                    report.discrepancies.push(Discrepancy::EventRejected {
                        trace: trace_index,
                        step: step_index,
                        action: step.action.clone(),
                        reason: e.reason,
                    });
                    rejected = true;
                    break;
                }
            }
            if rejected {
                // The implementation diverged; comparing further states of this trace
                // would only produce cascading mismatches.
                break;
            }
            let observation = cluster.observe();
            let model_view = step.state.project(&self.compared_variables);
            let impl_view = observation.project(&self.compared_variables);
            let mismatches = compare_views(&model_view, &impl_view);
            for (variable, model, implementation) in mismatches {
                report.discrepancies.push(Discrepancy::VariableMismatch {
                    trace: trace_index,
                    step: step_index,
                    action: step.action.clone(),
                    variable,
                    model,
                    implementation,
                });
            }
            // Implementation exceptions with no model-side error path are discrepancies
            // in their own right (and conversely a modelled error path is not).
            if step.state.violation.is_none() {
                if let Some((_, error)) = observation.first_error() {
                    report.discrepancies.push(Discrepancy::ImplementationError {
                        trace: trace_index,
                        step: step_index,
                        action: step.action.clone(),
                        error: error.to_owned(),
                    });
                    break;
                }
            }
        }
    }

    /// Deterministically replays a violation trace found by the model checker and reports
    /// whether the implementation reaches a matching error / divergence, confirming the
    /// bug at the code level (§3.5.3).
    pub fn confirm_violation(&self, trace: &Trace<ZabState>) -> ConformanceReport {
        let mut report = ConformanceReport {
            traces_checked: 1,
            ..Default::default()
        };
        self.replay_trace(0, trace, &mut report);
        report
    }
}

/// The deterministic per-trace seed: the value `CheckerRng::for_trace` seeds the
/// sampling sub-stream of trace `index` with (shared derivation, so the recorded
/// schedule identity can never drift from the sampling stream), reused as the replay
/// cluster's schedule identity.
fn trace_seed(seed: u64, index: usize) -> u64 {
    CheckerRng::trace_seed(seed, index as u64)
}

/// Compares two projected variable views, returning the differing variables.
fn compare_views(
    model: &BTreeMap<String, Value>,
    implementation: &BTreeMap<String, Value>,
) -> Vec<(String, Value, Value)> {
    let mut out = Vec::new();
    for (var, model_value) in model {
        if let Some(impl_value) = implementation.get(var) {
            if impl_value != model_value {
                out.push((var.clone(), model_value.clone(), impl_value.clone()));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_zab::{CodeVersion, SpecPreset};

    fn options() -> ConformanceOptions {
        ConformanceOptions {
            traces: 12,
            max_depth: 24,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn fine_grained_spec_conforms_to_the_matching_implementation() {
        // mSpec-3 models asynchronous logging and committing, which is exactly what the
        // v3.9.1 implementation does: replaying its traces must not produce mismatches.
        let config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
        let spec = SpecPreset::MSpec3.build(&config);
        let checker = ConformanceChecker::new(config);
        let report = checker.check(&spec, &options());
        assert!(report.traces_checked > 0 && report.steps_replayed > 0);
        assert!(
            report.conforms(),
            "mSpec-3 should conform to the v3.9.1 implementation: {:?}",
            report.discrepancies.first()
        );
    }

    #[test]
    fn final_fix_spec_conforms_to_the_fixed_implementation() {
        let config = ClusterConfig::small(CodeVersion::FinalFix).with_crashes(0);
        let spec = SpecPreset::MSpec3.build(&config);
        let checker = ConformanceChecker::new(config);
        let report = checker.check(&spec, &options());
        assert!(report.conforms(), "{:?}", report.discrepancies.first());
    }

    #[test]
    fn baseline_spec_exhibits_the_async_commit_model_code_gap() {
        // The baseline system specification commits synchronously at UPTODATE, while the
        // implementation hands commits to the CommitProcessor thread: conformance
        // checking must surface the gap (this mirrors the discrepancy-driven spec
        // adjustments of §4.1).
        let config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
        let spec = SpecPreset::MSpec1.build(&config);
        let checker = ConformanceChecker::new(config);
        let report = checker.check(
            &spec,
            &ConformanceOptions {
                traces: 20,
                max_depth: 30,
                ..options()
            },
        );
        assert!(
            !report.conforms(),
            "the baseline specification should not conform to the asynchronous implementation"
        );
        assert!(report
            .discrepancies
            .iter()
            .any(|d| matches!(d, Discrepancy::VariableMismatch { variable, .. } if variable == "lastCommitted")));
    }

    #[test]
    fn guided_sampling_also_surfaces_the_gap() {
        // Coverage-guided sampling is a different distribution over the same legal
        // executions, so it must still expose the baseline model/code divergence.
        let config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
        let spec = SpecPreset::MSpec1.build(&config);
        let checker = ConformanceChecker::new(config);
        let report = checker.check(
            &spec,
            &ConformanceOptions {
                traces: 20,
                max_depth: 30,
                ..options()
            }
            .guided(16),
        );
        assert!(
            !report.conforms(),
            "guided sampling should find the async-commit gap"
        );
    }

    #[test]
    fn shrinking_minimizes_diverging_traces() {
        let config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
        let spec = SpecPreset::MSpec1.build(&config);
        let checker = ConformanceChecker::new(config);
        let report = checker.check(
            &spec,
            &ConformanceOptions {
                traces: 20,
                max_depth: 30,
                ..options()
            }
            .with_shrinking(),
        );
        assert!(!report.conforms());
        assert!(
            !report.shrunk_divergences.is_empty(),
            "every diverging trace should have been shrunk"
        );
        for shrunk in &report.shrunk_divergences {
            assert!(shrunk.shrunk_depth <= shrunk.original_depth);
            assert_eq!(shrunk.actions.len(), shrunk.shrunk_depth);
        }
    }

    #[test]
    fn parallel_replay_matches_sequential() {
        // Per-trace seeding makes the sampled batch independent of the worker count, so
        // the merged reports must agree exactly.
        let config = ClusterConfig::small(CodeVersion::V391).with_crashes(0);
        let spec = SpecPreset::MSpec1.build(&config);
        let checker = ConformanceChecker::new(config);
        let seq = checker.check(&spec, &options());
        let par = checker.check(
            &spec,
            &ConformanceOptions {
                workers: 4,
                ..options()
            },
        );
        assert_eq!(seq.traces_checked, par.traces_checked);
        assert_eq!(seq.steps_replayed, par.steps_replayed);
        assert_eq!(seq.discrepancies.len(), par.discrepancies.len());
    }
}
