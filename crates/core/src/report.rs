//! Report rows: the structured data behind the tables of the evaluation section.
//!
//! The benchmark harness (`remix-bench`) fills these rows and prints them in the same
//! layout as the paper (Tables 3-6); each row also serializes itself to a line of JSON
//! (via the [`crate::json`] helpers) so EXPERIMENTS.md and `BENCH_*.json` artefacts can
//! be regenerated mechanically.  Durations are serialized as integer milliseconds.

use std::time::Duration;

use crate::json::JsonObject;

/// One row of Table 4 (bug detection) or of the per-bug appendix.
#[derive(Debug, Clone)]
pub struct BugReport {
    /// The ZooKeeper issue, e.g. `"ZK-4643"`.
    pub bug: String,
    /// The impact reported by the paper (data loss, inconsistency, ...).
    pub impact: String,
    /// The most efficient specification that detects it.
    pub spec: String,
    /// Time to the first violation.
    pub time: Duration,
    /// Depth (transitions) of the counterexample.
    pub depth: u32,
    /// Distinct states explored when the violation was found.
    pub states: usize,
    /// The violated invariant.
    pub invariant: String,
    /// Whether the bug was detected at all within the budget.
    pub detected: bool,
}

impl BugReport {
    /// Serializes the row as one JSON object (durations in milliseconds).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("bug", &self.bug)
            .string("impact", &self.impact)
            .string("spec", &self.spec)
            .u128("time", self.time.as_millis())
            .u128("depth", self.depth.into())
            .u128("states", self.states as u128)
            .string("invariant", &self.invariant)
            .bool("detected", self.detected)
            .finish()
    }
}

/// One row of Table 5 (verification efficiency).
#[derive(Debug, Clone)]
pub struct EfficiencyRow {
    /// The specification (SysSpec, mSpec-1..4).
    pub spec: String,
    /// Wall-clock time of the run.
    pub time: Duration,
    /// Maximum depth reached.
    pub depth: u32,
    /// Distinct states explored.
    pub states: usize,
    /// Number of violations found (0 in first-violation mode when none).
    pub violations: usize,
    /// The violated invariants.
    pub violated_invariants: Vec<String>,
    /// Whether the run finished within the time budget.
    pub completed: bool,
}

impl EfficiencyRow {
    /// Serializes the row as one JSON object (durations in milliseconds).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("spec", &self.spec)
            .u128("time", self.time.as_millis())
            .u128("depth", self.depth.into())
            .u128("states", self.states as u128)
            .u128("violations", self.violations as u128)
            .string_array("violated_invariants", &self.violated_invariants)
            .bool("completed", self.completed)
            .finish()
    }
}

/// One row of Table 6 (verifying bug-fix pull requests).
#[derive(Debug, Clone)]
pub struct FixVerificationRow {
    /// The pull request.
    pub pull_request: String,
    /// The base specification used (mSpec-3+).
    pub spec: String,
    /// Time to the first violation (or the full run when none).
    pub time: Duration,
    /// Depth of the counterexample.
    pub depth: u32,
    /// Distinct states explored.
    pub states: usize,
    /// The first violated invariant, if any.
    pub invariant: Option<String>,
}

impl FixVerificationRow {
    /// Serializes the row as one JSON object (durations in milliseconds).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("pull_request", &self.pull_request)
            .string("spec", &self.spec)
            .u128("time", self.time.as_millis())
            .u128("depth", self.depth.into())
            .u128("states", self.states as u128)
            .opt_string("invariant", self.invariant.as_deref())
            .finish()
    }
}

/// One row of the guided-vs-uniform exploration comparison (the `BENCH_explore.json`
/// artefact): how quickly one sampling policy of §3.5.2 reached a violation, how much
/// of the state space it covered, and how far the counterexample shrank.
#[derive(Debug, Clone)]
pub struct ExploreRow {
    /// The sampling policy (`"uniform"` or `"coverage-guided"`).
    pub mode: String,
    /// The explored specification.
    pub spec: String,
    /// The base sampling seed of the run (both policies are compared seed by seed).
    pub seed: u64,
    /// Traces sampled before the run stopped.
    pub traces: usize,
    /// Total transitions taken across all sampled traces.
    pub steps: u64,
    /// Whether any invariant violation was found within the budget.
    pub violation_found: bool,
    /// Wall-clock time to the first violation, when one was found.
    pub time_to_violation: Option<Duration>,
    /// Trace index of the first violation, when one was found (the budget metric the
    /// guided-vs-uniform comparison is about: lower = fewer wasted samples).
    pub first_violation_trace: Option<usize>,
    /// Transition count of the original counterexample, when one was found.
    pub original_depth: Option<u32>,
    /// Transition count after delta-debugging the counterexample
    /// (`remix-checker::shrink`), when one was found.
    pub shrunk_depth: Option<u32>,
    /// Distinct fingerprint prefixes visited (coverage breadth).
    pub distinct_prefixes: usize,
    /// Hit count of the hottest prefix (coverage skew; uniform sampling drives this far
    /// above the mean).
    pub max_prefix_hits: u64,
    /// Distinct action definitions taken.
    pub distinct_actions: usize,
}

impl ExploreRow {
    /// Serializes the row as one JSON object (durations in milliseconds).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("mode", &self.mode)
            .string("spec", &self.spec)
            .u128("seed", self.seed.into())
            .u128("traces", self.traces as u128)
            .u128("steps", self.steps.into())
            .bool("violation_found", self.violation_found)
            .opt_u128(
                "time_to_violation",
                self.time_to_violation.map(|d| d.as_millis()),
            )
            .opt_u128(
                "first_violation_trace",
                self.first_violation_trace.map(|t| t as u128),
            )
            .opt_u128("original_depth", self.original_depth.map(u128::from))
            .opt_u128("shrunk_depth", self.shrunk_depth.map(u128::from))
            .u128("distinct_prefixes", self.distinct_prefixes as u128)
            .u128("max_prefix_hits", self.max_prefix_hits.into())
            .u128("distinct_actions", self.distinct_actions as u128)
            .finish()
    }
}

/// One row of the refinement matrix (the `BENCH_refine.json` artefact): whether one
/// composition simulates another under a granularity projection, with the state counts
/// and wall time of the dual exploration.
#[derive(Debug, Clone)]
pub struct RefineRow {
    /// The fine (concrete) specification.
    pub fine: String,
    /// The coarse (abstract) specification.
    pub coarse: String,
    /// The projection the comparison ran under.
    pub projection: String,
    /// The check mode (`"simulation"` or `"trace-inclusion"`).
    pub mode: String,
    /// The modelled code version.
    pub version: String,
    /// Number of servers in the configuration.
    pub servers: usize,
    /// The three-valued verdict: `"refines"`, `"diverges"`, or `"inconclusive"`.
    /// A budget-truncated run is `"inconclusive"` — never a definite verdict, so no
    /// consumer can mistake a truncated row for a proof (the old `refines: true` +
    /// `conclusive: false` pairing).
    pub verdict: String,
    /// Whether the verdict is definite (both sides explored far enough to decide).
    /// `"refines"`/`"diverges"` imply `true`; `"inconclusive"` implies `false`.
    pub conclusive: bool,
    /// The divergence kind when one was found.
    pub divergence: Option<String>,
    /// Transition count of the shrunk divergence witness.
    pub witness_depth: Option<u32>,
    /// Transition count of the witness before shrinking.
    pub witness_original_depth: Option<u32>,
    /// Distinct concrete states explored on the fine side.
    pub fine_states: usize,
    /// Distinct concrete states explored on the coarse side.
    pub coarse_states: usize,
    /// Distinct stable projections on the fine side.
    pub fine_projections: usize,
    /// Distinct stable projections on the coarse side.
    pub coarse_projections: usize,
    /// Fine stabilization edges checked against the coarse quotient.
    pub edges_checked: usize,
    /// The checker's memory budget in bytes (0 when unbudgeted — everything in RAM).
    pub mem_budget: u64,
    /// Fingerprint bytes the fine side spilled to sorted on-disk runs.
    pub fine_bytes_spilled: u64,
    /// Fingerprint bytes the coarse side spilled to sorted on-disk runs.
    pub coarse_bytes_spilled: u64,
    /// Wall-clock time of the check.
    pub time: Duration,
}

impl RefineRow {
    /// Serializes the row as one JSON object (durations in milliseconds).
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("fine", &self.fine)
            .string("coarse", &self.coarse)
            .string("projection", &self.projection)
            .string("mode", &self.mode)
            .string("version", &self.version)
            .u128("servers", self.servers as u128)
            .string("verdict", &self.verdict)
            .bool("conclusive", self.conclusive)
            .opt_string("divergence", self.divergence.as_deref())
            .opt_u128("witness_depth", self.witness_depth.map(u128::from))
            .opt_u128(
                "witness_original_depth",
                self.witness_original_depth.map(u128::from),
            )
            .u128("fine_states", self.fine_states as u128)
            .u128("coarse_states", self.coarse_states as u128)
            .u128("fine_projections", self.fine_projections as u128)
            .u128("coarse_projections", self.coarse_projections as u128)
            .u128("edges_checked", self.edges_checked as u128)
            .u128("mem_budget", self.mem_budget.into())
            .u128("fine_bytes_spilled", self.fine_bytes_spilled.into())
            .u128("coarse_bytes_spilled", self.coarse_bytes_spilled.into())
            .u128("time", self.time.as_millis())
            .finish()
    }
}

/// One row of the spec-soundness analysis artefact (`BENCH_analysis.json`): one
/// finding of one analysis tier, plus the spec it was found in and whether the
/// finding comes from the deliberately seeded regression (CI fails on any
/// soundness-class row with `seeded: false`).
#[derive(Debug, Clone)]
pub struct AnalysisRow {
    /// The analyzed specification (or `"workspace"` for source-lint rows).
    pub spec: String,
    /// The analysis tier (`effect_audit`, `commute_oracle`, `spec_lint`).
    pub tier: String,
    /// The severity class (`soundness`, `precision`, `convention`).
    pub class: String,
    /// The action name (semantic tiers) or lint rule id (spec lint).
    pub action: String,
    /// The offending instance label or source location.
    pub location: String,
    /// The semantic field whose write escaped the declaration, when applicable.
    pub field_path: String,
    /// The undeclared / unused effect bits in display form, when applicable.
    pub effect_bits: String,
    /// Human-readable explanation.
    pub detail: String,
    /// Estimated pruning lost to an over-wide declaration (precision rows only).
    pub estimated_lost_pruning: u64,
    /// Whether the finding comes from the seeded under-declaration regression.
    pub seeded: bool,
}

impl AnalysisRow {
    /// Builds a row from an analyzer finding.
    pub fn from_finding(spec: &str, finding: &remix_analyze::Finding, seeded: bool) -> Self {
        AnalysisRow {
            spec: spec.to_owned(),
            tier: finding.tier.as_str().to_owned(),
            class: finding.class.as_str().to_owned(),
            action: finding.action.clone(),
            location: finding.location.clone(),
            field_path: finding.field_path.clone(),
            effect_bits: finding.effect_bits.clone(),
            detail: finding.detail.clone(),
            estimated_lost_pruning: finding.estimated_lost_pruning,
            seeded,
        }
    }

    /// Serializes the row as one JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("spec", &self.spec)
            .string("tier", &self.tier)
            .string("class", &self.class)
            .string("action", &self.action)
            .string("location", &self.location)
            .string("field_path", &self.field_path)
            .string("effect_bits", &self.effect_bits)
            .string("detail", &self.detail)
            .u128("estimated_lost_pruning", self.estimated_lost_pruning.into())
            .bool("seeded", self.seeded)
            .finish()
    }
}

/// One row of the concurrency-soundness artefact (`BENCH_concurrency.json`): one
/// finding of the concurrency tiers (`concurrency_lint`, `lock_order`,
/// `schedule_fuzz`), plus the workload it was found on and whether it comes from a
/// deliberately seeded regression.  CI fails on any soundness-class row with
/// `seeded: false` and *requires* the seeded rank-inversion and seeded
/// determinism-divergence rows, so the pass keeps catching the incident classes it
/// was built for.
#[derive(Debug, Clone)]
pub struct ConcurrencyRow {
    /// The audited workload (an engine preset name, or `"workspace"` for lint rows).
    pub workload: String,
    /// The analysis tier (`concurrency_lint`, `lock_order`, `schedule_fuzz`).
    pub tier: String,
    /// The severity class (`soundness`, `convention`).
    pub class: String,
    /// The lint rule id (`raw-sync-import`, …) or finding kind (`rank-inversion`,
    /// `order-cycle`, `determinism-divergence`).
    pub action: String,
    /// The offending source location, lock-site pair, or oracle cell (which carries
    /// the replayable `workers=… seed=…` coordinates for divergence rows).
    pub location: String,
    /// Human-readable explanation, including witness stacks / replay recipe.
    pub detail: String,
    /// Whether the finding comes from a deliberately seeded regression.
    pub seeded: bool,
}

impl ConcurrencyRow {
    /// Builds a row from an analyzer finding.
    pub fn from_finding(workload: &str, finding: &remix_analyze::Finding, seeded: bool) -> Self {
        ConcurrencyRow {
            workload: workload.to_owned(),
            tier: finding.tier.as_str().to_owned(),
            class: finding.class.as_str().to_owned(),
            action: finding.action.clone(),
            location: finding.location.clone(),
            detail: finding.detail.clone(),
            seeded,
        }
    }

    /// Serializes the row as one JSON object.
    pub fn to_json(&self) -> String {
        JsonObject::new()
            .string("workload", &self.workload)
            .string("tier", &self.tier)
            .string("class", &self.class)
            .string("action", &self.action)
            .string("location", &self.location)
            .string("detail", &self.detail)
            .bool("seeded", self.seeded)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrency_rows_serialize_to_json() {
        let finding = remix_analyze::Finding {
            tier: remix_analyze::Tier::LockOrder,
            class: remix_analyze::FindingClass::Soundness,
            action: "rank-inversion".to_owned(),
            location: "seeded.outer -> seeded.inner".to_owned(),
            field_path: String::new(),
            effect_bits: String::new(),
            detail: "lock acquired against the declared hierarchy".to_owned(),
            estimated_lost_pruning: 0,
        };
        let row = ConcurrencyRow::from_finding("seeded-inversion", &finding, true);
        let json = row.to_json();
        assert!(json.contains("\"workload\":\"seeded-inversion\""));
        assert!(json.contains("\"tier\":\"lock_order\""));
        assert!(json.contains("\"class\":\"soundness\""));
        assert!(json.contains("\"action\":\"rank-inversion\""));
        assert!(json.contains("\"seeded\":true"));
    }

    #[test]
    fn analysis_rows_serialize_to_json() {
        let finding = remix_analyze::Finding {
            tier: remix_analyze::Tier::EffectAudit,
            class: remix_analyze::FindingClass::Soundness,
            action: "NodeRestart".to_owned(),
            location: "NodeRestart(1)".to_owned(),
            field_path: "link[0][1]".to_owned(),
            effect_bits: "channel[0->1]".to_owned(),
            detail: "observed write outside declared footprint".to_owned(),
            estimated_lost_pruning: 0,
        };
        let row = AnalysisRow::from_finding("mSpec-3", &finding, true);
        let json = row.to_json();
        assert!(json.contains("\"spec\":\"mSpec-3\""));
        assert!(json.contains("\"tier\":\"effect_audit\""));
        assert!(json.contains("\"class\":\"soundness\""));
        assert!(json.contains("\"field_path\":\"link[0][1]\""));
        assert!(json.contains("\"effect_bits\":\"channel[0->1]\""));
        assert!(json.contains("\"seeded\":true"));
    }

    #[test]
    fn refine_rows_serialize_to_json() {
        let row = RefineRow {
            fine: "SysSpec".to_owned(),
            coarse: "mSpec-1".to_owned(),
            projection: "Coarse⊑Baseline(Election+Discovery)".to_owned(),
            mode: "simulation".to_owned(),
            version: "ZooKeeper v3.9.1".to_owned(),
            servers: 3,
            verdict: "refines".to_owned(),
            conclusive: true,
            divergence: None,
            witness_depth: None,
            witness_original_depth: None,
            fine_states: 65_653,
            coarse_states: 181,
            fine_projections: 181,
            coarse_projections: 181,
            edges_checked: 704,
            mem_budget: 0,
            fine_bytes_spilled: 0,
            coarse_bytes_spilled: 0,
            time: Duration::from_millis(5_400),
        };
        let json = row.to_json();
        assert!(json.contains("\"verdict\":\"refines\""));
        assert!(json.contains("\"divergence\":null"));
        assert!(json.contains("\"time\":5400"));
        let diverging = RefineRow {
            verdict: "diverges".to_owned(),
            divergence: Some("MissingInCoarse".to_owned()),
            witness_depth: Some(12),
            witness_original_depth: Some(31),
            ..row.clone()
        };
        let json = diverging.to_json();
        assert!(json.contains("\"divergence\":\"MissingInCoarse\""));
        assert!(json.contains("\"witness_depth\":12"));

        // A truncated run: the verdict string itself says inconclusive, and the spill
        // columns surface the out-of-core activity.
        let truncated = RefineRow {
            verdict: "inconclusive".to_owned(),
            conclusive: false,
            mem_budget: 1 << 30,
            fine_bytes_spilled: 123_456,
            coarse_bytes_spilled: 0,
            ..row
        };
        let json = truncated.to_json();
        assert!(json.contains("\"verdict\":\"inconclusive\""));
        assert!(
            !json.contains("\"refines\""),
            "no boolean refines field can pair a definite verdict with conclusive:false"
        );
        assert!(json.contains("\"mem_budget\":1073741824"));
        assert!(json.contains("\"fine_bytes_spilled\":123456"));
    }

    #[test]
    fn explore_rows_serialize_to_json() {
        let row = ExploreRow {
            mode: "coverage-guided".to_owned(),
            spec: "mSpec-3".to_owned(),
            seed: 7,
            traces: 37,
            steps: 1480,
            violation_found: true,
            time_to_violation: Some(Duration::from_millis(250)),
            first_violation_trace: Some(36),
            original_depth: Some(40),
            shrunk_depth: Some(11),
            distinct_prefixes: 512,
            max_prefix_hits: 99,
            distinct_actions: 12,
        };
        let json = row.to_json();
        assert!(json.contains("\"mode\":\"coverage-guided\""));
        assert!(json.contains("\"time_to_violation\":250"));
        assert!(json.contains("\"shrunk_depth\":11"));
        let none = ExploreRow {
            violation_found: false,
            time_to_violation: None,
            first_violation_trace: None,
            original_depth: None,
            shrunk_depth: None,
            ..row
        };
        assert!(none.to_json().contains("\"time_to_violation\":null"));
    }

    #[test]
    fn rows_serialize_to_json() {
        let row = BugReport {
            bug: "ZK-4643".to_owned(),
            impact: "Data loss".to_owned(),
            spec: "mSpec-2".to_owned(),
            time: Duration::from_millis(1700),
            depth: 21,
            states: 208_018,
            invariant: "I-8".to_owned(),
            detected: true,
        };
        let json = row.to_json();
        assert!(json.contains("\"ZK-4643\""));
        assert!(json.contains("\"time\":1700"));

        let eff = EfficiencyRow {
            spec: "mSpec-3".to_owned(),
            time: Duration::from_secs(11),
            depth: 13,
            states: 77_179,
            violations: 1,
            violated_invariants: vec!["I-10".to_owned()],
            completed: true,
        };
        assert!(eff.to_json().contains("I-10"));

        let fix = FixVerificationRow {
            pull_request: "PR-1848".to_owned(),
            spec: "mSpec-3+".to_owned(),
            time: Duration::from_secs(274),
            depth: 21,
            states: 8_166_775,
            invariant: Some("I-8".to_owned()),
        };
        assert!(fix.to_json().contains("PR-1848"));
        let none = FixVerificationRow {
            invariant: None,
            ..fix
        };
        assert!(none.to_json().contains("\"invariant\":null"));
    }
}
