//! Report rows: the structured data behind the tables of the evaluation section.
//!
//! The benchmark harness (`remix-bench`) fills these rows and prints them in the same
//! layout as the paper (Tables 3-6); they are also serializable so EXPERIMENTS.md can be
//! regenerated from JSON.

use std::time::Duration;

use serde::Serialize;

/// One row of Table 4 (bug detection) or of the per-bug appendix.
#[derive(Debug, Clone, Serialize)]
pub struct BugReport {
    /// The ZooKeeper issue, e.g. `"ZK-4643"`.
    pub bug: String,
    /// The impact reported by the paper (data loss, inconsistency, ...).
    pub impact: String,
    /// The most efficient specification that detects it.
    pub spec: String,
    /// Time to the first violation.
    #[serde(with = "duration_millis")]
    pub time: Duration,
    /// Depth (transitions) of the counterexample.
    pub depth: u32,
    /// Distinct states explored when the violation was found.
    pub states: usize,
    /// The violated invariant.
    pub invariant: String,
    /// Whether the bug was detected at all within the budget.
    pub detected: bool,
}

/// One row of Table 5 (verification efficiency).
#[derive(Debug, Clone, Serialize)]
pub struct EfficiencyRow {
    /// The specification (SysSpec, mSpec-1..4).
    pub spec: String,
    /// Wall-clock time of the run.
    #[serde(with = "duration_millis")]
    pub time: Duration,
    /// Maximum depth reached.
    pub depth: u32,
    /// Distinct states explored.
    pub states: usize,
    /// Number of violations found (0 in first-violation mode when none).
    pub violations: usize,
    /// The violated invariants.
    pub violated_invariants: Vec<String>,
    /// Whether the run finished within the time budget.
    pub completed: bool,
}

/// One row of Table 6 (verifying bug-fix pull requests).
#[derive(Debug, Clone, Serialize)]
pub struct FixVerificationRow {
    /// The pull request.
    pub pull_request: String,
    /// The base specification used (mSpec-3+).
    pub spec: String,
    /// Time to the first violation (or the full run when none).
    #[serde(with = "duration_millis")]
    pub time: Duration,
    /// Depth of the counterexample.
    pub depth: u32,
    /// Distinct states explored.
    pub states: usize,
    /// The first violated invariant, if any.
    pub invariant: Option<String>,
}

mod duration_millis {
    use std::time::Duration;

    use serde::Serializer;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_u128(d.as_millis())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_serialize_to_json() {
        let row = BugReport {
            bug: "ZK-4643".to_owned(),
            impact: "Data loss".to_owned(),
            spec: "mSpec-2".to_owned(),
            time: Duration::from_millis(1700),
            depth: 21,
            states: 208_018,
            invariant: "I-8".to_owned(),
            detected: true,
        };
        let json = serde_json::to_string(&row).unwrap();
        assert!(json.contains("\"ZK-4643\""));
        assert!(json.contains("\"time\":1700"));

        let eff = EfficiencyRow {
            spec: "mSpec-3".to_owned(),
            time: Duration::from_secs(11),
            depth: 13,
            states: 77_179,
            violations: 1,
            violated_invariants: vec!["I-10".to_owned()],
            completed: true,
        };
        assert!(serde_json::to_string(&eff).unwrap().contains("I-10"));

        let fix = FixVerificationRow {
            pull_request: "PR-1848".to_owned(),
            spec: "mSpec-3+".to_owned(),
            time: Duration::from_secs(274),
            depth: 21,
            states: 8_166_775,
            invariant: Some("I-8".to_owned()),
        };
        assert!(serde_json::to_string(&fix).unwrap().contains("PR-1848"));
    }
}
