//! The verifier: end-to-end model-checking runs over composed specifications.
//!
//! The verifier is the piece of Remix that drives the model checker and turns its raw
//! output into the measurements the paper reports: per-bug detection rows (Table 4),
//! per-specification efficiency rows (Table 5) and fix-verification rows (Table 6).

use std::fmt;
use std::time::Duration;

use remix_analyze::AnalysisReport;
use remix_checker::{
    check_bfs, check_refinement, shrink_violation, CheckMode, CheckOptions, CheckOutcome,
    CorpusOptions, RefineOptions, RefineOutcome, RefineVerdict, SpillConfig, StoreMode,
    SymmetryMode,
};
use remix_spec::{CompositionPlan, Invariant, ModuleId, Spec, SpecError, Trace};
use remix_zab::{projection_between, ClusterConfig, SpecPreset, ZabState};

use crate::composer::Composer;
use crate::report::RefineRow;

/// A structured verification-setup failure.
///
/// Earlier versions panicked out of [`Verifier::check_refinement`] when the requested
/// presets did not form a refinement pair or a composition plan failed to build; both
/// are now reported as values so harnesses (benches, CI matrices, long-running
/// verification loops) can skip or report a bad pairing instead of aborting the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The two presets/plans do not form a refinement pair: the `coarse` side must
    /// select a strictly coarser granularity than the `fine` side for at least one
    /// module (note the argument order: fine first, coarse second).
    NotARefinementPair {
        /// Name of the fine-side plan.
        fine: String,
        /// Name of the coarse-side plan.
        coarse: String,
    },
    /// A plan that *does* form a refinement pair failed to build — it names a
    /// module/granularity combination the specification library does not provide.
    PlanBuild {
        /// Name of the plan that failed to build.
        plan: String,
        /// The underlying specification error.
        source: SpecError,
    },
    /// The pre-check analysis gate ([`Verifier::verify_spec_gated`]) found
    /// soundness-class findings: some declared [`Effect`](remix_spec::Effect)
    /// footprint is narrower than the writes the effect audit observed (or a
    /// declared-independent pair fails its commute diamond).  Model checking with
    /// sleep-set POR or incremental canonicalization on such a specification can
    /// silently drop states, so the verifier refuses to run it.
    UnsoundFootprint {
        /// Name of the analyzed specification.
        spec: String,
        /// The rendered soundness findings (one per line of
        /// [`remix_analyze::Finding`]'s display form).
        findings: Vec<String>,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::NotARefinementPair { fine, coarse } => write!(
                f,
                "presets do not form a refinement pair: {coarse} must strictly abstract {fine} \
                 (check the argument order: fine first, coarse second)"
            ),
            VerifyError::PlanBuild { plan, source } => {
                write!(f, "composition plan {plan} does not build: {source}")
            }
            VerifyError::UnsoundFootprint { spec, findings } => {
                write!(
                    f,
                    "specification {spec} has {} unsound effect declaration(s); first: {}",
                    findings.len(),
                    findings.first().map(String::as_str).unwrap_or("<none>")
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Options of a verification run.
#[derive(Debug, Clone)]
pub struct VerifierOptions {
    /// Stop at the first violation or run to completion (Table 5a vs 5b).
    pub mode: CheckMode,
    /// Wall-clock budget of the run.
    pub time_budget: Duration,
    /// Maximum number of distinct states explored.
    pub max_states: Option<usize>,
    /// Worker threads for frontier expansion (TLC's `-workers`, §4.4).
    pub workers: usize,
    /// Lock stripes of the checker's discovered-state set; see
    /// [`CheckOptions::shards`](remix_checker::CheckOptions).
    pub shards: usize,
    /// Per-stripe successor batch size; see
    /// [`CheckOptions::batch_size`](remix_checker::CheckOptions).
    pub batch_size: usize,
    /// Which backend the checker keeps discovered states in: the compact full-state
    /// arena, or the TLC-style memory-bounded fingerprint-only store; see
    /// [`StoreMode`].
    pub store_mode: StoreMode,
    /// Whether the checker dedups on canonical representatives under the
    /// specification's symmetry group (all Zab presets attach one: `ZabState` is
    /// symmetric under server-id permutation); violation traces are de-canonicalized
    /// before they are reported.  See [`SymmetryMode`].
    pub symmetry: SymmetryMode,
    /// Memory budget and spill directory of the checker's out-of-core tier; defaults
    /// honour `REMIX_MEM_BUDGET` / `REMIX_SPILL_DIR`.  See
    /// [`SpillConfig`].
    pub spill: SpillConfig,
    /// Owner-routed sharding of the discovered-state set; see
    /// [`CheckOptions::route_by_owner`](remix_checker::CheckOptions).
    pub route_by_owner: bool,
    /// Whether the checker prunes provably redundant interleavings of independent
    /// actions with sleep sets (the default honours `REMIX_POR`); see
    /// [`CheckOptions::por`](remix_checker::CheckOptions).
    pub por: bool,
    /// Restrict checking to these invariant identifiers (empty = all selected by the
    /// composition).  Used by the Table 4 harness to attribute a run to one bug.
    pub only_invariants: Vec<&'static str>,
    /// Delta-debug every counterexample trace after the run
    /// (`remix-checker::shrink_violation`): each shrunk trace is a locally minimal
    /// legal execution whose final state still violates the same invariant.  BFS
    /// counterexamples are already depth-minimal (§4.4), so this mostly matters for
    /// traces that reach the verifier from simulation or DFS; the shrunk forms are
    /// reported in [`VerificationRun::shrunk`] without touching the raw outcome.
    pub shrink_counterexamples: bool,
}

impl Default for VerifierOptions {
    fn default() -> Self {
        let check = CheckOptions::default();
        VerifierOptions {
            mode: CheckMode::FirstViolation,
            time_budget: Duration::from_secs(120),
            max_states: None,
            workers: 1,
            shards: check.shards,
            batch_size: check.batch_size,
            store_mode: check.store_mode,
            symmetry: check.symmetry,
            spill: check.spill,
            route_by_owner: check.route_by_owner,
            por: check.por,
            only_invariants: Vec::new(),
            shrink_counterexamples: false,
        }
    }
}

impl VerifierOptions {
    /// Run-to-completion mode with the paper's violation limit of 10,000.
    pub fn completion() -> Self {
        VerifierOptions {
            mode: CheckMode::Completion {
                violation_limit: 10_000,
            },
            ..Default::default()
        }
    }

    /// Restricts checking to a single invariant.
    pub fn targeting(mut self, invariant: &'static str) -> Self {
        self.only_invariants = vec![invariant];
        self
    }

    /// Sets the time budget.
    pub fn with_time_budget(mut self, budget: Duration) -> Self {
        self.time_budget = budget;
        self
    }

    /// Sets the distinct-state cap.
    pub fn with_max_states(mut self, states: usize) -> Self {
        self.max_states = Some(states);
        self
    }

    /// Sets the number of worker threads expanding each BFS frontier.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Selects the discovered-state store backend.
    pub fn with_store_mode(mut self, mode: StoreMode) -> Self {
        self.store_mode = mode;
        self
    }

    /// Selects the symmetry-reduction mode.
    pub fn with_symmetry(mut self, mode: SymmetryMode) -> Self {
        self.symmetry = mode;
        self
    }

    /// Enables or disables sleep-set partial-order reduction.
    pub fn with_por(mut self, por: bool) -> Self {
        self.por = por;
        self
    }

    /// Sets the checker's memory budget in bytes (fingerprint runs and — in the
    /// full-state store — frontier levels beyond it spill to disk).
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.spill.budget_bytes = Some(bytes);
        self
    }

    /// Replaces the whole out-of-core configuration.
    pub fn with_spill(mut self, spill: SpillConfig) -> Self {
        self.spill = spill;
        self
    }

    /// Enables counterexample shrinking.
    pub fn with_shrinking(mut self) -> Self {
        self.shrink_counterexamples = true;
        self
    }
}

/// A counterexample minimized by delta debugging after a verification run.
#[derive(Debug, Clone)]
pub struct ShrunkCounterexample {
    /// The violated invariant the shrunk trace still violates.
    pub invariant: &'static str,
    /// Transition count of the checker's original counterexample.
    pub original_depth: usize,
    /// The locally minimal violating trace (never longer than the original).
    pub trace: Trace<ZabState>,
}

/// The result of one verification run.
#[derive(Debug)]
pub struct VerificationRun {
    /// The name of the checked specification.
    pub spec_name: String,
    /// The raw model-checking outcome.
    pub outcome: CheckOutcome<ZabState>,
    /// Shrunk counterexamples, one per recorded violation (filled when
    /// [`VerifierOptions::shrink_counterexamples`] is set; empty otherwise).
    pub shrunk: Vec<ShrunkCounterexample>,
}

impl VerificationRun {
    /// `true` when no violation was found.
    pub fn passed(&self) -> bool {
        self.outcome.passed()
    }

    /// The identifier of the first violated invariant, if any.
    pub fn first_violated_invariant(&self) -> Option<&'static str> {
        self.outcome.first_violation().map(|v| v.invariant)
    }
}

/// The verifier: composes a specification (or takes one) and model-checks it.
#[derive(Debug, Clone)]
pub struct Verifier {
    /// The configuration verification runs are performed under.
    pub config: ClusterConfig,
}

impl Verifier {
    /// Creates a verifier for a configuration.
    pub fn new(config: ClusterConfig) -> Self {
        Verifier { config }
    }

    /// Verifies one of the preset mixed-grained specifications.
    pub fn verify_preset(&self, preset: SpecPreset, options: &VerifierOptions) -> VerificationRun {
        let composed = Composer::new(self.config)
            .compose_preset(preset)
            .expect("preset composes");
        self.verify_spec(composed.spec, options)
    }

    /// Verifies an already-composed specification.
    pub fn verify_spec(&self, spec: Spec<ZabState>, options: &VerifierOptions) -> VerificationRun {
        let spec = if options.only_invariants.is_empty() {
            spec
        } else {
            restrict_invariants(spec, &options.only_invariants)
        };
        let check = CheckOptions {
            mode: options.mode,
            max_depth: None,
            time_budget: Some(options.time_budget),
            max_states: options.max_states,
            workers: options.workers,
            shards: options.shards,
            batch_size: options.batch_size,
            collect_traces: true,
            store_mode: options.store_mode,
            symmetry: options.symmetry,
            spill: options.spill.clone(),
            route_by_owner: options.route_by_owner,
            por: options.por,
        };
        let outcome = check_bfs(&spec, &check);
        let shrunk = if options.shrink_counterexamples {
            outcome
                .violations
                .iter()
                .filter(|v| !v.trace.is_empty())
                .map(|v| {
                    let result = shrink_violation(&spec, &v.trace, v.invariant);
                    ShrunkCounterexample {
                        invariant: v.invariant,
                        original_depth: result.original_depth,
                        trace: result.trace,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        VerificationRun {
            spec_name: spec.name.clone(),
            outcome,
            shrunk,
        }
    }
}

impl Verifier {
    /// Runs the semantic analysis tiers — effect audit and commute oracle
    /// (`remix-analyze`) — over a bounded BFS corpus of a preset composition.
    ///
    /// The corpus is explored without symmetry or partial-order reduction: those are
    /// exactly the reductions whose soundness the analysis establishes.
    pub fn analyze_preset(&self, preset: SpecPreset, corpus: CorpusOptions) -> AnalysisReport {
        let composed = Composer::new(self.config)
            .compose_preset(preset)
            .expect("preset composes");
        self.analyze_spec(&composed.spec, corpus)
    }

    /// Runs the semantic analysis tiers over an already-composed specification.
    pub fn analyze_spec(&self, spec: &Spec<ZabState>, corpus: CorpusOptions) -> AnalysisReport {
        remix_analyze::analyze_spec(spec, corpus)
    }

    /// Verifies a preset behind the analysis pre-check gate: the semantic analysis
    /// runs first, and any soundness-class finding aborts the run with
    /// [`VerifyError::UnsoundFootprint`] instead of model checking on declarations
    /// that could silently drop states.
    pub fn verify_preset_gated(
        &self,
        preset: SpecPreset,
        options: &VerifierOptions,
        corpus: CorpusOptions,
    ) -> Result<VerificationRun, VerifyError> {
        let composed = Composer::new(self.config)
            .compose_preset(preset)
            .expect("preset composes");
        self.verify_spec_gated(composed.spec, options, corpus)
    }

    /// Verifies an already-composed specification behind the analysis gate; see
    /// [`Verifier::verify_preset_gated`].
    pub fn verify_spec_gated(
        &self,
        spec: Spec<ZabState>,
        options: &VerifierOptions,
        corpus: CorpusOptions,
    ) -> Result<VerificationRun, VerifyError> {
        let report = self.analyze_spec(&spec, corpus);
        if report.has_soundness() {
            return Err(VerifyError::UnsoundFootprint {
                spec: spec.name.clone(),
                findings: report.soundness().map(|f| f.to_string()).collect(),
            });
        }
        Ok(self.verify_spec(spec, options))
    }
}

/// The result of one refinement check between two compositions.
#[derive(Debug)]
pub struct RefinementRun {
    /// The raw refinement outcome, including the (shrunk) witness on divergence.
    pub outcome: RefineOutcome<ZabState>,
    /// The configuration the check ran under.
    pub config: ClusterConfig,
}

impl RefinementRun {
    /// The definite verdict when there is one: `Some(true)` only when the coarse
    /// composition simulates the fine one over the *whole* reachable space,
    /// `Some(false)` on a concrete divergence, `None` when a budget truncated the
    /// check (nothing was proved either way).
    pub fn refines(&self) -> Option<bool> {
        self.outcome.refines()
    }

    /// The three-valued verdict of the check.
    pub fn verdict(&self) -> RefineVerdict {
        self.outcome.verdict()
    }

    /// The modules of the actions in the divergence witness that exist only in the
    /// fine composition — the localization of the divergence (e.g. the thread actions
    /// of the Synchronization module for a ZK-3023 witness).
    ///
    /// Empty when the check refines, or when every witness action also exists on the
    /// coarse side (the divergence then comes from an interleaving, not a fine-only
    /// action).
    pub fn culprit_modules(&self, fine: &Spec<ZabState>, coarse: &Spec<ZabState>) -> Vec<ModuleId> {
        let Some(divergence) = &self.outcome.divergence else {
            return Vec::new();
        };
        let coarse_names: std::collections::BTreeSet<&str> =
            coarse.actions().map(|a| a.name).collect();
        let mut culprits: std::collections::BTreeSet<ModuleId> = Default::default();
        for label in divergence.witness.action_labels() {
            let name = label.split('(').next().unwrap_or(label);
            if coarse_names.contains(name) {
                continue;
            }
            if let Some(action) = fine.actions().find(|a| a.name == name) {
                culprits.insert(action.module);
            }
        }
        culprits.into_iter().collect()
    }

    /// Renders the result as a row of the refinement matrix.
    pub fn row(&self) -> RefineRow {
        RefineRow {
            fine: self.outcome.fine_spec.clone(),
            coarse: self.outcome.coarse_spec.clone(),
            projection: self.outcome.projection.clone(),
            mode: self.outcome.mode.to_string(),
            version: self.config.version.label().to_owned(),
            servers: self.config.num_servers,
            verdict: self.outcome.verdict().as_str().to_owned(),
            conclusive: self.outcome.conclusive(),
            divergence: self
                .outcome
                .divergence
                .as_ref()
                .map(|d| format!("{:?}", d.kind)),
            witness_depth: self
                .outcome
                .divergence
                .as_ref()
                .map(|d| d.witness.depth() as u32),
            witness_original_depth: self
                .outcome
                .divergence
                .as_ref()
                .map(|d| d.original_depth as u32),
            fine_states: self.outcome.stats.fine_states,
            coarse_states: self.outcome.stats.coarse_states,
            fine_projections: self.outcome.stats.fine_projections,
            coarse_projections: self.outcome.stats.coarse_projections,
            edges_checked: self.outcome.stats.edges_checked,
            mem_budget: self
                .outcome
                .stats
                .fine_spill
                .budget_bytes
                .max(self.outcome.stats.coarse_spill.budget_bytes),
            fine_bytes_spilled: self.outcome.stats.fine_spill.bytes_spilled,
            coarse_bytes_spilled: self.outcome.stats.coarse_spill.bytes_spilled,
            time: self.outcome.stats.elapsed,
        }
    }
}

impl Verifier {
    /// Checks that the `coarse` preset simulates the `fine` preset under the
    /// granularity projection derived from their composition plans.
    ///
    /// This is the semantic verification of the paper's interaction-preservation claim
    /// (§3.2): it is what justifies trusting mixed-grained verification results
    /// obtained with the coarse composition.
    ///
    /// Returns [`VerifyError::NotARefinementPair`] when `coarse` does not select a
    /// strictly coarser granularity than `fine` for at least one module (note the
    /// argument order: the *fine* preset comes first), and [`VerifyError::PlanBuild`]
    /// when a preset's plan names a module/granularity combination the specification
    /// library does not provide.
    pub fn check_refinement(
        &self,
        fine: SpecPreset,
        coarse: SpecPreset,
        options: &RefineOptions,
    ) -> Result<RefinementRun, VerifyError> {
        self.check_refinement_plans(&fine.plan(), &coarse.plan(), options)
    }

    /// Checks refinement between two arbitrary composition plans.
    ///
    /// Returns [`VerifyError::NotARefinementPair`] when the plans do not form a
    /// refinement pair (identical granularities everywhere, or the `coarse` plan does
    /// not abstract the `fine` plan), and [`VerifyError::PlanBuild`] when a plan that
    /// *does* form a refinement pair fails to build — a set-up error reported with the
    /// underlying [`remix_spec::SpecError`] instead of the panic earlier versions
    /// raised.
    pub fn check_refinement_plans(
        &self,
        fine_plan: &CompositionPlan,
        coarse_plan: &CompositionPlan,
        options: &RefineOptions,
    ) -> Result<RefinementRun, VerifyError> {
        let projection =
            projection_between(fine_plan, coarse_plan, &self.config).ok_or_else(|| {
                VerifyError::NotARefinementPair {
                    fine: fine_plan.name.clone(),
                    coarse: coarse_plan.name.clone(),
                }
            })?;
        let fine = remix_zab::build_from_plan(fine_plan, &self.config).map_err(|source| {
            VerifyError::PlanBuild {
                plan: fine_plan.name.clone(),
                source,
            }
        })?;
        let coarse = remix_zab::build_from_plan(coarse_plan, &self.config).map_err(|source| {
            VerifyError::PlanBuild {
                plan: coarse_plan.name.clone(),
                source,
            }
        })?;
        let outcome = check_refinement(&fine, &coarse, &projection, options);
        Ok(RefinementRun {
            outcome,
            config: self.config,
        })
    }
}

/// Keeps only the named invariants of a specification (used to attribute a run to one
/// bug in the Table 4 harness).
fn restrict_invariants(mut spec: Spec<ZabState>, ids: &[&'static str]) -> Spec<ZabState> {
    let kept: Vec<Invariant<ZabState>> = spec
        .invariants
        .into_iter()
        .filter(|inv| ids.contains(&inv.id))
        .collect();
    spec.invariants = kept;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_zab::CodeVersion;

    #[test]
    fn swapped_refinement_presets_report_an_error_instead_of_panicking() {
        let verifier = Verifier::new(ClusterConfig::small(CodeVersion::FinalFix));
        // Argument order swapped: the "coarse" side is strictly finer than the "fine"
        // side, so no projection exists between the plans.
        let err = verifier
            .check_refinement(
                SpecPreset::MSpec1,
                SpecPreset::SysSpec,
                &RefineOptions::default(),
            )
            .expect_err("swapped presets are not a refinement pair");
        match &err {
            VerifyError::NotARefinementPair { fine, coarse } => {
                assert_eq!(fine, SpecPreset::MSpec1.plan().name.as_str());
                assert_eq!(coarse, SpecPreset::SysSpec.plan().name.as_str());
            }
            other => panic!("unexpected error: {other:?}"),
        }
        let rendered = err.to_string();
        assert!(rendered.contains("refinement pair"), "{rendered}");
    }

    #[test]
    fn analysis_gate_rejects_underdeclared_footprints() {
        let config = ClusterConfig::small(CodeVersion::FinalFix).with_transactions(1);
        let verifier = Verifier::new(config);
        let corpus = CorpusOptions {
            max_states: 1_500,
            max_depth: 64,
        };

        // The honest workspace passes the gate (and a tiny bounded check).
        let composed = Composer::new(config)
            .compose_preset(SpecPreset::MSpec3)
            .expect("preset composes");
        let run = verifier.verify_spec_gated(
            composed.spec,
            &VerifierOptions::default()
                .with_time_budget(Duration::from_secs(10))
                .with_max_states(500),
            corpus,
        );
        assert!(run.is_ok(), "honest spec must pass the gate: {run:?}");

        // The seeded NodeRestart under-declaration is refused before checking.
        let mut seeded = Composer::new(config)
            .compose_preset(SpecPreset::MSpec3)
            .expect("preset composes")
            .spec;
        remix_zab::underdeclare_node_restart(&mut seeded);
        let err = verifier
            .verify_spec_gated(seeded, &VerifierOptions::default(), corpus)
            .expect_err("under-declared footprint must be refused");
        match &err {
            VerifyError::UnsoundFootprint { findings, .. } => {
                assert!(
                    findings.iter().any(|f| f.contains("NodeRestart")),
                    "findings name the action: {findings:?}"
                );
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(err.to_string().contains("unsound effect declaration"));
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "expensive model-checking run; use --release"
    )]
    fn fixed_version_passes_mspec3_within_bounds() {
        let config = ClusterConfig::small(CodeVersion::FinalFix).with_transactions(1);
        let verifier = Verifier::new(config);
        let run = verifier.verify_preset(
            SpecPreset::MSpec3,
            &VerifierOptions::default()
                .with_time_budget(Duration::from_secs(30))
                .with_max_states(60_000),
        );
        assert!(run.passed(), "final fix should pass: {}", run.outcome);
    }

    #[test]
    #[cfg_attr(
        debug_assertions,
        ignore = "expensive model-checking run; use --release"
    )]
    fn buggy_version_fails_mspec3_and_invariant_filter_works() {
        let config = ClusterConfig::small(CodeVersion::V391);
        let verifier = Verifier::new(config);
        let run = verifier.verify_preset(
            SpecPreset::MSpec3,
            &VerifierOptions::default().with_time_budget(Duration::from_secs(60)),
        );
        assert!(!run.passed());
        // Restricting to I-12 must attribute the run to the bad-acknowledgement bug.
        let run = verifier.verify_preset(
            SpecPreset::MSpec3,
            &VerifierOptions::default()
                .targeting("I-12")
                .with_time_budget(Duration::from_secs(60)),
        );
        assert_eq!(run.first_violated_invariant(), Some("I-12"));
    }
}
