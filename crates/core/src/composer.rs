//! The composer: assembling mixed-grained specifications and validating coarsenings.

use remix_checker::{check_refinement, RefineOptions, RefineOutcome};
use remix_spec::{
    check_interaction_preservation, interaction_variables, CompositionPlan, Granularity, ModuleId,
    PreservationReport, Spec, SpecError,
};
use remix_zab::presets::{build_from_plan, module_at, SpecPreset};
use remix_zab::projection_between;
use remix_zab::{ClusterConfig, ZabState};

/// A composed specification together with the metadata Remix reports about it.
#[derive(Debug)]
pub struct ComposedSpec {
    /// The composed, mixed-grained specification.
    pub spec: Spec<ZabState>,
    /// The composition plan it was built from (the Table 1 row).
    pub plan: CompositionPlan,
    /// Interaction-preservation report for the group of coarsened modules (coarsened
    /// modules are checked together because a coarsening such as `ElectionAndDiscovery`
    /// merges several modules into one action).
    pub preservation: Vec<(Vec<ModuleId>, PreservationReport)>,
    /// Semantic refinement outcome for the coarsened modules: the composition compared
    /// against its un-coarsened counterpart by parallel state-space exploration.
    /// `None` until [`Composer::compose_checked`] runs the check (the syntactic
    /// footprint check alone cannot tell whether a coarse action drops or invents
    /// behaviour — see `remix-checker::refine`).
    pub refinement: Option<RefineOutcome<ZabState>>,
}

impl ComposedSpec {
    /// Returns `true` when every coarsened module passed the interaction-preservation
    /// check — the syntactic footprint constraints of §3.2 *and*, when
    /// [`Composer::compose_checked`] was used, the semantic refinement check against
    /// the un-coarsened composition.
    pub fn interaction_preserved(&self) -> bool {
        // An inconclusive (budget-truncated) refinement check is *not* preservation
        // evidence: only a conclusive passing verdict counts.
        self.preservation.iter().all(|(_, r)| r.preserved())
            && self
                .refinement
                .as_ref()
                .is_none_or(|r| r.refines() == Some(true))
    }
}

/// The Remix composer: builds mixed-grained specifications from the specification
/// library and validates the interaction-preservation constraints of coarsened modules.
#[derive(Debug, Clone)]
pub struct Composer {
    /// The model-checking configuration the composed specifications are built for.
    pub config: ClusterConfig,
}

impl Composer {
    /// Creates a composer for a configuration.
    pub fn new(config: ClusterConfig) -> Self {
        Composer { config }
    }

    /// Composes one of the preset mixed-grained specifications of Table 1.
    pub fn compose_preset(&self, preset: SpecPreset) -> Result<ComposedSpec, SpecError> {
        self.compose(&preset.plan())
    }

    /// Composes a mixed-grained specification from an arbitrary plan, checking
    /// interaction preservation for every module selected at the coarse granularity.
    pub fn compose(&self, plan: &CompositionPlan) -> Result<ComposedSpec, SpecError> {
        let spec = build_from_plan(plan, &self.config)?;
        let preservation = self.check_coarsenings(plan);
        Ok(ComposedSpec {
            spec,
            plan: plan.clone(),
            preservation,
            refinement: None,
        })
    }

    /// Composes a specification like [`compose`](Self::compose) and additionally runs
    /// the *semantic* interaction-preservation check: the composition is compared, by
    /// refinement checking, against its un-coarsened counterpart (every coarsened
    /// module replaced by its baseline specification).  After this,
    /// [`ComposedSpec::interaction_preserved`] is a *checked* property — a coarse
    /// action that dropped an update or invented a behaviour makes it `false` and the
    /// stored [`ComposedSpec::refinement`] carries a concrete witness trace.
    pub fn compose_checked(
        &self,
        plan: &CompositionPlan,
        options: &RefineOptions,
    ) -> Result<ComposedSpec, SpecError> {
        let mut composed = self.compose(plan)?;
        let mut fine_plan = CompositionPlan::new(format!("{}/uncoarsened", plan.name));
        let mut any_coarse = false;
        for choice in &plan.choices {
            let granularity = if choice.granularity == Granularity::Coarse {
                any_coarse = true;
                Granularity::Baseline
            } else {
                choice.granularity
            };
            fine_plan = fine_plan.with(choice.module, granularity);
        }
        if !any_coarse {
            return Ok(composed); // Nothing is coarsened: the syntactic check suffices.
        }
        if let Some(projection) = projection_between(&fine_plan, plan, &self.config) {
            let fine = build_from_plan(&fine_plan, &self.config)?;
            composed.refinement = Some(check_refinement(
                &fine,
                &composed.spec,
                &projection,
                options,
            ));
        }
        Ok(composed)
    }

    /// For the group of modules the plan coarsens, checks the interaction-preservation
    /// constraints of §3.2 against the baseline specifications of those modules, using
    /// the protected-variable set derived from the *target* (non-coarsened) modules.
    ///
    /// Coarsened modules are checked as a group: a coarsening such as
    /// `ElectionAndDiscovery` merges the externally visible effects of two modules into
    /// one action, so the footprint comparison is only meaningful over their union.
    fn check_coarsenings(
        &self,
        plan: &CompositionPlan,
    ) -> Vec<(Vec<ModuleId>, PreservationReport)> {
        let cfg = std::sync::Arc::new(self.config);
        // Baseline module specifications, used both as the "original" side of the check
        // and to compute dependency/interaction variables of the whole specification.
        let baseline: Vec<_> = plan
            .choices
            .iter()
            .filter_map(|c| module_at(c.module, Granularity::Baseline, &cfg))
            .collect();
        let baseline_refs: Vec<_> = baseline.iter().collect();
        let analysis = interaction_variables(&baseline_refs);

        let coarsened: Vec<ModuleId> = plan
            .choices
            .iter()
            .filter(|c| c.granularity == Granularity::Coarse)
            .map(|c| c.module)
            .collect();
        if coarsened.is_empty() {
            return Vec::new();
        }
        let originals: Vec<_> = coarsened
            .iter()
            .filter_map(|m| module_at(*m, Granularity::Baseline, &cfg))
            .collect();
        let coarse: Vec<_> = coarsened
            .iter()
            .filter_map(|m| module_at(*m, Granularity::Coarse, &cfg))
            .collect();
        // The protected set is the union over the modules that are *not* coarsened (the
        // verification targets) of their dependency variables, plus the interaction
        // variables.
        let mut protected = analysis.interaction.clone();
        for target in &plan.choices {
            if target.granularity != Granularity::Coarse {
                protected.extend(analysis.protected_for(target.module));
            }
        }
        let original_refs: Vec<_> = originals.iter().collect();
        let coarse_refs: Vec<_> = coarse.iter().collect();
        let report = check_interaction_preservation(&original_refs, &coarse_refs, &protected);
        vec![(coarsened, report)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use remix_zab::CodeVersion;

    fn composer() -> Composer {
        Composer::new(ClusterConfig::small(CodeVersion::V391))
    }

    #[test]
    fn every_preset_composes_and_preserves_interaction() {
        let c = composer();
        for preset in SpecPreset::all() {
            let composed = c.compose_preset(*preset).expect("preset composes");
            assert_eq!(composed.spec.name, preset.name());
            assert!(
                composed.interaction_preserved(),
                "{preset:?} coarsening must preserve interaction: {:?}",
                composed.preservation
            );
        }
    }

    #[test]
    fn coarsened_presets_carry_preservation_reports() {
        let c = composer();
        let m1 = c.compose_preset(SpecPreset::MSpec1).unwrap();
        assert_eq!(
            m1.preservation.len(),
            1,
            "one report for the coarsened group"
        );
        assert_eq!(
            m1.preservation[0].0.len(),
            2,
            "Election and Discovery are coarsened together"
        );
        let sys = c.compose_preset(SpecPreset::SysSpec).unwrap();
        assert!(
            sys.preservation.is_empty(),
            "nothing is coarsened in the system spec"
        );
    }

    #[test]
    fn composition_matches_plan() {
        let c = composer();
        let m3 = c.compose_preset(SpecPreset::MSpec3).unwrap();
        assert_eq!(
            m3.plan.granularity_of(remix_zab::modules::SYNCHRONIZATION),
            Some(Granularity::FineConcurrent)
        );
        assert_eq!(
            m3.spec
                .module_granularity(remix_zab::modules::SYNCHRONIZATION),
            Some(Granularity::FineConcurrent)
        );
    }
}
