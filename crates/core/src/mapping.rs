//! The action mapping: model-level actions → code-level events.
//!
//! The paper requires developers to provide, for each model-level action, the code-level
//! events that mark its beginning and end; Remix then instruments those points and the
//! coordinator schedules them (§3.5.3).  Here the mapping translates an instantiated
//! model action label (e.g. `"FollowerProcessNEWLEADER_UpdateEpoch(0, 2)"`) into the
//! [`SimEvent`]s the simulated cluster executes.

use remix_zab::Sid;
use remix_zk_sim::SimEvent;

/// Type of the label-translation function backing an [`ActionMapping`].
type TranslateFn = dyn Fn(&str) -> Option<Vec<SimEvent>> + Send + Sync;

/// A mapping from model-level action labels to code-level events.
pub struct ActionMapping {
    translate: Box<TranslateFn>,
}

impl ActionMapping {
    /// Creates a mapping from a translation function.
    pub fn new(translate: impl Fn(&str) -> Option<Vec<SimEvent>> + Send + Sync + 'static) -> Self {
        ActionMapping {
            translate: Box::new(translate),
        }
    }

    /// Translates one model action label into the code-level events to schedule.
    ///
    /// `None` means the label has no registered mapping (a conformance set-up error);
    /// an empty vector means the action intentionally has no code-level counterpart.
    pub fn translate(&self, label: &str) -> Option<Vec<SimEvent>> {
        (self.translate)(label)
    }
}

impl std::fmt::Debug for ActionMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ActionMapping")
    }
}

/// Parses the parameters of an instantiated action label, e.g. `"Foo(1, 2)"` → `[1, 2]`.
fn params(label: &str) -> Vec<usize> {
    let Some(open) = label.find('(') else {
        return Vec::new();
    };
    let inner = &label[open + 1..label.len().saturating_sub(1)];
    inner
        .split(',')
        .filter_map(|p| {
            p.trim()
                .trim_matches(|c| c == '{' || c == '}')
                .parse::<usize>()
                .ok()
        })
        .collect()
}

/// Parses the quorum set out of an `ElectionAndDiscovery(i, {a, b, c})` label.
fn quorum_of(label: &str) -> Vec<Sid> {
    sets_of(label).into_iter().next().unwrap_or_default()
}

/// Parses every `{...}` set of an instantiated label, in order (e.g. the quorum and the
/// joined set of `ElectionAndDiscoveryLeaderCrash(l, {a, b}, {a})`).
fn sets_of(label: &str) -> Vec<Vec<Sid>> {
    let mut out = Vec::new();
    let mut rest = label;
    while let Some(open) = rest.find('{') {
        let Some(close) = rest[open..].find('}') else {
            break;
        };
        out.push(
            rest[open + 1..open + close]
                .split(',')
                .filter_map(|p| p.trim().parse::<usize>().ok())
                .collect(),
        );
        rest = &rest[open + close + 1..];
    }
    out
}

/// The default mapping for the ZooKeeper specifications of `remix-zab`.
///
/// Coarse, baseline and fine-grained action labels are all covered; baseline atomic
/// actions map to the *sequence* of code-level events their atomic step abbreviates
/// (e.g. the atomic `FollowerProcessNEWLEADER` maps to update-epoch, log, ack), which is
/// exactly the model-code relationship the paper describes.
pub fn default_mapping() -> ActionMapping {
    ActionMapping::new(|label: &str| {
        let name = label.split('(').next().unwrap_or(label);
        let p = params(label);
        let first = p.first().copied().unwrap_or(0);
        let second = p.get(1).copied().unwrap_or(0);
        let events = match name {
            "ElectionAndDiscovery" | "OracleElectLeader" => {
                vec![SimEvent::ElectLeader {
                    leader: first,
                    quorum: quorum_of(label),
                }]
            }
            "ElectionAndDiscoveryLateJoin" => {
                vec![SimEvent::FollowerJoinLeader {
                    follower: first,
                    leader: second,
                }]
            }
            "ElectionAndDiscoveryLeaderCrash" => {
                let mut sets = sets_of(label).into_iter();
                vec![SimEvent::ElectLeaderInterrupted {
                    leader: first,
                    quorum: sets.next().unwrap_or_default(),
                    joined: sets.next().unwrap_or_default(),
                }]
            }
            // The baseline FLE actions have no one-to-one code counterpart scheduled by
            // the coordinator; the election outcome is scheduled by FLEDecide of the
            // elected leader (§3.5.3: vote messages for the target leader get priority).
            "FLEBroadcastNotification" | "FLEReceiveNotification" | "FLENotificationTimeout" => {
                vec![]
            }
            "FLEDecide" => vec![],
            "ConnectAndFollowerSendFOLLOWERINFO"
            | "LeaderProcessFOLLOWERINFO"
            | "FollowerProcessLEADERINFO"
            | "LeaderProcessACKEPOCH" => vec![],
            "LeaderSyncFollower" | "LeaderSendNEWLEADER" => {
                vec![SimEvent::LeaderSyncFollower {
                    leader: first,
                    follower: second,
                }]
            }
            "FollowerProcessSyncPackets" => {
                vec![SimEvent::FollowerHandleSyncPackets { follower: first }]
            }
            "FollowerProcessNEWLEADER" => vec![
                SimEvent::FollowerNewLeaderUpdateEpoch { follower: first },
                SimEvent::FollowerNewLeaderLogRequests { follower: first },
                SimEvent::FollowerNewLeaderAck { follower: first },
            ],
            "FollowerProcessNEWLEADER_UpdateEpoch" => {
                vec![SimEvent::FollowerNewLeaderUpdateEpoch { follower: first }]
            }
            "FollowerProcessNEWLEADER_LogAndAck" => vec![
                SimEvent::FollowerNewLeaderLogRequests { follower: first },
                SimEvent::FollowerNewLeaderAck { follower: first },
            ],
            "FollowerProcessNEWLEADER_LogAsync" => {
                vec![SimEvent::FollowerNewLeaderLogRequests { follower: first }]
            }
            "FollowerProcessNEWLEADER_ReplyAck" => {
                vec![SimEvent::FollowerNewLeaderAck { follower: first }]
            }
            "FollowerSyncProcessorLogRequest" => vec![SimEvent::SyncProcessorRun { node: first }],
            "FollowerCommitProcessorCommit" => vec![SimEvent::CommitProcessorRun { node: first }],
            "LeaderProcessACKLD" | "LeaderProcessACK" => {
                vec![SimEvent::LeaderProcessAck {
                    leader: first,
                    from: second,
                }]
            }
            "FollowerProcessCOMMITInSync" => {
                vec![SimEvent::FollowerHandleCommitInSync { follower: first }]
            }
            "FollowerProcessPROPOSALInSync" => {
                vec![SimEvent::FollowerHandleProposal { follower: first }]
            }
            "FollowerProcessUPTODATE" | "FollowerProcessCOMMITLD" => {
                vec![SimEvent::FollowerHandleUpToDate { follower: first }]
            }
            "LeaderProcessRequest" | "LeaderBroadcastPROPOSE" => {
                vec![SimEvent::LeaderClientRequest { leader: first }]
            }
            "FollowerProcessPROPOSAL" | "FollowerAcceptPROPOSE" => {
                vec![SimEvent::FollowerHandleProposal { follower: first }]
            }
            "FollowerProcessCOMMIT" | "FollowerDeliverCOMMIT" => {
                vec![SimEvent::FollowerHandleCommit { follower: first }]
            }
            "NodeCrash" => vec![SimEvent::Crash { node: first }],
            "NodeRestart" => vec![SimEvent::Restart { node: first }],
            "FollowerShutdown" => vec![SimEvent::FollowerShutdown { follower: first }],
            "LeaderShutdown" => vec![SimEvent::LeaderShutdown { leader: first }],
            "NetworkPartition" => vec![SimEvent::Partition {
                a: first,
                b: second,
            }],
            "PartitionRecover" => vec![SimEvent::Heal {
                a: first,
                b: second,
            }],
            "FollowerProcessNEWLEADER_AcceptHistory" => vec![
                SimEvent::FollowerHandleSyncPackets { follower: first },
                SimEvent::FollowerNewLeaderLogRequests { follower: first },
            ],
            "FollowerProcessNEWLEADER_UpdateEpochAndAck" => vec![
                SimEvent::FollowerNewLeaderUpdateEpoch { follower: first },
                SimEvent::FollowerNewLeaderAck { follower: first },
            ],
            _ => return None,
        };
        Some(events)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_parameters_and_quorums() {
        assert_eq!(params("NodeCrash(2)"), vec![2]);
        assert_eq!(params("LeaderProcessACKLD(2, 0)"), vec![2, 0]);
        assert_eq!(quorum_of("ElectionAndDiscovery(2, {0, 2})"), vec![0, 2]);
    }

    #[test]
    fn coarse_election_maps_to_elect_leader() {
        let m = default_mapping();
        let events = m.translate("ElectionAndDiscovery(2, {0, 1, 2})").unwrap();
        assert_eq!(
            events,
            vec![SimEvent::ElectLeader {
                leader: 2,
                quorum: vec![0, 1, 2]
            }]
        );
    }

    #[test]
    fn atomic_newleader_expands_to_three_code_events() {
        let m = default_mapping();
        let events = m.translate("FollowerProcessNEWLEADER(0, 2)").unwrap();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0],
            SimEvent::FollowerNewLeaderUpdateEpoch { follower: 0 }
        );
        assert_eq!(events[2], SimEvent::FollowerNewLeaderAck { follower: 0 });
    }

    #[test]
    fn fine_grained_actions_map_one_to_one() {
        let m = default_mapping();
        assert_eq!(
            m.translate("FollowerSyncProcessorLogRequest(1)").unwrap(),
            vec![SimEvent::SyncProcessorRun { node: 1 }]
        );
        assert_eq!(
            m.translate("FollowerProcessNEWLEADER_ReplyAck(0, 2)")
                .unwrap(),
            vec![SimEvent::FollowerNewLeaderAck { follower: 0 }]
        );
    }

    #[test]
    fn unknown_actions_are_reported_as_unmapped() {
        let m = default_mapping();
        assert!(m.translate("SomethingElse(1)").is_none());
        // FLE actions are mapped to "no code-level event" on purpose.
        assert_eq!(m.translate("FLEDecide(1)").unwrap(), vec![]);
    }
}
