//! Module identifiers: the four Zab phases of Figure 6 plus the fault module.

use remix_spec::ModuleId;

/// The Election module (fast leader election).
pub const ELECTION: ModuleId = ModuleId("Election");
/// The Discovery module (epoch negotiation).
pub const DISCOVERY: ModuleId = ModuleId("Discovery");
/// The Synchronization module (log synchronization / data recovery).
pub const SYNCHRONIZATION: ModuleId = ModuleId("Synchronization");
/// The Broadcast module (normal-case log replication).
pub const BROADCAST: ModuleId = ModuleId("Broadcast");
/// The fault module (crashes, restarts, partitions) — always composed in.
pub const FAULTS: ModuleId = ModuleId("Faults");

/// The four Zab phase modules, in protocol order.
pub const PHASES: [ModuleId; 4] = [ELECTION, DISCOVERY, SYNCHRONIZATION, BROADCAST];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_are_distinct_and_ordered() {
        assert_eq!(PHASES.len(), 4);
        assert_eq!(PHASES[0].name(), "Election");
        assert_eq!(PHASES[3].name(), "Broadcast");
        let mut names: Vec<_> = PHASES.iter().map(|m| m.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 4);
    }
}
