//! Granularity projections for the Zab specification library.
//!
//! These are the abstraction relations the refinement checker
//! (`remix-checker::refine`) uses to prove that a coarser composition simulates a finer
//! one — the semantic counterpart of the syntactic interaction-preservation check of
//! §3.2.  Two normalizations are provided, selected per module pair:
//!
//! * **Election/Discovery** ([`normalize_election`](ProjectionSpec::normalize_election)):
//!   the coarse `ElectionAndDiscovery(i, Q)` action (Figure 5b) executes the whole FLE
//!   round and epoch negotiation atomically.  Fine states *inside* that stretch (a
//!   server that decided but has not completed discovery) correspond to no coarse state
//!   and are unstable; election-internal variables (votes, notification bookkeeping)
//!   and messages (NOTIFICATION / FOLLOWERINFO / LEADERINFO / ACKEPOCH) are hidden, as
//!   are the per-server epoch markers of servers *outside* the protocol phases
//!   (`currentEpoch` / `acceptedEpoch` of LOOKING and DOWN servers), whose values the
//!   atomic coarsening cannot reproduce mid-handshake but whose downstream effects
//!   (which epochs get established, with which histories) stay fully visible.
//! * **Synchronization/Broadcast** ([`normalize_sync`](ProjectionSpec::normalize_sync)):
//!   the fine-grained modules split the atomic NEWLEADER / proposal handling into
//!   thread steps through the `queuedRequests` / `committedRequests` queues.  States
//!   with non-empty thread queues or a partially processed NEWLEADER handshake are
//!   unstable, and ACK messages are hidden (the fine side acknowledges per request;
//!   the visible consequences — leader bookkeeping, establishment, violations — remain
//!   projected).
//!
//! What stays visible in every projection: per-server control state of servers inside
//! the protocol phases, the durable logs and commit indices, the fault budgets and
//! partitions, the ghost variables (established epochs, initial histories, broadcast
//! order) and the code-level `violation` marker — i.e. exactly the state the
//! non-coarsened modules interact with.

use remix_spec::{CompositionPlan, Granularity, TraceProjection, Value};

use crate::config::ClusterConfig;
use crate::state::{ServerData, ZabState};
use crate::types::{Message, ServerState, ZabPhase};

/// Which normalizations a projection applies (derived from the pair of composition
/// plans being compared).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProjectionSpec {
    /// Normalize the Election + Discovery coarsening (pair differs in those modules).
    pub normalize_election: bool,
    /// Normalize the fine-grained Synchronization / Broadcast thread structure.
    pub normalize_sync: bool,
}

/// Action names internal to the Election/Discovery coarsening (matched by the coarse
/// side by stuttering).
const ELECTION_INTERNAL: &[&str] = &[
    "FLEBroadcastNotification",
    "FLEReceiveNotification",
    "FLEDecide",
    "FLENotificationTimeout",
    "ConnectAndFollowerSendFOLLOWERINFO",
    "LeaderProcessFOLLOWERINFO",
    "FollowerProcessLEADERINFO",
    "LeaderProcessACKEPOCH",
];

/// Action names internal to the fine-grained Synchronization/Broadcast thread model.
const SYNC_INTERNAL: &[&str] = &[
    "FollowerProcessNEWLEADER_UpdateEpoch",
    "FollowerProcessNEWLEADER_LogAndAck",
    "FollowerProcessNEWLEADER_LogAsync",
    "FollowerProcessNEWLEADER_ReplyAck",
    "FollowerSyncProcessorLogRequest",
    "FollowerCommitProcessorCommit",
];

/// The action name of a fully instantiated label (`"FLEDecide(2)"` → `"FLEDecide"`).
fn action_name(label: &str) -> &str {
    label.split('(').next().unwrap_or(label).trim()
}

/// `true` when the server is inside the protocol phases the projection keeps fully
/// visible (Synchronization or Broadcast, i.e. past the coarsened handshake).
fn in_phase(sv: &ServerData) -> bool {
    sv.is_up() && matches!(sv.phase, ZabPhase::Synchronization | ZabPhase::Broadcast)
}

fn zxid_value(z: crate::types::Zxid) -> Value {
    Value::record(vec![
        ("epoch".to_owned(), Value::from(z.epoch)),
        ("counter".to_owned(), Value::from(z.counter)),
    ])
}

fn txn_value(t: &crate::types::Txn) -> Value {
    Value::record(vec![
        ("zxid".to_owned(), zxid_value(t.zxid)),
        ("value".to_owned(), Value::from(t.value)),
    ])
}

fn history_value(txns: &[crate::types::Txn]) -> Value {
    Value::Seq(txns.iter().map(txn_value).collect())
}

/// Projects one server onto its visible record under `spec`.
fn project_server(sv: &ServerData, spec: ProjectionSpec) -> Value {
    let mut fields: Vec<(String, Value)> = vec![
        // Durable data state: always visible — this is what the invariants are about.
        ("history".to_owned(), history_value(&sv.history)),
        (
            "lastCommitted".to_owned(),
            Value::from(sv.last_committed.min(sv.history.len())),
        ),
        // Thread queues: visible (the ZK-4712 stale-queue interaction lives here); the
        // sync normalization makes states with non-empty queues unstable instead.
        (
            "queuedRequests".to_owned(),
            history_value(&sv.queued_requests),
        ),
        (
            "committedRequests".to_owned(),
            Value::Seq(sv.pending_commits.iter().map(|z| zxid_value(*z)).collect()),
        ),
    ];

    let visible_control = !spec.normalize_election || in_phase(sv) || !sv.is_up();
    let state_label = if spec.normalize_election && sv.is_up() && !in_phase(sv) {
        // Anything still inside the coarsened handshake renders as a plain LOOKING
        // server; the handshake's intermediate control state is internal.
        "Looking".to_owned()
    } else {
        format!("{:?}", sv.state)
    };
    fields.push(("state".to_owned(), Value::str(state_label)));

    if visible_control && sv.is_up() {
        fields.push(("zabState".to_owned(), Value::str(format!("{:?}", sv.phase))));
        fields.push((
            "leaderAddr".to_owned(),
            match sv.leader {
                Some(l) => Value::from(l),
                None => Value::Int(-1),
            },
        ));
        fields.push(("serving".to_owned(), Value::Bool(sv.serving)));
        fields.push(("established".to_owned(), Value::Bool(sv.established)));
        fields.push(("epochProposed".to_owned(), Value::Bool(sv.epoch_proposed)));
        fields.push((
            "syncSent".to_owned(),
            Value::set(sv.sync_sent.iter().map(|s| Value::from(*s)).collect()),
        ));
        fields.push((
            "ackldRecv".to_owned(),
            Value::set(sv.newleader_acks.iter().map(|s| Value::from(*s)).collect()),
        ));
        fields.push((
            "proposalAcks".to_owned(),
            Value::Seq(
                sv.pending_acks
                    .iter()
                    .map(|(z, acks)| {
                        Value::record(vec![
                            ("zxid".to_owned(), zxid_value(*z)),
                            (
                                "acks".to_owned(),
                                Value::set(acks.iter().map(|s| Value::from(*s)).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ));
        fields.push((
            "packetsSync".to_owned(),
            Value::record(vec![
                (
                    "notCommitted".to_owned(),
                    history_value(&sv.packets_not_committed),
                ),
                (
                    "committed".to_owned(),
                    Value::Seq(
                        sv.packets_committed
                            .iter()
                            .map(|z| zxid_value(*z))
                            .collect(),
                    ),
                ),
            ]),
        ));
    }

    // Epoch markers: visible for servers inside the protocol phases; for LOOKING / DOWN
    // servers they are only visible when the election handshake is not normalized (the
    // atomic ElectionAndDiscovery cannot reproduce partially negotiated epochs, and
    // their only downstream effect — which epoch the next round negotiates and who wins
    // it — is re-exposed through the states that round produces).
    let epochs_visible = if spec.normalize_election {
        in_phase(sv)
    } else {
        true
    };
    if epochs_visible {
        fields.push(("currentEpoch".to_owned(), Value::from(sv.current_epoch)));
        fields.push(("acceptedEpoch".to_owned(), Value::from(sv.accepted_epoch)));
    }

    if !spec.normalize_election {
        // Election granularities match on both sides: election bookkeeping evolves
        // identically and stays comparable.
        fields.push((
            "learners".to_owned(),
            Value::set(sv.learners.iter().map(|s| Value::from(*s)).collect()),
        ));
        fields.push((
            "ackeRecv".to_owned(),
            Value::set(sv.epoch_acks.iter().map(|s| Value::from(*s)).collect()),
        ));
    }

    Value::record(fields)
}

/// `true` when `msg` is internal to the Election/Discovery coarsening.
fn election_internal_msg(msg: &Message) -> bool {
    matches!(
        msg,
        Message::Notification { .. }
            | Message::FollowerInfo { .. }
            | Message::LeaderInfo { .. }
            | Message::AckEpoch { .. }
    )
}

/// Projects the network onto the visible message sequences.
fn project_msgs(state: &ZabState, spec: ProjectionSpec) -> Value {
    let mut channels: Vec<Value> = Vec::new();
    for from in 0..state.n() {
        for to in 0..state.n() {
            let kept: Vec<Value> = state.msgs[from][to]
                .iter()
                .filter(|m| !(spec.normalize_election && election_internal_msg(m)))
                .filter(|m| !(spec.normalize_sync && matches!(m, Message::Ack { .. })))
                .map(|m| Value::str(format!("{m:?}")))
                .collect();
            if !kept.is_empty() {
                channels.push(Value::record(vec![
                    ("from".to_owned(), Value::from(from)),
                    ("to".to_owned(), Value::from(to)),
                    ("queue".to_owned(), Value::Seq(kept)),
                ]));
            }
        }
    }
    Value::Seq(channels)
}

/// Projects the ghost variables (fully visible: the protocol-level invariants read
/// them, so a coarsening that changed them would change verification results).
fn project_ghost(state: &ZabState) -> Value {
    Value::record(vec![
        (
            "establishedLeaders".to_owned(),
            Value::Seq(
                state
                    .ghost
                    .established_leaders
                    .iter()
                    .map(|(e, l)| {
                        Value::record(vec![
                            ("epoch".to_owned(), Value::from(*e)),
                            ("leader".to_owned(), Value::from(*l)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "duplicate".to_owned(),
            Value::Bool(state.ghost.duplicate_establishment),
        ),
        (
            "initialHistory".to_owned(),
            Value::Seq(
                state
                    .ghost
                    .initial_history
                    .iter()
                    .map(|(e, h)| {
                        Value::record(vec![
                            ("epoch".to_owned(), Value::from(*e)),
                            ("history".to_owned(), history_value(h)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "broadcast".to_owned(),
            history_value(&state.ghost.broadcast),
        ),
    ])
}

/// `true` when the state is between coarse steps under `spec` (a commit point).
fn is_stable(state: &ZabState, spec: ProjectionSpec) -> bool {
    if spec.normalize_election {
        // No server may be inside the election/discovery handshake: decided (no longer
        // LOOKING) but not yet through epoch negotiation.
        for sv in &state.servers {
            if sv.is_up()
                && sv.state != ServerState::Looking
                && matches!(sv.phase, ZabPhase::Election | ZabPhase::Discovery)
            {
                return false;
            }
        }
    }
    if spec.normalize_sync {
        // Thread queues must be drained...
        for sv in &state.servers {
            if !sv.queued_requests.is_empty() || !sv.pending_commits.is_empty() {
                return false;
            }
        }
        // ...no NEWLEADER handshake may be in flight toward a synchronizing follower
        // (its epoch update / logging / acknowledgement sub-steps are one atomic step
        // on the coarse side)...
        for (i, sv) in state.servers.iter().enumerate() {
            if !sv.is_up()
                || sv.state != ServerState::Following
                || sv.phase != ZabPhase::Synchronization
            {
                continue;
            }
            if let Some(leader) = sv.leader {
                if state.msgs[leader][i]
                    .iter()
                    .any(|m| matches!(m, Message::NewLeader { .. }))
                {
                    return false;
                }
            }
        }
        // ...and no ACK may be in flight (the fine side acknowledges per logged
        // request; ACKs are hidden from the projection, so a state is only comparable
        // once they are consumed).
        for from in 0..state.n() {
            for to in 0..state.n() {
                if state.msgs[from][to]
                    .iter()
                    .any(|m| matches!(m, Message::Ack { .. }))
                {
                    return false;
                }
            }
        }
    }
    true
}

/// Builds the projection for a normalization choice.
pub fn projection(
    name: impl Into<String>,
    coarse: Granularity,
    fine: Granularity,
    spec: ProjectionSpec,
) -> TraceProjection<ZabState> {
    TraceProjection::identity(name, coarse, fine)
        .with_state(move |s: &ZabState| {
            let mut out = std::collections::BTreeMap::new();
            out.insert(
                "servers".to_owned(),
                Value::Seq(
                    s.servers
                        .iter()
                        .map(|sv| project_server(sv, spec))
                        .collect(),
                ),
            );
            out.insert("msgs".to_owned(), project_msgs(s, spec));
            out.insert(
                "partitions".to_owned(),
                Value::set(
                    s.partitioned
                        .iter()
                        .map(|(a, b)| {
                            Value::record(vec![
                                ("a".to_owned(), Value::from(*a)),
                                ("b".to_owned(), Value::from(*b)),
                            ])
                        })
                        .collect(),
                ),
            );
            out.insert("crashBudget".to_owned(), Value::from(s.crashes_remaining));
            out.insert(
                "partitionBudget".to_owned(),
                Value::from(s.partitions_remaining),
            );
            out.insert("txnBudget".to_owned(), Value::from(s.txns_created));
            out.insert(
                "violation".to_owned(),
                Value::str(format!("{:?}", s.violation)),
            );
            out.insert("ghost".to_owned(), project_ghost(s));
            out
        })
        .with_label(move |label: &str| {
            let name = action_name(label);
            if spec.normalize_election
                && (ELECTION_INTERNAL.contains(&name) || name == "ElectionAndDiscovery")
            {
                if name == "ElectionAndDiscovery" {
                    return Some("ElectionAndDiscovery".to_owned());
                }
                return None;
            }
            if spec.normalize_sync && SYNC_INTERNAL.contains(&name) {
                return None;
            }
            Some(label.to_owned())
        })
        .with_stability(move |s: &ZabState| is_stable(s, spec))
}

/// The projection for comparing a composition that coarsens Election + Discovery
/// against one that keeps them at baseline granularity (mSpec-1 vs SysSpec).
pub fn coarse_vs_baseline(_config: &ClusterConfig) -> TraceProjection<ZabState> {
    projection(
        "Coarse⊑Baseline(Election+Discovery)",
        Granularity::Coarse,
        Granularity::Baseline,
        ProjectionSpec {
            normalize_election: true,
            normalize_sync: false,
        },
    )
}

/// The projection for comparing a composition with fine-grained Synchronization /
/// Broadcast modules against the baseline system specification.
pub fn baseline_vs_fine_sync(
    _config: &ClusterConfig,
    fine: Granularity,
) -> TraceProjection<ZabState> {
    projection(
        format!("Baseline⊑{fine}(Synchronization+Broadcast)"),
        Granularity::Baseline,
        fine,
        ProjectionSpec {
            normalize_election: false,
            normalize_sync: true,
        },
    )
}

/// Derives the projection relating two composition plans, or `None` when the plans
/// select identical granularities everywhere (no refinement pair).
///
/// The `coarse_plan` must select, for every module where the plans differ, a
/// granularity that strictly abstracts the `fine_plan`'s choice.
pub fn projection_between(
    fine_plan: &CompositionPlan,
    coarse_plan: &CompositionPlan,
    config: &ClusterConfig,
) -> Option<TraceProjection<ZabState>> {
    let mut normalize_election = false;
    let mut normalize_sync = false;
    let mut coarsest = Granularity::FineConcurrent;
    let mut finest = Granularity::Protocol;
    for choice in &coarse_plan.choices {
        let fine_g = fine_plan.granularity_of(choice.module)?;
        if fine_g == choice.granularity {
            continue;
        }
        if !choice.granularity.abstracts(fine_g) {
            return None;
        }
        match choice.module.name() {
            "Election" | "Discovery" => normalize_election = true,
            "Synchronization" | "Broadcast" => normalize_sync = true,
            _ => return None,
        }
        if choice.granularity.abstracts(coarsest) {
            coarsest = choice.granularity;
        }
        if finest.abstracts(fine_g) {
            finest = fine_g;
        }
    }
    if !normalize_election && !normalize_sync {
        return None;
    }
    let _ = config;
    Some(projection(
        format!("{}⊑{}", coarse_plan.name, fine_plan.name),
        coarsest,
        finest,
        ProjectionSpec {
            normalize_election,
            normalize_sync,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::SpecPreset;
    use crate::versions::CodeVersion;

    fn config() -> ClusterConfig {
        ClusterConfig::small(CodeVersion::V391)
    }

    #[test]
    fn initial_state_is_stable_and_projects() {
        let p = coarse_vs_baseline(&config());
        let s = ZabState::initial(&config());
        assert!(p.is_stable(&s));
        let projected = p.project_state(&s);
        assert!(projected.contains_key("servers"));
        assert!(projected.contains_key("ghost"));
        assert!(projected.contains_key("crashBudget"));
    }

    #[test]
    fn mid_handshake_states_are_unstable() {
        let p = coarse_vs_baseline(&config());
        let mut s = ZabState::initial(&config());
        s.servers[0].state = ServerState::Leading;
        s.servers[0].phase = ZabPhase::Discovery;
        assert!(!p.is_stable(&s));
        // Once through discovery the state is a commit point again.
        s.servers[0].phase = ZabPhase::Synchronization;
        assert!(p.is_stable(&s));
    }

    #[test]
    fn election_internals_are_hidden() {
        let p = coarse_vs_baseline(&config());
        let mut a = ZabState::initial(&config());
        let b = a.clone();
        // Vote bookkeeping and election messages are internal: projections must agree.
        a.servers[1].vote_broadcast = true;
        a.servers[2].recv_votes.insert(
            1,
            crate::types::Vote {
                epoch: 0,
                zxid: crate::types::Zxid::ZERO,
                leader: 1,
            },
        );
        a.msgs[1][2].push(Message::Notification {
            vote: a.servers[1].vote,
        });
        assert_eq!(p.project_state(&a), p.project_state(&b));
        // A durable difference stays visible.
        a.servers[1].history.push(crate::types::Txn::new(1, 1, 7));
        assert_ne!(p.project_state(&a), p.project_state(&b));
    }

    #[test]
    fn labels_project_per_normalization() {
        let p = coarse_vs_baseline(&config());
        assert_eq!(p.project_label("FLEDecide(2)"), None);
        assert_eq!(p.project_label("LeaderProcessACKEPOCH(2, 0)"), None);
        assert_eq!(
            p.project_label("ElectionAndDiscovery(2, {0, 1, 2})"),
            Some("ElectionAndDiscovery".to_owned())
        );
        assert_eq!(
            p.project_label("NodeCrash(1)"),
            Some("NodeCrash(1)".to_owned())
        );

        let q = baseline_vs_fine_sync(&config(), Granularity::FineConcurrent);
        assert_eq!(q.project_label("FollowerSyncProcessorLogRequest(0)"), None);
        assert_eq!(
            q.project_label("FollowerProcessNEWLEADER_ReplyAck(0, 2)"),
            None
        );
        assert_eq!(
            q.project_label("FollowerProcessNEWLEADER(0, 2)"),
            Some("FollowerProcessNEWLEADER(0, 2)".to_owned())
        );
    }

    #[test]
    fn sync_normalization_marks_queue_states_unstable() {
        let q = baseline_vs_fine_sync(&config(), Granularity::FineConcurrent);
        let mut s = ZabState::initial(&config());
        assert!(q.is_stable(&s));
        s.servers[0]
            .queued_requests
            .push(crate::types::Txn::new(1, 1, 1));
        assert!(!q.is_stable(&s));
        s.servers[0].queued_requests.clear();
        s.msgs[0][2].push(Message::Ack {
            zxid: crate::types::Zxid::new(1, 1),
        });
        assert!(
            !q.is_stable(&s),
            "in-flight ACKs are hidden, so not comparable"
        );
    }

    #[test]
    fn projection_between_derives_normalizations_from_plans() {
        let cfg = config();
        let p = projection_between(
            &SpecPreset::SysSpec.plan(),
            &SpecPreset::MSpec1.plan(),
            &cfg,
        )
        .expect("Coarse vs Baseline pair");
        assert_eq!(p.coarse, Granularity::Coarse);
        assert_eq!(p.fine, Granularity::Baseline);
        assert_eq!(p.project_label("FLEDecide(1)"), None);

        let q = projection_between(
            &SpecPreset::MSpec4.plan(),
            &SpecPreset::SysSpec.plan(),
            &cfg,
        )
        .expect("Baseline vs FineConcurrent pair");
        assert_eq!(q.coarse, Granularity::Baseline);
        assert_eq!(q.fine, Granularity::FineConcurrent);
        assert_eq!(q.project_label("FollowerCommitProcessorCommit(0)"), None);

        // Identical plans have no refinement relation.
        assert!(projection_between(
            &SpecPreset::SysSpec.plan(),
            &SpecPreset::SysSpec.plan(),
            &cfg
        )
        .is_none());
        // An ill-ordered pair (coarse side finer than fine side) is rejected.
        assert!(projection_between(
            &SpecPreset::MSpec1.plan(),
            &SpecPreset::SysSpec.plan(),
            &cfg
        )
        .is_none());
    }
}
