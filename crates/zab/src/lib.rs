//! Multi-grained specifications of the Zab protocol and the ZooKeeper system.
//!
//! This crate is the Rust counterpart of the paper's TLA+ specification library:
//!
//! * [`state`] — the global state of the system specification (per-server variables,
//!   network channels, fault budgets, ghost variables);
//! * [`actions`] — the action library, organised per Zab phase and per granularity
//!   (baseline system specification, fine-grained atomicity, fine-grained concurrency,
//!   coarse interaction-preserving abstraction, faults);
//! * [`invariants`] — the fourteen invariants of Table 2;
//! * [`presets`] — the mixed-grained compositions of Table 1 (SysSpec, mSpec-1..4);
//! * [`projection`] — the granularity projections relating those compositions, consumed
//!   by the refinement checker (`remix-checker::refine`) to prove the coarsenings
//!   interaction-preserving;
//! * [`fields`] — [`StateFields`](remix_spec::StateFields) reflection over `ZabState`,
//!   consumed by the effect audit (`remix-analyze`);
//! * [`symmetry`] — canonical representatives of `ZabState` under server-id
//!   permutation, consumed by the checker's symmetry reduction
//!   (`remix-checker::SymmetryMode`);
//! * [`versions`] — the ZooKeeper code versions, bug flags and the bug lineage of
//!   Figure 8;
//! * [`protocol`] — the protocol-level specification of Zab (§2.1.1) together with the
//!   improved protocol of §5.4.

#![warn(missing_docs)]

pub mod actions;
pub mod config;
pub mod fields;
pub mod invariants;
pub mod modules;
pub mod presets;
pub mod projection;
pub mod protocol;
pub mod state;
pub mod symmetry;
pub mod types;
pub mod versions;

pub use config::ClusterConfig;
pub use fields::underdeclare_node_restart;
pub use presets::{build_from_plan, SpecPreset};
pub use projection::{
    baseline_vs_fine_sync, coarse_vs_baseline, projection_between, ProjectionSpec,
};
pub use state::{GhostState, ServerData, ZabState};
pub use types::{
    CodeViolation, Message, ServerState, Sid, SyncMode, Txn, ViolationKind, Vote, ZabPhase, Zxid,
};
pub use versions::{BugFlags, CodeVersion, BUG_LINEAGE, MODELLED_ISSUES};
