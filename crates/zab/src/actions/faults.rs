//! Fault module: node crashes, restarts, failure detection and network partitions.
//!
//! The fault actions are composed into every specification (the "other actions, e.g. for
//! modeling faults" of Figure 7).  The follower-shutdown path is where ZK-4712 lives: in
//! the buggy versions the SyncRequestProcessor queue survives the shutdown and its stale
//! requests may still be logged after the server joins a new epoch.

use remix_spec::effect::flags;
use remix_spec::{ActionDef, ActionInstance, Effect, Granularity, ModuleSpec};

use crate::modules::FAULTS;
use crate::state::ZabState;
use crate::types::ServerState;

use super::{servers, Cfg};

/// `NodeCrash(i)`: the process dies; volatile state and in-flight messages are lost.
fn node_crash(_cfg: &Cfg) -> ActionDef<ZabState> {
    ActionDef::new(
        "NodeCrash",
        FAULTS,
        Granularity::Baseline,
        vec!["state", "crashBudget"],
        vec![
            "state",
            "zabState",
            "crashBudget",
            "msgs",
            "queuedRequests",
            "committedRequests",
        ],
        |s: &ZabState| {
            let mut out = Vec::new();
            if s.crashes_remaining == 0 {
                return out;
            }
            for i in servers(s) {
                if !s.servers[i].is_up() {
                    continue;
                }
                let mut next = s.clone();
                next.crashes_remaining -= 1;
                next.servers[i].crash();
                next.clear_channels(i);
                out.push(
                    ActionInstance::new(format!("NodeCrash({i})"), next).with_effect(
                        Effect::new()
                            .writes_server(i)
                            .writes_channels_of(i)
                            .writes_flag(flags::CRASH_BUDGET),
                    ),
                );
            }
            out
        },
    )
}

/// `NodeRestart(i)`: a crashed server comes back with its durable state and rejoins
/// leader election.
fn node_restart(_cfg: &Cfg) -> ActionDef<ZabState> {
    ActionDef::new(
        "NodeRestart",
        FAULTS,
        Granularity::Baseline,
        vec!["state"],
        vec!["state", "zabState", "currentVote", "lastCommitted"],
        |s: &ZabState| {
            let mut out = Vec::new();
            for i in servers(s) {
                if s.servers[i].state != ServerState::Down {
                    continue;
                }
                let mut next = s.clone();
                next.servers[i].restart(i);
                // Restart flips `reachable(i, j)` for every peer `j` from false to
                // true, and link status is charged to the channel pair bits (the
                // convention in `actions/mod.rs`), so `i`'s channels are written even
                // though no message moves — otherwise a guard or a `send` reading
                // reachability of a link of `i` (e.g. `FollowerShutdown`'s dead-leader
                // check) would be disabled by a restart it was declared independent of.
                out.push(
                    ActionInstance::new(format!("NodeRestart({i})"), next)
                        .with_effect(Effect::new().writes_server(i).writes_channels_of(i)),
                );
            }
            out
        },
    )
}

/// `FollowerShutdown(i)`: a follower that can no longer reach its leader abandons it and
/// goes back to leader election.  Whether the logging queue is cleared depends on the
/// code version (ZK-4712).
fn follower_shutdown(cfg: &Cfg) -> ActionDef<ZabState> {
    let cfg = cfg.clone();
    ActionDef::new(
        "FollowerShutdown",
        FAULTS,
        Granularity::Baseline,
        vec!["state", "leaderAddr", "partitions"],
        vec![
            "state",
            "zabState",
            "currentVote",
            "queuedRequests",
            "committedRequests",
            "msgs",
        ],
        move |s: &ZabState| {
            let mut out = Vec::new();
            for i in servers(s) {
                let sv = &s.servers[i];
                if !sv.is_up() || sv.state != ServerState::Following {
                    continue;
                }
                let Some(leader) = sv.leader else { continue };
                if s.reachable(i, leader) {
                    continue;
                }
                let mut next = s.clone();
                let clear_queue = !cfg.bugs().shutdown_keeps_request_queue;
                next.servers[i].shutdown_to_looking(i, clear_queue);
                next.clear_pair_channels(i, leader);
                // The leader endpoint is state-dependent, so claim every channel of `i`.
                out.push(
                    ActionInstance::new(format!("FollowerShutdown({i})"), next)
                        .with_effect(Effect::new().writes_server(i).writes_channels_of(i)),
                );
            }
            out
        },
    )
}

/// `LeaderShutdown(i)`: a leader that can no longer reach a quorum abandons leadership.
fn leader_shutdown(cfg: &Cfg) -> ActionDef<ZabState> {
    let cfg = cfg.clone();
    ActionDef::new(
        "LeaderShutdown",
        FAULTS,
        Granularity::Baseline,
        vec!["state", "partitions"],
        vec![
            "state",
            "zabState",
            "currentVote",
            "queuedRequests",
            "committedRequests",
            "msgs",
        ],
        move |s: &ZabState| {
            let mut out = Vec::new();
            for i in servers(s) {
                let sv = &s.servers[i];
                if !sv.is_up() || sv.state != ServerState::Leading {
                    continue;
                }
                let reachable: std::collections::BTreeSet<_> =
                    (0..s.n()).filter(|&j| s.reachable(i, j)).collect();
                if s.is_quorum(&reachable) {
                    continue;
                }
                let mut next = s.clone();
                let clear_queue = !cfg.bugs().shutdown_keeps_request_queue;
                next.servers[i].shutdown_to_looking(i, clear_queue);
                next.clear_channels(i);
                // The quorum scan reads every server's up status.
                let mut effect = Effect::new().writes_server(i).writes_channels_of(i);
                for j in servers(s) {
                    effect = effect.reads_server(j);
                }
                out.push(
                    ActionInstance::new(format!("LeaderShutdown({i})"), next).with_effect(effect),
                );
            }
            out
        },
    )
}

/// `NetworkPartition(i, j)`: the link between two servers breaks; in-flight messages on
/// the link are lost.
fn network_partition(_cfg: &Cfg) -> ActionDef<ZabState> {
    ActionDef::new(
        "NetworkPartition",
        FAULTS,
        Granularity::Baseline,
        vec!["partitions"],
        vec!["partitions", "msgs"],
        |s: &ZabState| {
            let mut out = Vec::new();
            if s.partitions_remaining == 0 {
                return out;
            }
            for i in 0..s.n() {
                for j in (i + 1)..s.n() {
                    if s.partitioned.contains(&(i, j))
                        || !s.servers[i].is_up()
                        || !s.servers[j].is_up()
                    {
                        continue;
                    }
                    let mut next = s.clone();
                    next.partitions_remaining -= 1;
                    next.partitioned.insert((i, j));
                    next.clear_pair_channels(i, j);
                    out.push(
                        ActionInstance::new(format!("NetworkPartition({i}, {j})"), next)
                            .with_effect(
                                Effect::new()
                                    .reads_server(i)
                                    .reads_server(j)
                                    .writes_channel(i, j)
                                    .writes_channel(j, i)
                                    .writes_flag(flags::PARTITION_BUDGET),
                            ),
                    );
                }
            }
            out
        },
    )
}

/// `PartitionRecover(i, j)`: a partitioned link heals.
fn partition_recover(_cfg: &Cfg) -> ActionDef<ZabState> {
    ActionDef::new(
        "PartitionRecover",
        FAULTS,
        Granularity::Baseline,
        vec!["partitions"],
        vec!["partitions"],
        |s: &ZabState| {
            let mut out = Vec::new();
            for &(i, j) in &s.partitioned {
                let mut next = s.clone();
                next.partitioned.remove(&(i, j));
                out.push(
                    ActionInstance::new(format!("PartitionRecover({i}, {j})"), next)
                        .with_effect(Effect::new().writes_channel(i, j).writes_channel(j, i)),
                );
            }
            out
        },
    )
}

/// The fault module specification (six actions).
pub fn module(cfg: &Cfg) -> ModuleSpec<ZabState> {
    ModuleSpec::new(
        FAULTS,
        Granularity::Baseline,
        vec![
            node_crash(cfg),
            node_restart(cfg),
            follower_shutdown(cfg),
            leader_shutdown(cfg),
            network_partition(cfg),
            partition_recover(cfg),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::types::{Txn, ZabPhase};
    use crate::versions::CodeVersion;
    use std::sync::Arc;

    fn cfg(version: CodeVersion) -> Cfg {
        Arc::new(ClusterConfig::small(version).with_partitions(1))
    }

    fn following_state() -> ZabState {
        let mut s = ZabState::initial(&ClusterConfig::small(CodeVersion::V391).with_partitions(1));
        s.servers[2].state = ServerState::Leading;
        s.servers[2].leader = Some(2);
        s.servers[2].phase = ZabPhase::Broadcast;
        for i in 0..2 {
            s.servers[i].state = ServerState::Following;
            s.servers[i].leader = Some(2);
            s.servers[i].phase = ZabPhase::Broadcast;
        }
        s
    }

    #[test]
    fn crash_budget_limits_crashes() {
        let m = module(&cfg(CodeVersion::V391));
        let s = following_state();
        let crash = m.actions.iter().find(|a| a.name == "NodeCrash").unwrap();
        assert_eq!(crash.enabled(&s).len(), 3);
        let mut exhausted = s.clone();
        exhausted.crashes_remaining = 0;
        assert!(crash.enabled(&exhausted).is_empty());
    }

    #[test]
    fn follower_shutdown_requires_unreachable_leader() {
        let m = module(&cfg(CodeVersion::V391));
        let s = following_state();
        let shutdown = m
            .actions
            .iter()
            .find(|a| a.name == "FollowerShutdown")
            .unwrap();
        assert!(
            shutdown.enabled(&s).is_empty(),
            "leader reachable: no shutdown"
        );
        let mut s2 = s.clone();
        s2.servers[2].crash();
        let insts = shutdown.enabled(&s2);
        assert_eq!(insts.len(), 2);
        assert!(insts.iter().all(|i| {
            let sv =
                &i.next.servers[usize::from(i.label.as_bytes()["FollowerShutdown(".len()] - b'0')];
            sv.state == ServerState::Looking
        }));
    }

    #[test]
    fn buggy_shutdown_keeps_the_logging_queue() {
        let buggy = module(&cfg(CodeVersion::V391));
        let fixed = module(&cfg(CodeVersion::MSpec3Plus));
        let mut s = following_state();
        s.servers[0].queued_requests.push(Txn::new(1, 1, 1));
        s.servers[2].crash();

        let shutdown = |m: &ModuleSpec<ZabState>, s: &ZabState| {
            m.actions
                .iter()
                .find(|a| a.name == "FollowerShutdown")
                .unwrap()
                .enabled(s)
                .into_iter()
                .find(|i| i.label == "FollowerShutdown(0)")
                .unwrap()
                .next
        };
        assert_eq!(
            shutdown(&buggy, &s).servers[0].queued_requests.len(),
            1,
            "ZK-4712 path"
        );
        assert!(
            shutdown(&fixed, &s).servers[0].queued_requests.is_empty(),
            "fixed path"
        );
    }

    #[test]
    fn leader_shutdown_when_quorum_lost() {
        let m = module(&cfg(CodeVersion::V391));
        let mut s = following_state();
        s.servers[0].crash();
        s.servers[1].crash();
        s.crashes_remaining = 0;
        let shutdown = m
            .actions
            .iter()
            .find(|a| a.name == "LeaderShutdown")
            .unwrap();
        let insts = shutdown.enabled(&s);
        assert_eq!(insts.len(), 1);
        assert_eq!(insts[0].next.servers[2].state, ServerState::Looking);
    }

    #[test]
    fn partition_and_recovery() {
        let m = module(&cfg(CodeVersion::V391));
        let s = following_state();
        let partition = m
            .actions
            .iter()
            .find(|a| a.name == "NetworkPartition")
            .unwrap();
        let insts = partition.enabled(&s);
        assert_eq!(insts.len(), 3, "three possible pairs");
        let partitioned = insts.into_iter().next().unwrap().next;
        assert_eq!(partitioned.partitioned.len(), 1);
        assert_eq!(partitioned.partitions_remaining, 0);
        let recover = m
            .actions
            .iter()
            .find(|a| a.name == "PartitionRecover")
            .unwrap();
        let healed = recover
            .enabled(&partitioned)
            .into_iter()
            .next()
            .unwrap()
            .next;
        assert!(healed.partitioned.is_empty());
        // The budget is not restored by healing.
        assert_eq!(healed.partitions_remaining, 0);
    }

    #[test]
    fn restart_returns_to_election_with_durable_state() {
        let m = module(&cfg(CodeVersion::V391));
        let mut s = following_state();
        s.servers[1].history.push(Txn::new(1, 1, 1));
        s.servers[1].current_epoch = 1;
        s.servers[1].crash();
        let restart = m.actions.iter().find(|a| a.name == "NodeRestart").unwrap();
        let restarted = restart.enabled(&s).into_iter().next().unwrap().next;
        assert_eq!(restarted.servers[1].state, ServerState::Looking);
        assert_eq!(restarted.servers[1].history.len(), 1);
        assert_eq!(restarted.servers[1].vote.epoch, 1);
    }
}
