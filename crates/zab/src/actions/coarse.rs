//! Coarse-grained, interaction-preserving abstraction of the Election and Discovery
//! modules (Figure 5b of the paper).
//!
//! The eight FLE / discovery actions collapse into a single `ElectionAndDiscovery(i, Q)`
//! action: a quorum `Q` of LOOKING servers atomically elects the member with the maximal
//! `(currentEpoch, lastZxid, sid)` — the same total order fast leader election uses — and
//! moves every member of `Q` directly into the Synchronization phase with the new epoch
//! negotiated.  Internal variables (votes, notification messages) are abstracted away;
//! the externally visible effects (`state`, `zabState`, `acceptedEpoch`, `currentEpoch`
//! of the leader, learner bookkeeping) are preserved.

use std::collections::BTreeSet;

use remix_spec::{ActionDef, ActionInstance, Granularity, ModuleSpec};

use crate::modules::{DISCOVERY, ELECTION};
use crate::state::ZabState;
use crate::types::{ServerState, Sid, Vote, ZabPhase};

use super::Cfg;

/// Enumerates all subsets of `candidates` of size at least `min` (the candidate quorums).
fn quorums(candidates: &[Sid], min: usize) -> Vec<BTreeSet<Sid>> {
    let mut out = Vec::new();
    let n = candidates.len();
    for mask in 1u32..(1 << n) {
        let set: BTreeSet<Sid> = candidates
            .iter()
            .enumerate()
            .filter(|(k, _)| mask & (1 << k) != 0)
            .map(|(_, &s)| s)
            .collect();
        if set.len() >= min {
            out.push(set);
        }
    }
    out
}

/// The vote a server would cast for itself, used to pick the election winner.
fn candidate_vote(state: &ZabState, i: Sid) -> Vote {
    Vote {
        epoch: state.servers[i].current_epoch,
        zxid: state.servers[i].last_zxid(),
        leader: i,
    }
}

/// Builds the single coarse `ElectionAndDiscovery(i, Q)` action.
fn election_and_discovery(cfg: &Cfg) -> ActionDef<ZabState> {
    let cfg = cfg.clone();
    ActionDef::new(
        "ElectionAndDiscovery",
        ELECTION,
        Granularity::Coarse,
        vec![
            "state",
            "zabState",
            "currentEpoch",
            "acceptedEpoch",
            "history",
        ],
        // `msgs` is declared written because the combined action absorbs the election and
        // discovery traffic whose net effect it models (no discovery messages remain in
        // flight once the action completes), preserving the interaction with the
        // Synchronization module.
        vec![
            "state",
            "zabState",
            "leaderAddr",
            "acceptedEpoch",
            "currentEpoch",
            "learners",
            "ackeRecv",
            "msgs",
        ],
        move |s: &ZabState| {
            let mut out = Vec::new();
            let looking: Vec<Sid> = (0..s.n())
                .filter(|&i| s.servers[i].is_up() && s.servers[i].state == ServerState::Looking)
                .collect();
            if looking.len() < s.quorum_size() {
                return out;
            }
            let new_epoch = s.max_accepted_epoch() + 1;
            if new_epoch > cfg.max_epoch {
                return out;
            }
            for q in quorums(&looking, s.quorum_size()) {
                // Every member of the quorum must be mutually reachable for the election
                // (and the subsequent discovery round) to complete.
                let connected = q.iter().all(|&a| q.iter().all(|&b| s.reachable(a, b)));
                if !connected {
                    continue;
                }
                // Fast leader election elects the member with the maximal vote.
                let leader = *q
                    .iter()
                    .max_by_key(|&&i| candidate_vote(s, i))
                    .expect("quorum is non-empty");
                let mut next = s.clone();
                for &member in &q {
                    let last_zxid = next.servers[member].last_zxid();
                    let sv = &mut next.servers[member];
                    sv.accepted_epoch = new_epoch;
                    sv.phase = ZabPhase::Synchronization;
                    sv.leader = Some(leader);
                    sv.recv_votes.clear();
                    sv.vote = Vote {
                        epoch: sv.current_epoch,
                        zxid: last_zxid,
                        leader,
                    };
                    if member == leader {
                        sv.state = ServerState::Leading;
                        sv.current_epoch = new_epoch;
                        sv.epoch_proposed = true;
                        sv.established = false;
                    } else {
                        sv.state = ServerState::Following;
                        sv.connected = true;
                    }
                }
                // Leader-side discovery bookkeeping: every follower of Q has reported its
                // last zxid (ACKEPOCH) by the end of the combined action.
                let followers: Vec<Sid> = q.iter().copied().filter(|&m| m != leader).collect();
                for &f in &followers {
                    let fz = next.servers[f].last_zxid();
                    next.servers[leader].learners.insert(f);
                    next.servers[leader].epoch_acks.insert(f);
                    next.servers[leader].learner_last_zxid.insert(f, fz);
                }
                let members: Vec<String> = q.iter().map(|m| m.to_string()).collect();
                out.push(ActionInstance::new(
                    format!("ElectionAndDiscovery({leader}, {{{}}})", members.join(", ")),
                    next,
                ));
            }
            out
        },
    )
}

/// The coarse Election module: the single combined action.
pub fn election_module(cfg: &Cfg) -> ModuleSpec<ZabState> {
    ModuleSpec::new(
        ELECTION,
        Granularity::Coarse,
        vec![election_and_discovery(cfg)],
    )
}

/// The coarse Discovery module: empty — its externally visible effects are folded into
/// the combined `ElectionAndDiscovery` action of the coarse Election module.
pub fn discovery_module(_cfg: &Cfg) -> ModuleSpec<ZabState> {
    ModuleSpec::new(DISCOVERY, Granularity::Coarse, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use crate::types::Txn;
    use crate::versions::CodeVersion;
    use std::sync::Arc;

    fn cfg() -> Cfg {
        Arc::new(ClusterConfig::small(CodeVersion::V391))
    }

    #[test]
    fn initial_state_offers_all_quorums() {
        let m = election_module(&cfg());
        let s = ZabState::initial(&ClusterConfig::small(CodeVersion::V391));
        let insts = m.actions[0].enabled(&s);
        // Quorums of {0,1,2}: three pairs plus the full set.
        assert_eq!(insts.len(), 4);
        for inst in &insts {
            let next = &inst.next;
            let leader = next
                .servers
                .iter()
                .position(|sv| sv.state == ServerState::Leading)
                .unwrap();
            assert_eq!(next.servers[leader].current_epoch, 1);
            assert_eq!(next.servers[leader].phase, ZabPhase::Synchronization);
            let followers = next
                .servers
                .iter()
                .filter(|sv| sv.state == ServerState::Following)
                .count();
            assert!(followers >= 1);
        }
    }

    #[test]
    fn leader_is_the_member_with_the_best_vote() {
        let m = election_module(&cfg());
        let mut s = ZabState::initial(&ClusterConfig::small(CodeVersion::V391));
        // Server 0 has the longest history; server 1 has a higher epoch with no history.
        s.servers[0].history.push(Txn::new(1, 1, 1));
        s.servers[1].current_epoch = 2;
        let insts = m.actions[0].enabled(&s);
        let full = insts
            .iter()
            .find(|i| i.label.contains("{0, 1, 2}"))
            .expect("full-quorum election exists");
        // currentEpoch dominates the zxid in the vote order (the ZK-4643 mechanism).
        assert!(full.label.starts_with("ElectionAndDiscovery(1,"));
        assert_eq!(full.next.servers[1].state, ServerState::Leading);
        assert_eq!(full.next.servers[0].leader, Some(1));
        // Learner bookkeeping is complete after the combined action.
        assert!(full.next.servers[1].epoch_acks.contains(&0));
        assert_eq!(
            full.next.servers[1].learner_last_zxid.get(&0),
            Some(&crate::types::Zxid::new(1, 1))
        );
    }

    #[test]
    fn partitioned_quorums_are_excluded() {
        let m = election_module(&cfg());
        let mut s = ZabState::initial(&ClusterConfig::small(CodeVersion::V391));
        s.partitioned.insert((0, 1));
        let insts = m.actions[0].enabled(&s);
        assert!(insts.iter().all(|i| !i.label.contains("{0, 1}")));
        // {0, 2} and {1, 2} remain possible; the full set is not mutually connected.
        assert_eq!(insts.len(), 2);
    }

    #[test]
    fn crashed_or_settled_servers_do_not_participate() {
        let m = election_module(&cfg());
        let mut s = ZabState::initial(&ClusterConfig::small(CodeVersion::V391));
        s.servers[0].crash();
        let insts = m.actions[0].enabled(&s);
        assert_eq!(insts.len(), 1);
        assert!(insts[0].label.contains("{1, 2}"));
        // Once servers leave the LOOKING state no further election is offered.
        let settled = &insts[0].next;
        assert!(m.actions[0].enabled(settled).is_empty());
    }

    #[test]
    fn epoch_bound_disables_the_action() {
        let m = election_module(&cfg());
        let mut s = ZabState::initial(&ClusterConfig::small(CodeVersion::V391));
        for sv in &mut s.servers {
            sv.accepted_epoch = 4;
        }
        assert!(m.actions[0].enabled(&s).is_empty());
    }

    #[test]
    fn coarse_discovery_module_is_empty() {
        assert_eq!(discovery_module(&cfg()).action_count(), 0);
    }
}
